#!/usr/bin/env python
"""Record the advisor perf trajectory into a JSON file, one entry per PR.

Runs two deterministic-workload timings at env-capped sizes and dumps
the numbers to ``BENCH_advisor.json`` (override with ``--output``):

* **E3 (advisor search)** -- the budget-sweep configuration search on
  the XMark training workload, legacy full re-evaluation vs the
  incremental what-if engine: wall time, per-query what-if costings,
  optimizer plan calls, and an equivalence flag.
* **E5 (execution)** -- interpretive document scan vs the structural
  path-summary scan over the XMark query workload: wall time per mode
  and the speedup.
* **E6 (maintenance)** -- incremental document add (summary +
  statistics + one configured physical index maintained through deltas)
  vs the full-rebuild path: wall time per mode, the speedup, and a
  byte-identity flag.
* **E7 (routing)** -- collection-scoped costing + structural routing on
  the co-resident XMark+TPoX database vs the whole-database escape
  hatch: routed-vs-unrouted scan wall time, what-if re-costings after a
  single-collection document add (deterministic count), and the
  exactness flags (results, delta benefits, cached recommendations).
* **E13 (columnar)** -- the columnar pre/post axis engine vs the
  interpretive escape hatch (``use_columnar=False``) on the
  descendant-heavy ``//`` workload: wall time per mode, the speedup,
  result byte-identity, the interpretive-fallback counters (columnar
  side must be zero), and the nbytes-vs-statistics sizing flag.
* **E14 (vectorized)** -- the set-at-a-time value-predicate engine vs
  the object-hop escape hatch (``use_vectorized_predicates=False``) on
  the predicate-heavy XMark+TPoX workload: wall time per mode, the
  speedup, result/value byte-identity, the node-materialization
  counters (vectorized side must be zero), and the sizing flag.
* **E10 (online tuning)** -- the autonomous loop vs the offline
  advisor: stationary byte-identity, drift detection + re-convergence
  after an injected workload shift, and the bounded-compression counts
  (captured templates vs compressed clusters at 1x and 10x volume).
* **E12 (fault recovery)** -- tuning through a deterministic fault plan
  (transient faults at every seam plus one persistent build failure)
  vs fault-free: recovery wall-time overhead, convergence to the same
  configuration, and degraded-mode (summary-scan fallback) result
  identity.
* **E15 (telemetry)** -- execution with per-query span-tree tracing and
  cost accounting armed (``trace=True``) vs untraced: wall time per
  mode, the overhead ratio, span/cost-sample counts, and result
  byte-identity (the observe-only gate).

Sizes are controlled by ``REPRO_SMOKE_XMARK_SCALE`` (default ``0.1``)
so CI stays fast; run with a larger scale locally for headline numbers.

The exit status doubles as a CI gate: non-zero when a comparison lost
equivalence, the maintenance speedup fell below
``REPRO_SMOKE_MIN_MAINT_RATIO`` (default ``2``), the routing ratios
fell below ``REPRO_SMOKE_MIN_ROUTING_RATIO`` (default ``2``), the columnar
comparison lost equivalence/exactness or its scan ratio fell below
``REPRO_SMOKE_MIN_COLUMNAR_RATIO`` (default ``2``), the vectorized
comparison lost equivalence/exactness or its scan ratio fell below
``REPRO_SMOKE_MIN_VECTORIZED_RATIO`` (default ``2``), the
online loop lost convergence/boundedness, its compression ratio
fell below ``REPRO_SMOKE_MIN_ONLINE_COMPRESSION`` (default ``2``), the
recovery run lost convergence/result identity, its overhead ratio
exceeded ``REPRO_SMOKE_MAX_RECOVERY_OVERHEAD`` (default ``10``), the
telemetry comparison lost result identity, or its tracing overhead
exceeded ``REPRO_SMOKE_MAX_TELEMETRY_OVERHEAD`` (default ``1.15``).

Usage::

    PYTHONPATH=src python tools/bench_record.py [--output BENCH_advisor.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.executor.measurement import measure_scan_modes
from repro.tools.maintenance_compare import compare_maintenance_modes
from repro.tools.whatif_compare import compare_search_modes
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)


def _env_float(name: str, default: float) -> float:
    """Float-valued env override (unset or unparsable falls back)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _scale(default: float = 0.1) -> float:
    """``REPRO_SMOKE_XMARK_SCALE`` override (same semantics as the
    benchmark/test conftests)."""
    return _env_float("REPRO_SMOKE_XMARK_SCALE", default)


def record_e3_search(database, workload) -> dict:
    """Legacy-vs-incremental budget sweep (greedy-heuristic + top-down)."""
    sweep = compare_search_modes(database, workload)
    legacy, incr = sweep.totals["legacy"], sweep.totals["incremental"]
    return {
        "candidates": sweep.candidate_count,
        "queries": sweep.query_count,
        "legacy": {"seconds": round(legacy["seconds"], 4),
                   "query_costings": legacy["costings"],
                   "plan_calls": legacy["plan_calls"]},
        "incremental": {"seconds": round(incr["seconds"], 4),
                        "query_costings": incr["costings"],
                        "plan_calls": incr["plan_calls"]},
        "identical_configurations": sweep.identical,
        "costings_ratio": round(sweep.costings_ratio, 2),
        "time_speedup": round(sweep.time_speedup, 2),
    }


def record_e5_execution(database, workload) -> dict:
    """Interpretive scan vs structural-summary scan wall times."""
    measurements = measure_scan_modes(database, workload)
    interpretive = measurements["scan-interpretive"]
    summary = measurements["scan-summary"]
    return {
        "interpretive_seconds": round(interpretive.total_seconds, 4),
        "summary_seconds": round(summary.total_seconds, 4),
        "speedup": round(interpretive.total_seconds
                         / max(summary.total_seconds, 1e-9), 2),
    }


def record_e6_maintenance(scale: float) -> dict:
    """Incremental vs rebuild document-add maintenance (best of 3 to
    damp scheduler noise at CI scales)."""
    best = None
    for _ in range(3):
        comparison = compare_maintenance_modes(scale=scale)
        if not comparison.identical:
            best = comparison
            break
        if best is None or comparison.ratio > best.ratio:
            best = comparison
    return {
        "base_documents": best.base_documents,
        "documents_added": best.documents_added,
        "incremental_seconds": round(best.incremental_seconds, 4),
        "rebuild_seconds": round(best.rebuild_seconds, 4),
        "speedup": round(best.ratio, 2),
        "identical_state": best.identical,
    }


def record_e7_routing(scale: float) -> dict:
    """Routed vs unrouted scan + what-if re-costing (best of 3 for the
    timed scan half; the re-costing counts are deterministic)."""
    from repro.tools.routing_compare import compare_routing_modes

    best = None
    for _ in range(3):
        comparison = compare_routing_modes(scale=scale)
        exact = (comparison.identical_results and comparison.benefits_identical
                 and comparison.configurations_identical
                 and comparison.cross_recostings == 0)
        if not exact:
            best = comparison
            break
        if best is None or comparison.scan_ratio > best.scan_ratio:
            best = comparison
    return {
        "xmark_documents": best.xmark_documents,
        "ballast_documents": best.ballast_documents,
        "routed_seconds": round(best.routed_seconds, 4),
        "unrouted_seconds": round(best.unrouted_seconds, 4),
        "scan_speedup": round(best.scan_ratio, 2),
        "recostings_routed": best.recostings_routed,
        "recostings_unrouted": best.recostings_unrouted,
        "recosting_ratio": round(best.recosting_ratio, 2),
        "cross_recostings": best.cross_recostings,
        "identical_results": best.identical_results,
        "benefits_identical": best.benefits_identical,
        "configurations_identical": best.configurations_identical,
    }


def record_e13_columnar(scale: float) -> dict:
    """Columnar vs interpretive descendant-heavy scans (best of 3 for
    the timed half; fallback counters and flags are deterministic)."""
    from repro.tools.columnar_compare import compare_columnar_modes

    best = None
    for _ in range(3):
        comparison = compare_columnar_modes(scale=scale)
        exact = (comparison.identical_results and comparison.sizing_consistent
                 and comparison.columnar_fallbacks == 0
                 and comparison.interpretive_fallbacks > 0)
        if not exact:
            best = comparison
            break
        if best is None or comparison.scan_ratio > best.scan_ratio:
            best = comparison
    return {
        "documents": best.documents,
        "node_count": best.node_count,
        "columnar_seconds": round(best.columnar_seconds, 4),
        "interpretive_seconds": round(best.interpretive_seconds, 4),
        "scan_speedup": round(best.scan_ratio, 2),
        "columnar_fallbacks": best.columnar_fallbacks,
        "interpretive_fallbacks": best.interpretive_fallbacks,
        "result_rows": best.result_rows,
        "identical_results": best.identical_results,
        "sizing_consistent": best.sizing_consistent,
    }


def record_e14_vectorized(scale: float) -> dict:
    """Vectorized vs object-hop predicate scans (best of 3 for the
    timed half; materialization counters and flags are deterministic)."""
    from repro.tools.vectorized_compare import compare_vectorized_modes

    best = None
    for _ in range(3):
        comparison = compare_vectorized_modes(scale=scale)
        exact = (comparison.identical_results and comparison.sizing_consistent
                 and comparison.vectorized_materializations == 0
                 and comparison.hatch_materializations > 0)
        if not exact:
            best = comparison
            break
        if best is None or comparison.scan_ratio > best.scan_ratio:
            best = comparison
    return {
        "documents": best.documents,
        "vectorized_seconds": round(best.vectorized_seconds, 4),
        "hatch_seconds": round(best.hatch_seconds, 4),
        "scan_speedup": round(best.scan_ratio, 2),
        "vectorized_materializations": best.vectorized_materializations,
        "hatch_materializations": best.hatch_materializations,
        "result_rows": best.result_rows,
        "identical_results": best.identical_results,
        "sizing_consistent": best.sizing_consistent,
    }


def record_e15_telemetry(scale: float) -> dict:
    """Traced vs untraced execution (best of 3 comparisons by overhead
    ratio; span and cost-sample counts and the identity flag are
    deterministic)."""
    from repro.tools.telemetry_compare import compare_telemetry_modes

    best = None
    for _ in range(3):
        comparison = compare_telemetry_modes(scale=scale, repeats=5)
        if not comparison.identical_results:
            best = comparison
            break
        if best is None or comparison.overhead_ratio < best.overhead_ratio:
            best = comparison
    return {
        "documents": best.documents,
        "untraced_seconds": round(best.untraced_seconds, 4),
        "traced_seconds": round(best.traced_seconds, 4),
        "overhead_ratio": round(best.overhead_ratio, 3),
        "spans_recorded": best.spans_recorded,
        "cost_samples": best.cost_samples,
        "result_rows": best.result_rows,
        "identical_results": best.identical_results,
    }


def record_e10_online(scale: float) -> dict:
    """Online loop vs offline advisor (every flag/count deterministic:
    logical steps and template counts, no wall clock)."""
    from repro.tools.online_compare import compare_online_offline

    comparison = compare_online_offline(scale=scale)
    return {
        "stationary_identical": comparison.stationary_identical,
        "stationary_stable": comparison.stationary_stable,
        "index_plans_after_migration": comparison.index_plans_after_migration,
        "drift_detected": comparison.drift_detected,
        "drift_score": round(comparison.drift_score, 3),
        "migrated_with_drops": comparison.migrated_with_drops,
        "reconverged_identical": comparison.reconverged_identical,
        "captured_templates_1x": comparison.captured_templates_1x,
        "compressed_size_1x": comparison.compressed_size_1x,
        "captured_templates_10x": comparison.captured_templates_10x,
        "compressed_size_10x": comparison.compressed_size_10x,
        "cluster_cap": comparison.flood_cluster_cap,
        "compression_bounded": comparison.compression_bounded,
        "compression_ratio": round(comparison.compression_ratio, 2),
        # The one pass/fail predicate shared with the E10 bench and the
        # tier-1 smoke guard (OnlineComparison.converged).
        "converged": comparison.converged,
    }


def record_e12_recovery(scale: float) -> dict:
    """Clean-vs-faulted tuning recovery (counters and equivalence flags
    deterministic; the overhead ratio is the one wall-clock number)."""
    from repro.tools.recovery_compare import compare_recovery_modes

    comparison = compare_recovery_modes(scale=scale)
    return {
        "clean_seconds": round(comparison.clean_seconds, 4),
        "faulted_seconds": round(comparison.faulted_seconds, 4),
        "overhead_ratio": round(comparison.overhead_ratio, 2),
        "faults_injected": comparison.faults_injected,
        "transients_absorbed": comparison.transients_absorbed,
        "rollbacks": comparison.rollbacks,
        "build_failures": comparison.build_failures,
        "cycles_clean": comparison.cycles_clean,
        "cycles_faulted": comparison.cycles_faulted,
        "converged": comparison.converged,
        "results_identical": comparison.results_identical,
        "fallback_identical": comparison.fallback_identical,
        "repaired": comparison.repaired,
    }


def _load_history(output: str) -> list:
    """The existing trajectory at ``output``, tolerating absence.

    A missing or empty file starts a fresh series; a corrupt file is
    backed up to ``<output>.corrupt`` (so the bytes survive for
    inspection) with a warning to stderr, and the series restarts.
    """
    if not os.path.exists(output):
        return []
    try:
        with open(output, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"warning: could not read {output} ({exc}); "
              f"starting a fresh series", file=sys.stderr)
        return []
    if not text.strip():
        return []
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError as exc:
        backup = output + ".corrupt"
        try:
            with open(backup, "w", encoding="utf-8") as handle:
                handle.write(text)
            where = f"backed up to {backup}"
        except OSError:
            where = "backup failed"
        print(f"warning: {output} holds invalid JSON ({exc}); {where}; "
              f"starting a fresh series", file=sys.stderr)
        return []
    return loaded if isinstance(loaded, list) else [loaded]


def _write_history(output: str, entries: list) -> None:
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_advisor.json",
                        help="path of the JSON file to write")
    args = parser.parse_args()

    scale = _scale()
    database = generate_xmark_database(XMarkConfig(scale=scale, seed=42))
    workload = xmark_query_workload(name="bench-record")

    entry = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "xmark_scale": scale,
        "e3_search": record_e3_search(database, workload),
        "e5_execution": record_e5_execution(database, workload),
        "e6_maintenance": record_e6_maintenance(scale),
        "e7_routing": record_e7_routing(scale),
        "e13_columnar": record_e13_columnar(scale),
        "e14_vectorized": record_e14_vectorized(scale),
        "e15_telemetry": record_e15_telemetry(scale),
        "e10_online": record_e10_online(scale),
        "e12_recovery": record_e12_recovery(scale),
    }

    # Append to the trajectory (a JSON list, one entry per recording) so
    # successive PRs accumulate instead of overwriting each other.
    entries = _load_history(args.output)
    entries.append(entry)
    _write_history(args.output, entries)

    e3, e5 = entry["e3_search"], entry["e5_execution"]
    e6, e7 = entry["e6_maintenance"], entry["e7_routing"]
    e10, e12 = entry["e10_online"], entry["e12_recovery"]
    e13 = entry["e13_columnar"]
    e14 = entry["e14_vectorized"]
    e15 = entry["e15_telemetry"]
    print(f"wrote {args.output} (xmark scale {scale})")
    print(f"  E3: identical={e3['identical_configurations']} "
          f"costings {e3['legacy']['query_costings']}"
          f"->{e3['incremental']['query_costings']} "
          f"({e3['costings_ratio']}x), "
          f"time {e3['legacy']['seconds']}s->{e3['incremental']['seconds']}s "
          f"({e3['time_speedup']}x)")
    print(f"  E5: scan {e5['interpretive_seconds']}s -> summary "
          f"{e5['summary_seconds']}s ({e5['speedup']}x)")
    print(f"  E6: identical={e6['identical_state']} maintenance rebuild "
          f"{e6['rebuild_seconds']}s -> incremental "
          f"{e6['incremental_seconds']}s ({e6['speedup']}x)")
    print(f"  E7: scan {e7['unrouted_seconds']}s -> routed "
          f"{e7['routed_seconds']}s ({e7['scan_speedup']}x), "
          f"re-costings {e7['recostings_unrouted']}"
          f"->{e7['recostings_routed']} ({e7['recosting_ratio']}x), "
          f"cross={e7['cross_recostings']}")
    print(f"  E13: identical={e13['identical_results']} "
          f"sizing={e13['sizing_consistent']} "
          f"descendant scan {e13['interpretive_seconds']}s -> columnar "
          f"{e13['columnar_seconds']}s ({e13['scan_speedup']}x), "
          f"fallbacks {e13['interpretive_fallbacks']}"
          f"->{e13['columnar_fallbacks']}")
    print(f"  E14: identical={e14['identical_results']} "
          f"sizing={e14['sizing_consistent']} "
          f"predicate scan {e14['hatch_seconds']}s -> vectorized "
          f"{e14['vectorized_seconds']}s ({e14['scan_speedup']}x), "
          f"materializations {e14['hatch_materializations']}"
          f"->{e14['vectorized_materializations']}")
    print(f"  E15: identical={e15['identical_results']} "
          f"untraced {e15['untraced_seconds']}s -> traced "
          f"{e15['traced_seconds']}s ({e15['overhead_ratio']}x), "
          f"{e15['spans_recorded']} span(s), "
          f"{e15['cost_samples']} cost sample(s)")
    print(f"  E10: stationary={e10['stationary_identical']} "
          f"stable={e10['stationary_stable']} "
          f"drift={e10['drift_detected']} "
          f"reconverged={e10['reconverged_identical']} "
          f"compression {e10['captured_templates_10x']}"
          f"->{e10['compressed_size_10x']} "
          f"({e10['compression_ratio']}x, cap {e10['cluster_cap']})")
    print(f"  E12: converged={e12['converged']} "
          f"results={e12['results_identical']} "
          f"fallback={e12['fallback_identical']} "
          f"repaired={e12['repaired']} "
          f"recovery {e12['clean_seconds']}s->{e12['faulted_seconds']}s "
          f"({e12['overhead_ratio']}x over {e12['faults_injected']} "
          f"fault(s), {e12['rollbacks']} rollback(s))")

    min_maint_ratio = _env_float("REPRO_SMOKE_MIN_MAINT_RATIO", 2.0)
    min_routing_ratio = _env_float("REPRO_SMOKE_MIN_ROUTING_RATIO", 2.0)
    min_online_compression = _env_float(
        "REPRO_SMOKE_MIN_ONLINE_COMPRESSION", 2.0)
    if not e3["identical_configurations"] or not e6["identical_state"]:
        return 1
    if e6["speedup"] < min_maint_ratio:
        print(f"  FAIL: maintenance speedup {e6['speedup']}x below the "
              f"floor {min_maint_ratio}x")
        return 1
    if not (e7["identical_results"] and e7["benefits_identical"]
            and e7["configurations_identical"]) or e7["cross_recostings"]:
        print("  FAIL: routing comparison lost equivalence")
        return 1
    if e7["scan_speedup"] < min_routing_ratio \
            or e7["recosting_ratio"] < min_routing_ratio:
        print(f"  FAIL: routing ratios {e7['scan_speedup']}x scan / "
              f"{e7['recosting_ratio']}x re-costing below the floor "
              f"{min_routing_ratio}x")
        return 1
    min_columnar_ratio = _env_float("REPRO_SMOKE_MIN_COLUMNAR_RATIO", 2.0)
    if not (e13["identical_results"] and e13["sizing_consistent"]) \
            or e13["columnar_fallbacks"] or not e13["interpretive_fallbacks"]:
        print("  FAIL: columnar comparison lost equivalence/exactness")
        return 1
    if e13["scan_speedup"] < min_columnar_ratio:
        print(f"  FAIL: columnar scan speedup {e13['scan_speedup']}x below "
              f"the floor {min_columnar_ratio}x")
        return 1
    min_vectorized_ratio = _env_float("REPRO_SMOKE_MIN_VECTORIZED_RATIO", 2.0)
    if not (e14["identical_results"] and e14["sizing_consistent"]) \
            or e14["vectorized_materializations"] \
            or not e14["hatch_materializations"]:
        print("  FAIL: vectorized comparison lost equivalence/exactness")
        return 1
    if e14["scan_speedup"] < min_vectorized_ratio:
        print(f"  FAIL: vectorized scan speedup {e14['scan_speedup']}x below "
              f"the floor {min_vectorized_ratio}x")
        return 1
    if not e10["converged"]:
        print("  FAIL: online tuning loop lost convergence/boundedness")
        return 1
    if e10["compression_ratio"] < min_online_compression:
        print(f"  FAIL: online compression ratio {e10['compression_ratio']}x "
              f"below the floor {min_online_compression}x")
        return 1
    max_recovery_overhead = _env_float(
        "REPRO_SMOKE_MAX_RECOVERY_OVERHEAD", 10.0)
    if not (e12["converged"] and e12["results_identical"]
            and e12["fallback_identical"] and e12["repaired"]):
        print("  FAIL: fault recovery lost convergence or result identity")
        return 1
    if e12["overhead_ratio"] > max_recovery_overhead:
        print(f"  FAIL: recovery overhead {e12['overhead_ratio']}x exceeds "
              f"the ceiling {max_recovery_overhead}x")
        return 1
    max_telemetry_overhead = _env_float(
        "REPRO_SMOKE_MAX_TELEMETRY_OVERHEAD", 1.15)
    if not e15["identical_results"]:
        print("  FAIL: telemetry comparison lost result identity")
        return 1
    if e15["overhead_ratio"] > max_telemetry_overhead:
        print(f"  FAIL: tracing overhead {e15['overhead_ratio']}x exceeds "
              f"the ceiling {max_telemetry_overhead}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
