#!/usr/bin/env python
"""Record the advisor perf trajectory into a JSON file, one entry per PR.

Runs two deterministic-workload timings at env-capped sizes and dumps
the numbers to ``BENCH_advisor.json`` (override with ``--output``):

* **E3 (advisor search)** -- the budget-sweep configuration search on
  the XMark training workload, legacy full re-evaluation vs the
  incremental what-if engine: wall time, per-query what-if costings,
  optimizer plan calls, and an equivalence flag.
* **E5 (execution)** -- interpretive document scan vs the structural
  path-summary scan over the XMark query workload: wall time per mode
  and the speedup.

Sizes are controlled by ``REPRO_SMOKE_XMARK_SCALE`` (default ``0.1``)
so CI stays fast; run with a larger scale locally for headline numbers.

Usage::

    PYTHONPATH=src python tools/bench_record.py [--output BENCH_advisor.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.executor.measurement import measure_scan_modes
from repro.tools.whatif_compare import compare_search_modes
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)


def _scale(default: float = 0.1) -> float:
    """``REPRO_SMOKE_XMARK_SCALE`` override (same semantics as the
    benchmark/test conftests: unset or unparsable falls back)."""
    raw = os.environ.get("REPRO_SMOKE_XMARK_SCALE")
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def record_e3_search(database, workload) -> dict:
    """Legacy-vs-incremental budget sweep (greedy-heuristic + top-down)."""
    sweep = compare_search_modes(database, workload)
    legacy, incr = sweep.totals["legacy"], sweep.totals["incremental"]
    return {
        "candidates": sweep.candidate_count,
        "queries": sweep.query_count,
        "legacy": {"seconds": round(legacy["seconds"], 4),
                   "query_costings": legacy["costings"],
                   "plan_calls": legacy["plan_calls"]},
        "incremental": {"seconds": round(incr["seconds"], 4),
                        "query_costings": incr["costings"],
                        "plan_calls": incr["plan_calls"]},
        "identical_configurations": sweep.identical,
        "costings_ratio": round(sweep.costings_ratio, 2),
        "time_speedup": round(sweep.time_speedup, 2),
    }


def record_e5_execution(database, workload) -> dict:
    """Interpretive scan vs structural-summary scan wall times."""
    measurements = measure_scan_modes(database, workload)
    interpretive = measurements["scan-interpretive"]
    summary = measurements["scan-summary"]
    return {
        "interpretive_seconds": round(interpretive.total_seconds, 4),
        "summary_seconds": round(summary.total_seconds, 4),
        "speedup": round(interpretive.total_seconds
                         / max(summary.total_seconds, 1e-9), 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_advisor.json",
                        help="path of the JSON file to write")
    args = parser.parse_args()

    scale = _scale()
    database = generate_xmark_database(XMarkConfig(scale=scale, seed=42))
    workload = xmark_query_workload(name="bench-record")

    entry = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "xmark_scale": scale,
        "e3_search": record_e3_search(database, workload),
        "e5_execution": record_e5_execution(database, workload),
    }

    # Append to the trajectory (a JSON list, one entry per recording) so
    # successive PRs accumulate instead of overwriting each other.
    entries = []
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            entries = loaded if isinstance(loaded, list) else [loaded]
        except (json.JSONDecodeError, OSError):
            entries = []
    entries.append(entry)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")

    e3, e5 = entry["e3_search"], entry["e5_execution"]
    print(f"wrote {args.output} (xmark scale {scale})")
    print(f"  E3: identical={e3['identical_configurations']} "
          f"costings {e3['legacy']['query_costings']}"
          f"->{e3['incremental']['query_costings']} "
          f"({e3['costings_ratio']}x), "
          f"time {e3['legacy']['seconds']}s->{e3['incremental']['seconds']}s "
          f"({e3['time_speedup']}x)")
    print(f"  E5: scan {e5['interpretive_seconds']}s -> summary "
          f"{e5['summary_seconds']}s ({e5['speedup']}x)")
    return 0 if e3["identical_configurations"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
