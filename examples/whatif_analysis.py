"""What-if analysis: interactively editing a recommendation.

Run with::

    python examples/whatif_analysis.py

The demo's analysis panel lets the user "modify the recommended
configuration by adding and removing indexes and ... see the effect of
these modifications on query performance".  This example does the same
programmatically:

* start from the advisor's recommendation under a tight budget;
* drop the recommended index with the smallest contribution and measure
  how much estimated benefit is lost;
* add a hand-written index the advisor did not pick and measure how much
  it would add;
* compare everything against the overtrained upper bound.
"""

from __future__ import annotations

import os

from repro import (
    AdvisorParameters,
    IndexDefinition,
    RecommendationAnalysis,
    Workload,
    XmlIndexAdvisor,
    generate_xmark_database,
)
from repro.workloads import XMarkConfig
from repro.xquery.model import ValueType

#: Database scale; the tier-1 example smoke test shrinks it through
#: ``REPRO_EXAMPLE_SCALE`` so the script stays runnable in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.1"))


def main() -> None:
    database = generate_xmark_database(XMarkConfig(scale=SCALE, seed=42))
    workload = Workload(name="whatif")
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/quantity > 8 return $i/name', frequency=4.0)
    workload.add('for $i in doc("x")/site/regions/europe/item '
                 'where $i/price > 450 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "person5_2" return $p/name', frequency=5.0)
    workload.add('for $a in doc("x")/site/open_auctions/open_auction '
                 'where $a/current > 300 return $a/itemref', frequency=1.0)

    # A deliberately tight budget so the advisor has to leave something out.
    advisor = XmlIndexAdvisor(database, AdvisorParameters(disk_budget_bytes=24 * 1024))
    recommendation = advisor.recommend(workload)
    analysis = RecommendationAnalysis(database, recommendation)

    print(recommendation.describe())
    print()
    print(analysis.render_table())
    summary = analysis.summary()
    print(f"\nbaseline improvement: {summary['improvement_recommended_pct']:.1f}% "
          f"(overtrained bound {summary['improvement_overtrained_pct']:.1f}%)")

    # ------------------------------------------------------------------
    # What if we drop one of the recommended indexes?
    if len(recommendation.configuration) > 1:
        victim = min(recommendation.configuration,
                     key=lambda d: recommendation.benefit.index_sizes.get(d.key, 0.0))
        without_victim = analysis.what_if(remove=[victim])
        print(f"\nwhat-if: drop {victim.pattern.to_text()} "
              f"[{victim.value_type.value}] ->"
              f" benefit {without_victim.total_benefit:.1f} "
              f"(was {recommendation.total_benefit:.1f}), "
              f"size {without_victim.total_size_bytes / 1024:.1f} KiB")

    # ------------------------------------------------------------------
    # What if we add an index the advisor did not choose?
    manual = IndexDefinition.create("/site/open_auctions/open_auction/current",
                                    ValueType.DOUBLE, name="manual_current")
    if not recommendation.configuration.contains_pattern(manual.pattern,
                                                         manual.value_type):
        with_manual = analysis.what_if(add=[manual])
        print(f"what-if: add  {manual.pattern.to_text()} [DOUBLE] ->"
              f" benefit {with_manual.total_benefit:.1f} "
              f"(was {recommendation.total_benefit:.1f}), "
              f"size {with_manual.total_size_bytes / 1024:.1f} KiB")

    # ------------------------------------------------------------------
    # How far is the recommendation from the overtrained configuration?
    print(f"\novertrained configuration: "
          f"{len(analysis.overtrained_configuration)} index(es), "
          f"{summary['overtrained_size_bytes'] / 1024:.1f} KiB "
          f"-> improvement {summary['improvement_overtrained_pct']:.1f}%")
    print("The budgeted recommendation captures "
          f"{100 * summary['improvement_recommended_pct'] / max(summary['improvement_overtrained_pct'], 1e-9):.0f}% "
          "of that with "
          f"{100 * summary['recommended_size_bytes'] / max(summary['overtrained_size_bytes'], 1e-9):.0f}% "
          "of the space.")


if __name__ == "__main__":
    main()
