"""XMark tuning walkthrough: the full demonstration flow of the paper.

Run with::

    python examples/xmark_tuning.py

The script follows Section 3 of the paper step by step:

1. Enumerate Indexes mode on individual queries (Figure 2).
2. Evaluate Indexes mode for a hand-picked configuration (Figure 3).
3. Candidate generalization, the DAG, and the three search algorithms at
   several disk budgets (Figure 4).
4. Recommendation analysis, including unseen queries (Figure 5).
5. Creating the recommended indexes and actually executing the workload.
"""

from __future__ import annotations

import os

from repro import (
    AdvisorParameters,
    IndexConfiguration,
    IndexDefinition,
    Optimizer,
    RecommendationAnalysis,
    SearchAlgorithm,
    XmlIndexAdvisor,
    enumerate_indexes,
    evaluate_indexes,
    generate_xmark_database,
    measure_workload,
    xmark_query_workload,
    xmark_unseen_queries,
)
from repro.tools.report import dag_report, enumerate_report, evaluate_report
from repro.workloads import XMarkConfig
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_workload

#: Database scale; the tier-1 example smoke test shrinks it through
#: ``REPRO_EXAMPLE_SCALE`` so the script stays runnable in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.2"))


def heading(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    database = generate_xmark_database(XMarkConfig(scale=SCALE, seed=42))
    workload = xmark_query_workload()
    optimizer = Optimizer(database)
    queries = [q for q in normalize_workload(workload) if not q.is_update]
    print(database.describe())
    print(workload.describe())

    # ------------------------------------------------------------------
    heading("Step 1 - Enumerate Indexes mode (Figure 2)")
    sample = queries[:4]
    results = [enumerate_indexes(q, database, optimizer) for q in sample]
    print(enumerate_report(results))

    # ------------------------------------------------------------------
    heading("Step 2 - Evaluate Indexes mode for a hand-picked configuration (Figure 3)")
    candidate_configuration = IndexConfiguration([
        IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE),
        IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
    ], name="what-if")
    evaluations = [evaluate_indexes(q, database, candidate_configuration,
                                    optimizer=optimizer) for q in sample]
    print(evaluate_report(evaluations))

    # ------------------------------------------------------------------
    heading("Step 3 - candidate generalization and configuration search (Figure 4)")
    advisor = XmlIndexAdvisor(database, AdvisorParameters(disk_budget_bytes=256 * 1024))
    normalized = advisor.normalize(workload)
    basic = advisor.enumerate_candidates(normalized)
    generalization = advisor.generalize(basic)
    print(generalization.describe())
    print()
    print(dag_report(generalization.dag))
    evaluator = advisor.build_evaluator(normalized)
    print()
    for algorithm in SearchAlgorithm:
        result = advisor.search(generalization.candidates, generalization.dag,
                                evaluator, algorithm)
        print(result.describe())

    # ------------------------------------------------------------------
    heading("Step 4 - recommendation analysis (Figure 5)")
    recommendation = advisor.recommend(workload)
    print(recommendation.describe())
    analysis = RecommendationAnalysis(database, recommendation)
    print()
    print(analysis.render_table())
    print()
    print("Unseen queries (not part of the training workload):")
    unseen_rows = analysis.evaluate_additional_queries(xmark_unseen_queries())
    for row in unseen_rows:
        print(f"  {row.query_id}: speedup {row.speedup_recommended:.2f}x")

    # ------------------------------------------------------------------
    heading("Step 5 - create the indexes and execute the workload")
    measurements = measure_workload(database, recommendation.queries,
                                    recommendation.configuration)
    for measurement in measurements.values():
        print(measurement.describe())
    baseline = measurements["no-indexes"].total_seconds
    indexed = measurements["recommended"].total_seconds
    if indexed > 0:
        print(f"actual wall-clock speedup: {baseline / indexed:.2f}x")


if __name__ == "__main__":
    main()
