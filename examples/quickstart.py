"""Quickstart: recommend XML indexes for a small workload.

Run with::

    python examples/quickstart.py

The script builds a small XMark-style database, defines a five-query
workload (XQuery + SQL/XML), asks the advisor for a recommendation under
a 128 KiB disk budget, and prints the recommended indexes, their DDL, and
the estimated per-query improvement.
"""

from __future__ import annotations

import os

from repro import (
    AdvisorParameters,
    RecommendationAnalysis,
    Workload,
    XmlIndexAdvisor,
    generate_xmark_database,
)
from repro.workloads import XMarkConfig

#: Database scale; the tier-1 example smoke test shrinks it through
#: ``REPRO_EXAMPLE_SCALE`` so the script stays runnable in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.1"))


def main() -> None:
    # 1. A database: here a generated XMark-style auction database.  Any
    #    XmlDatabase you fill with your own documents works the same way.
    database = generate_xmark_database(XMarkConfig(scale=SCALE, seed=42))
    print(database.describe())

    # 2. A workload: the statements your application runs, with optional
    #    frequencies.  XQuery and SQL/XML are both accepted.
    workload = Workload(name="quickstart")
    workload.add('for $i in doc("xmark.xml")/site/regions/namerica/item '
                 'where $i/quantity > 7 return $i/name', frequency=5.0)
    workload.add('for $i in doc("xmark.xml")/site/regions/africa/item '
                 'where $i/quantity > 7 return $i/name', frequency=2.0)
    workload.add('for $p in doc("xmark.xml")/site/people/person '
                 'where $p/profile/@income > 200000 return $p/name', frequency=3.0)
    workload.add('for $a in doc("xmark.xml")/site/open_auctions/open_auction '
                 'where $a/current > 250 return $a/itemref', frequency=2.0)
    workload.add('SELECT 1 FROM xmark WHERE XMLEXISTS('
                 '\'$d/site/people/person[@id = "person3_1"]\' PASSING doc AS "d")',
                 frequency=4.0)

    # 3. Run the advisor under a disk budget.
    advisor = XmlIndexAdvisor(database,
                              AdvisorParameters(disk_budget_bytes=128 * 1024))
    recommendation = advisor.recommend(workload)

    print()
    print(recommendation.describe())
    print()
    print("DDL to create the recommended indexes:")
    for ddl in recommendation.ddl_statements():
        print("  " + ddl + ";")

    # 4. Analyze: per-query costs with no indexes, with the recommendation,
    #    and with the "overtrained" configuration of all basic candidates.
    analysis = RecommendationAnalysis(database, recommendation)
    print()
    print(analysis.render_table())
    summary = analysis.summary()
    print()
    print(f"estimated workload improvement: "
          f"{summary['improvement_recommended_pct']:.1f}% "
          f"(upper bound {summary['improvement_overtrained_pct']:.1f}%) "
          f"using {summary['recommended_size_bytes'] / 1024:.0f} KiB of disk")


if __name__ == "__main__":
    main()
