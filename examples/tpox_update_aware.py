"""Update-aware index advice on a TPoX-style transaction-processing mix.

Run with::

    python examples/tpox_update_aware.py

TPoX-style workloads mix selective SQL/XML lookups with a substantial
update stream (order inserts/deletes, account balance changes).  Every
index recommended for the reads has to be maintained by the writes, so
the right recommendation depends on the update ratio.  This example
sweeps the update share of the workload and shows how the advisor's
recommendation shrinks as updates dominate -- and what an update-blind
advisor would have recommended instead.
"""

from __future__ import annotations

import os

from repro import AdvisorParameters, XmlIndexAdvisor, generate_tpox_database, tpox_workload
from repro.advisor.benefit import ConfigurationEvaluator
from repro.tools.report import render_table
from repro.workloads import TpoxConfig

#: Database scale; the tier-1 example smoke test shrinks it through
#: ``REPRO_EXAMPLE_SCALE`` so the script stays runnable in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.2"))


def main() -> None:
    database = generate_tpox_database(TpoxConfig(scale=SCALE, seed=7))
    print(database.describe())
    budget = AdvisorParameters(disk_budget_bytes=96 * 1024)

    rows = []
    for update_ratio in (0.0, 0.3, 0.6, 0.9):
        workload = tpox_workload(update_ratio=update_ratio)
        advisor = XmlIndexAdvisor(database, AdvisorParameters(
            disk_budget_bytes=budget.disk_budget_bytes))
        recommendation = advisor.recommend(workload)
        rows.append([f"{update_ratio:.1f}",
                     len(recommendation.configuration),
                     f"{recommendation.total_size_bytes / 1024:.1f}",
                     f"{recommendation.total_benefit:.1f}",
                     f"{recommendation.improvement_percent():.1f}%"])
    print()
    print("Recommendation vs. update share of the workload:")
    print(render_table(["update ratio", "#indexes", "size KiB", "net benefit",
                        "improvement"], rows))

    # What would an update-blind advisor have done on the write-heavy mix?
    heavy = tpox_workload(update_ratio=0.8)
    aware = XmlIndexAdvisor(database, AdvisorParameters(
        disk_budget_bytes=budget.disk_budget_bytes,
        account_for_updates=True)).recommend(heavy)
    blind = XmlIndexAdvisor(database, AdvisorParameters(
        disk_budget_bytes=budget.disk_budget_bytes,
        account_for_updates=False)).recommend(heavy)
    evaluator = ConfigurationEvaluator(database, aware.queries,
                                       AdvisorParameters(account_for_updates=True))
    blind_net_benefit = evaluator.evaluate(blind.configuration).total_benefit

    print()
    print("At 80% updates:")
    print(f"  update-aware advisor: {len(aware.configuration)} index(es), "
          f"net benefit {aware.total_benefit:.1f}")
    print(f"  update-blind advisor: {len(blind.configuration)} index(es), "
          f"net benefit once maintenance is charged: {blind_net_benefit:.1f}")
    print()
    print("Recommended DDL for the balanced (30% update) workload:")
    balanced = XmlIndexAdvisor(database, AdvisorParameters(
        disk_budget_bytes=budget.disk_budget_bytes)).recommend(
        tpox_workload(update_ratio=0.3))
    for ddl in balanced.ddl_statements():
        print("  " + ddl + ";")


if __name__ == "__main__":
    main()
