"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so
that ``pip install -e .`` can fall back to the legacy ``setup.py
develop`` code path on machines that do not have the ``wheel`` package
available (PEP 660 editable installs need it; the legacy path does not).
"""

from setuptools import setup

setup()
