"""Unit tests for the XML serializer (including parse/serialize round-trips)."""

from __future__ import annotations

import pytest

from repro.xmldb.errors import XmlSerializeError
from repro.xmldb.nodes import AttributeNode, ElementNode, build_document
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert serialize(ElementNode("a")) == "<a/>"

    def test_element_with_text(self):
        node = ElementNode("a")
        node.add_text("hello")
        assert serialize(node) == "<a>hello</a>"

    def test_attributes_are_escaped(self):
        node = ElementNode("a")
        node.set_attribute("title", 'Tom & "Jerry" <x>')
        out = serialize(node)
        assert "&amp;" in out and "&quot;" in out and "&lt;" in out

    def test_text_is_escaped(self):
        node = ElementNode("a")
        node.add_text("1 < 2 & 3 > 2")
        out = serialize(node)
        assert "&lt;" in out and "&amp;" in out and "&gt;" in out

    def test_document_emits_declaration(self):
        doc, _ = build_document("site")
        out = serialize(doc)
        assert out.startswith('<?xml version="1.0"')
        assert "<site/>" in out

    def test_attribute_node_alone_raises(self):
        with pytest.raises(XmlSerializeError):
            serialize(AttributeNode("id", "1"))

    def test_indentation_only_affects_structural_whitespace(self):
        doc = parse_document("<a><b><c>x</c></b></a>")
        pretty = serialize(doc, indent=True)
        assert "<c>x</c>" in pretty
        assert pretty.count("\n") >= 3


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "<a/>",
        "<a><b>x</b><b>y</b></a>",
        '<a id="1"><b attr="v">text</b></a>',
        "<a>&lt;escaped&gt; &amp; fine</a>",
        '<site><regions><africa><item id="i1"><quantity>7</quantity></item>'
        "</africa></regions></site>",
    ])
    def test_parse_serialize_parse_is_stable(self, text):
        first = parse_document(text)
        serialized = serialize(first)
        second = parse_document(serialized)
        assert serialize(second) == serialized

    def test_round_trip_preserves_paths_and_values(self, tiny_document):
        serialized = serialize(tiny_document)
        reparsed = parse_document(serialized)
        original_paths = sorted(e.simple_path() for e in tiny_document.descendant_elements())
        new_paths = sorted(e.simple_path() for e in reparsed.descendant_elements())
        assert original_paths == new_paths
        assert (tiny_document.root_element.string_value().split()
                == reparsed.root_element.string_value().split())
