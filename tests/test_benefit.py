"""Unit tests for configuration benefit estimation (Evaluate Indexes usage)."""

from __future__ import annotations

import pytest

from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload


@pytest.fixture
def benefit_workload():
    """Selective queries against the varied database's value distributions."""
    workload = Workload(name="benefit")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=3.0)
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/price > 480 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/profile/@income > 200000 return $p/name', frequency=1.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=1.0)
    return workload


@pytest.fixture
def queries(benefit_workload):
    return normalize_workload(benefit_workload)


@pytest.fixture
def evaluator(varied_database, queries):
    return ConfigurationEvaluator(varied_database, queries)


GOOD_INDEX = IndexDefinition.create("/site/regions/africa/item/quantity",
                                    ValueType.DOUBLE)
USELESS_INDEX = IndexDefinition.create("/site/categories/category/name",
                                       ValueType.VARCHAR)


class TestBaseline:
    def test_baseline_costs_positive_per_query(self, evaluator, queries):
        baseline = evaluator.baseline_costs
        assert set(baseline) == {q.query_id for q in queries}
        assert all(cost > 0 for cost in baseline.values())

    def test_baseline_workload_cost_weighted(self, evaluator, queries):
        expected = sum(evaluator.baseline_costs[q.query_id] * q.frequency
                       for q in queries)
        assert evaluator.baseline_workload_cost == pytest.approx(expected)


class TestEvaluation:
    def test_empty_configuration_has_zero_benefit(self, evaluator):
        result = evaluator.evaluate(IndexConfiguration())
        assert result.total_benefit == pytest.approx(0.0)
        assert result.total_size_bytes == 0.0

    def test_useful_configuration_has_positive_benefit(self, evaluator):
        result = evaluator.evaluate([GOOD_INDEX])
        assert result.total_benefit > 0.0
        assert result.total_size_bytes > 0.0
        assert GOOD_INDEX.key in result.used_index_keys

    def test_useless_configuration_has_no_benefit_and_is_unused(self, evaluator):
        result = evaluator.evaluate([USELESS_INDEX])
        assert result.total_benefit == pytest.approx(0.0)
        assert [i.key for i in result.unused_indexes] == [USELESS_INDEX.key]

    def test_per_query_breakdown(self, evaluator, queries):
        result = evaluator.evaluate([GOOD_INDEX])
        assert len(result.query_evaluations) == len(queries)
        helped = [e for e in result.query_evaluations if e.benefit > 0]
        assert helped, "the quantity index should help the quantity query"
        for evaluation in result.query_evaluations:
            assert evaluation.cost_with_configuration <= evaluation.cost_without_indexes + 1e-9

    def test_index_interaction_shadowing(self, evaluator):
        """Adding a second index that answers the same predicate as an
        existing better one must not increase total benefit much (and the
        shadowed index shows up as unused)."""
        exact = GOOD_INDEX
        shadowing = IndexDefinition.create("/site/regions/*/item/quantity",
                                           ValueType.DOUBLE)
        single = evaluator.evaluate([exact])
        both = evaluator.evaluate([exact, shadowing])
        assert both.total_benefit <= single.total_benefit + 1e-6
        assert shadowing.key in {i.key for i in both.unused_indexes}

    def test_marginal_benefit_of_shadowed_index_is_zero(self, evaluator):
        base = evaluator.evaluate([GOOD_INDEX])
        shadowed = IndexDefinition.create("/site/regions/africa/item/quantity",
                                          ValueType.DOUBLE, name="duplicate")
        assert evaluator.marginal_benefit(base, shadowed) == pytest.approx(0.0)

    def test_marginal_benefit_of_new_coverage_positive(self, evaluator):
        base = evaluator.evaluate([GOOD_INDEX])
        income = IndexDefinition.create("/site/people/person/profile/@income",
                                        ValueType.DOUBLE)
        assert evaluator.marginal_benefit(base, income) > 0.0

    def test_size_estimates_cached_and_summed(self, evaluator):
        first = evaluator.index_size_bytes(GOOD_INDEX)
        second = evaluator.index_size_bytes(GOOD_INDEX)
        assert first == second
        total = evaluator.configuration_size_bytes([GOOD_INDEX, USELESS_INDEX])
        assert total == pytest.approx(first + evaluator.index_size_bytes(USELESS_INDEX))

    def test_describe(self, evaluator):
        result = evaluator.evaluate([GOOD_INDEX])
        assert "benefit" in result.describe()


class TestUpdateAccounting:
    def _update_workload(self):
        workload = Workload(name="with-updates")
        workload.add('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 90 return $i/name', frequency=2.0)
        workload.add('replace value of node /site/regions/africa/item/quantity '
                     'with "5"', frequency=10.0)
        return normalize_workload(workload)

    def test_updates_reduce_net_benefit(self, varied_database):
        queries = self._update_workload()
        evaluator = ConfigurationEvaluator(varied_database, queries)
        result = evaluator.evaluate([GOOD_INDEX])
        read_only = ConfigurationEvaluator(varied_database, queries[:1])
        read_only_result = read_only.evaluate([GOOD_INDEX])
        assert result.total_benefit < read_only_result.total_benefit

    def test_update_cost_can_be_disabled(self, varied_database):
        queries = self._update_workload()
        charging = ConfigurationEvaluator(varied_database, queries,
                                          AdvisorParameters(account_for_updates=True))
        ignoring = ConfigurationEvaluator(varied_database, queries,
                                          AdvisorParameters(account_for_updates=False))
        assert ignoring.evaluate([GOOD_INDEX]).total_benefit > \
            charging.evaluate([GOOD_INDEX]).total_benefit

    def test_update_evaluation_reports_negative_benefit(self, varied_database):
        queries = self._update_workload()
        evaluator = ConfigurationEvaluator(varied_database, queries)
        result = evaluator.evaluate([GOOD_INDEX])
        update_rows = [e for e in result.query_evaluations
                       if e.query_id.endswith("q2")]
        assert update_rows and update_rows[0].benefit < 0.0
