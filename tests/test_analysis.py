"""Unit tests for recommendation analysis (the Figure 5 tooling)."""

from __future__ import annotations

import pytest

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.index.definition import IndexDefinition
from repro.xquery.model import ValueType, Workload


@pytest.fixture(scope="module")
def analysis_setup(varied_database):
    workload = Workload(name="ana")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=3.0)
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/quantity > 95 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=4.0)
    advisor = XmlIndexAdvisor(varied_database,
                              AdvisorParameters(disk_budget_bytes=48 * 1024))
    recommendation = advisor.recommend(workload)
    analysis = RecommendationAnalysis(varied_database, recommendation)
    return recommendation, analysis


class TestQueryCostComparison:
    def test_three_way_comparison_per_query(self, analysis_setup):
        recommendation, analysis = analysis_setup
        comparisons = analysis.compare_query_costs()
        assert len(comparisons) == 3
        for row in comparisons:
            assert row.cost_no_indexes > 0
            assert row.cost_recommended <= row.cost_no_indexes + 1e-9
            assert row.cost_overtrained <= row.cost_no_indexes + 1e-9
            assert row.speedup_recommended >= 1.0 - 1e-9
            assert 0.0 <= row.benefit_captured <= 1.0

    def test_overtrained_configuration_is_all_basic_candidates(self, analysis_setup):
        recommendation, analysis = analysis_setup
        overtrained = analysis.overtrained_configuration
        basic_keys = {c.key for c in recommendation.candidates.basic_candidates}
        assert {(d.pattern.to_text(), d.value_type.value) for d in overtrained} == basic_keys

    def test_recommended_within_overtrained_bound(self, analysis_setup):
        _, analysis = analysis_setup
        summary = analysis.summary()
        assert summary["improvement_recommended_pct"] <= \
            summary["improvement_overtrained_pct"] + 1e-6
        assert summary["improvement_recommended_pct"] > 0

    def test_render_table(self, analysis_setup):
        _, analysis = analysis_setup
        table = analysis.render_table()
        assert "no indexes" in table and "recommended" in table and "overtrained" in table


class TestUnseenQueries:
    def test_additional_queries_evaluated(self, analysis_setup):
        _, analysis = analysis_setup
        rows = analysis.evaluate_additional_queries([
            'for $i in doc("x")/site/regions/asia/item '
            'where $i/quantity > 95 return $i/name',
            'for $p in doc("x")/site/people/person '
            'where $p/@id = "p9" return $p/name',
        ])
        assert len(rows) == 2
        assert all(row.cost_no_indexes > 0 for row in rows)

    def test_accepts_workload_object(self, analysis_setup):
        _, analysis = analysis_setup
        extra = Workload(name="extra")
        extra.add('for $i in doc("x")/site/regions/europe/item '
                  'where $i/price > 490 return $i/name')
        rows = analysis.evaluate_additional_queries(extra)
        assert len(rows) == 1


class TestWhatIf:
    def test_removing_index_does_not_increase_benefit(self, analysis_setup):
        recommendation, analysis = analysis_setup
        victim = recommendation.configuration.definitions[0]
        modified = analysis.what_if(remove=[victim])
        assert modified.total_benefit <= recommendation.total_benefit + 1e-6
        assert len(modified.configuration) == len(recommendation.configuration) - 1

    def test_adding_redundant_index_does_not_change_benefit_much(self, analysis_setup):
        recommendation, analysis = analysis_setup
        duplicate = IndexDefinition.create(
            recommendation.configuration.definitions[0].pattern,
            recommendation.configuration.definitions[0].value_type,
            name="dup_for_whatif")
        modified = analysis.what_if(add=[duplicate])
        assert modified.total_benefit == pytest.approx(recommendation.total_benefit,
                                                       rel=1e-6)

    def test_adding_useful_index_helps(self, varied_database):
        workload = Workload(name="narrow")
        workload.add('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 90 return $i/name')
        workload.add('for $s in doc("x")/site/regions/asia/item '
                     'where $s/price > 490 return $s/name')
        advisor = XmlIndexAdvisor(varied_database,
                                  AdvisorParameters(disk_budget_bytes=3 * 1024))
        recommendation = advisor.recommend(workload)
        analysis = RecommendationAnalysis(varied_database, recommendation)
        extra = IndexDefinition.create("/site/regions/asia/item/price", ValueType.DOUBLE)
        if not recommendation.configuration.contains_pattern(extra.pattern):
            improved = analysis.what_if(add=[extra])
            assert improved.total_benefit >= recommendation.total_benefit
