"""Tests for the perf-recorder's history handling (``tools/bench_record.py``).

The recorder appends one entry per run to ``BENCH_advisor.json``; these
tests pin the tolerant loading added for PR 7: a missing or empty file
starts a fresh series instead of crashing, corrupt JSON is preserved in
a ``.corrupt`` backup, and a legacy single-object file is wrapped into
a list.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture(scope="module")
def bench_record():
    spec = importlib.util.spec_from_file_location(
        "bench_record", _TOOLS / "bench_record.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLoadHistory:
    def test_missing_file_starts_fresh(self, bench_record, tmp_path):
        assert bench_record._load_history(str(tmp_path / "absent.json")) == []

    def test_empty_file_starts_fresh(self, bench_record, tmp_path):
        target = tmp_path / "empty.json"
        target.write_text("")
        assert bench_record._load_history(str(target)) == []

    def test_whitespace_only_file_starts_fresh(self, bench_record, tmp_path):
        target = tmp_path / "blank.json"
        target.write_text("  \n\t\n")
        assert bench_record._load_history(str(target)) == []

    def test_corrupt_file_backed_up_and_fresh(self, bench_record, tmp_path,
                                              capsys):
        target = tmp_path / "bench.json"
        target.write_text("{not json")
        assert bench_record._load_history(str(target)) == []
        backup = tmp_path / "bench.json.corrupt"
        assert backup.read_text() == "{not json"
        assert "invalid JSON" in capsys.readouterr().err

    def test_valid_list_returned_as_is(self, bench_record, tmp_path):
        target = tmp_path / "bench.json"
        entries = [{"schema": 1}, {"schema": 2}]
        target.write_text(json.dumps(entries))
        assert bench_record._load_history(str(target)) == entries

    def test_legacy_single_object_wrapped(self, bench_record, tmp_path):
        target = tmp_path / "bench.json"
        target.write_text(json.dumps({"schema": 1}))
        assert bench_record._load_history(str(target)) == [{"schema": 1}]


class TestWriteHistory:
    def test_round_trips_through_load(self, bench_record, tmp_path):
        target = tmp_path / "bench.json"
        entries = [{"b": 2, "a": 1}]
        bench_record._write_history(str(target), entries)
        assert bench_record._load_history(str(target)) == entries
        assert target.read_text().endswith("\n")
