"""Columnar pre/post encoding (PR 8): the XPath-accelerator backend.

Four contracts are covered:

* **encoding** -- the pre/post plane invariant (descendant iff interval
  containment), document-order positions, and the axis engine's
  step-wise evaluation agreeing with the path-determinism shortcut;
* **maintenance** -- delta-maintained stores byte-identical to full
  rebuilds across randomized interleaved adds/removes (the
  ``PhysicalPathIndex.apply_collection_delta`` contract);
* **equivalence** -- the ``use_columnar`` escape hatch: identical
  results, extraction streams, index structures, and advisor
  recommendations with the columnar engine on and off, with zero
  interpretive spine fallbacks on the columnar path (descendant-heavy
  ``//`` queries included), and the PR 8 routing-shrink regression on a
  co-resident XMark+TPoX database;
* **sizing** -- ``ColumnarStore.nbytes`` equal to the statistics-derived
  ``DatabaseStatistics.columnar_bytes`` (what the advisor's size
  reports and the tuning controller's build budget consult).

The runtime-freeze and fault-smoke coverage runs the same protocol in a
subprocess with ``REPRO_FREEZE_SNAPSHOTS=1`` / ``REPRO_FAULTS=smoke``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from _support import (
    EXECUTOR_COUNTERS,
    assert_counter_parity,
    build_varied_database,
)
from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.faults import FaultPlan, inject
from repro.index.definition import IndexDefinition
from repro.index.physical import build_physical_index
from repro.optimizer.optimizer import Optimizer
from repro.storage.columnar import (
    COLUMNAR_NODE_BYTES,
    KIND_ATTRIBUTE,
    build_columnar_store,
)
from repro.storage.document_store import XmlDatabase
from repro.workloads.tpox import (
    TpoxConfig,
    generate_tpox_database,
    tpox_query_workload,
)
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xmldb.serializer import serialize
from repro.xpath.compiler import compile_xpath, pattern_summary_safe
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_statement, normalize_workload

TESTS = str(Path(__file__).parent)
SRC = str(Path(__file__).parent.parent / "src")

#: Linear spines exercised against the store -- summary-safe shapes and
#: the summary-unsafe ``//`` shapes that used to force the interpreter.
SPINES = [
    "/site/regions/africa/item",
    "/site/regions/*/item/name",
    "/site/people/person/@id",
    "//item/payment",
    "//name",
    "/site//*",
    "/site/regions//*",
    "//site//*",
    "/site//item//name",
    "//*/@id",
]

#: Descendant-heavy navigation statements for executor equivalence.
UNSAFE_QUERIES = ["/site//*", "/site/regions//*", "/site//item//name",
                  "/FIXML//*", "//Order//*"]


def _pattern(text: str):
    compiled = compile_xpath(text)
    assert compiled.columnar_pattern is not None, text
    return compiled.columnar_pattern


def _coresident_database(xmark_scale: float = 0.03, tpox_scale: float = 0.05,
                         seed: int = 42, name: str = "col-co") -> XmlDatabase:
    database = XmlDatabase(name)
    sources = (generate_xmark_database(XMarkConfig(scale=xmark_scale, seed=seed)),
               generate_tpox_database(TpoxConfig(scale=tpox_scale, seed=seed + 1)))
    for source in sources:
        for collection in source.collections:
            target = database.create_collection(collection.name)
            for document in collection:
                target.add_document(serialize(document))
    return database


def _interpreter_nodes(document, text: str):
    return XPathEvaluator(document).select_nodes(parse_xpath(text))


class TestEncoding:
    def test_columns_are_pre_sorted_and_document_ordered(self):
        database = build_varied_database(documents=8, name="col-enc")
        store = database.collection("site").columnar_store
        assert list(store.pre) == list(range(store.node_count))
        node_ids = [store.node_at(p).node_id for p in range(store.node_count)]
        for start, end in store._doc_bounds:
            slab = node_ids[start:end]
            assert slab == sorted(slab)  # position order is document order
        # Every stored node consumes one pre and one post.
        assert sorted(store.post) == list(range(store.node_count))

    def test_pre_post_plane_invariant(self):
        database = build_varied_database(documents=4, name="col-plane")
        store = database.collection("site").columnar_store

        def is_ancestor(v, u):
            node = store.node_at(u).parent
            target = store.node_at(v)
            while node is not None:
                if node is target:
                    return True
                node = node.parent
            return False

        for v in range(store.node_count):
            for u in range(store.node_count):
                if u == v:
                    continue
                plane = store.pre[v] < store.pre[u] and \
                    store.post[u] < store.post[v]
                interval = v < u < store.sub[v]
                assert plane == interval == is_ancestor(v, u), (v, u)

    def test_select_positions_agrees_with_pattern_lookup(self):
        database = build_varied_database(documents=6, name="col-axis")
        store = database.collection("site").columnar_store
        for text in SPINES:
            pattern = _pattern(text)
            positions = list(store.select_positions(pattern))
            assert positions == sorted(positions), text  # document order
            structural = [store.node_at(p).node_id for p in positions]
            shortcut = sorted(node.node_id for node in
                              store.nodes_for_pattern(pattern))
            assert sorted(structural) == shortcut, text

    def test_lookup_matches_interpreter_per_document(self):
        database = build_varied_database(documents=6, name="col-interp")
        collection = database.collection("site")
        store = collection.columnar_store
        for text in SPINES:
            pattern = _pattern(text)
            for doc_id, document in enumerate(collection):
                expected = sorted(node.node_id for node in
                                  _interpreter_nodes(document, text))
                got = [node.node_id for node in
                       store.nodes_for_pattern(pattern, doc_id, ordered=True)]
                assert got == sorted(got), text
                assert sorted(got) == expected, (text, doc_id)

    def test_axis_primitives(self):
        database = build_varied_database(documents=2, name="col-prim")
        store = database.collection("site").columnar_store
        for position in range(store.node_count):
            if store.kind[position] == KIND_ATTRIBUTE:
                continue
            node = store.node_at(position)
            lo, hi = store.descendant_interval(position)
            assert (lo, hi) == (position + 1, store.sub[position])
            attrs = [store.node_at(p).node_id
                     for p in store.attribute_positions(position)]
            assert attrs == [a.node_id for a in node.attributes]
            children = [store.node_at(p).node_id
                        for p in store.child_element_positions(position)]
            assert children == [c.node_id for c in node.children
                                if c.kind.name == "ELEMENT"]


class TestMaintenance:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_randomized_delta_maintenance_byte_identical(self, seed):
        database = build_varied_database(documents=6, name=f"col-delta-{seed}")
        collection = database.collection("site")
        donor = build_varied_database(documents=10, name="col-donor")
        reserve = [serialize(d) for d in donor.collection("site").documents]
        assert collection.columnar_store is not None  # force + maintain
        rng = random.Random(seed * 7)
        patterns = [_pattern(text) for text in SPINES]
        for step in range(14):
            if reserve and (len(collection) < 2 or rng.random() < 0.6):
                collection.add_document(reserve.pop())
            else:
                collection.remove_document(rng.randrange(len(collection)))
            maintained = collection.columnar_store
            rebuilt = build_columnar_store(collection.documents)
            assert maintained.canonical_state() == rebuilt.canonical_state(), step
            pattern = rng.choice(patterns)
            assert [n.node_id for n in
                    maintained.nodes_for_pattern(pattern, ordered=True)] == \
                [n.node_id for n in rebuilt.nodes_for_pattern(pattern,
                                                              ordered=True)]

    def test_append_only_contract(self):
        store = build_columnar_store([])
        with pytest.raises(ValueError, match="appends"):
            store.add_document(None, doc_key=5)


class TestSizing:
    def test_nbytes_matches_statistics(self):
        database = _coresident_database()
        merged = database.statistics
        total = 0.0
        for collection in database.collections:
            store = collection.columnar_store
            stats = merged.collection_stats[collection.name]
            assert store.nbytes == stats.columnar_bytes, collection.name
            total += store.nbytes
        assert merged.columnar_bytes == total
        assert merged.columnar_bytes > 0
        # 5 x 8-byte columns + 1-byte kind + postings slot + the value
        # projection's permutation slot.
        assert COLUMNAR_NODE_BYTES == 57

    def test_recommendation_reports_base_footprint(self):
        database = build_varied_database(documents=20, name="col-size")
        workload = Workload(name="col-size")
        workload.add("/site/regions/africa/item[quantity > 5]")
        advisor = XmlIndexAdvisor(
            database, AdvisorParameters(disk_budget_bytes=64 * 1024.0))
        recommendation = advisor.recommend(workload)
        assert recommendation.base_columnar_bytes == \
            database.statistics.columnar_bytes
        assert "columnar base storage" in recommendation.describe()


class TestExecutorEquivalence:
    def test_unsafe_spines_run_columnar_without_fallback(self):
        database = build_varied_database(documents=10, name="col-exec")
        columnar = QueryExecutor(database, use_columnar=True)
        legacy = QueryExecutor(database, use_columnar=False)
        for text in ["/site//*", "/site/regions//*", "/site//item//name"]:
            query = normalize_statement(text)
            a = columnar.execute(query, extract=True)
            b = legacy.execute(query, extract=True)
            assert a.result_count == b.result_count, text
            assert sorted(n.node_id for n in a.extracted_nodes) == \
                sorted(n.node_id for n in b.extracted_nodes), text
        assert columnar.interpretive_spine_fallbacks == 0
        assert legacy.interpretive_spine_fallbacks > 0
        assert columnar.use_columnar and not legacy.use_columnar
        # PR 10: spine-fallback accounting survives the counter migration.
        assert_counter_parity(columnar, EXECUTOR_COUNTERS)
        assert_counter_parity(legacy, EXECUTOR_COUNTERS)

    def test_env_switch_controls_default(self, monkeypatch):
        database = build_varied_database(documents=2, name="col-env")
        monkeypatch.setenv("REPRO_USE_COLUMNAR", "0")
        assert QueryExecutor(database).use_columnar is False
        monkeypatch.delenv("REPRO_USE_COLUMNAR")
        assert QueryExecutor(database).use_columnar is True

    def test_legacy_interpretive_mode_stays_interpretive(self):
        # ``use_path_summary=False`` benchmarks the object-tree path;
        # the columnar engine must not silently activate under it.
        database = build_varied_database(documents=4, name="col-legacy")
        executor = QueryExecutor(database, use_path_summary=False)
        assert executor._columnar_for("site") is None
        result = executor.execute("/site/people/person[name = 'Person 1 0']")
        assert result.result_count == 1

    def test_index_builds_byte_identical(self):
        database = _coresident_database()
        for text, value_type in [("//item/payment", ValueType.VARCHAR),
                                 ("/site/regions/*/item/quantity",
                                  ValueType.DOUBLE),
                                 ("/site/people/person/@id", ValueType.VARCHAR),
                                 ("/FIXML/Order/@ID", ValueType.VARCHAR)]:
            definition = IndexDefinition.create(text, value_type).as_physical()
            fast = build_physical_index(definition, database, use_columnar=True)
            slow = build_physical_index(definition, database,
                                        use_columnar=False)
            assert fast.scan() == slow.scan(), text
            assert fast.size_bytes == slow.size_bytes

    def test_routing_shrinks_for_unsafe_queries(self):
        # The PR 8 regression: summary-unsafe ``//`` reads used to route
        # to *all* collections; with exact columnar matching the scan
        # only visits the matching ones.
        database = _coresident_database()
        executor = QueryExecutor(database, use_columnar=True)
        query = normalize_statement("/site//*")
        assert not pattern_summary_safe(_pattern("/site//*"))
        plan = executor.optimizer.optimize(query, candidate_indexes=[])
        assert plan.routing == ("xmark",)
        result = executor.execute(query)
        assert result.documents_examined == len(database.collection("xmark"))
        assert executor.documents_routed_out == sum(
            len(c) for c in database.collections
            if c.name != "xmark")
        assert executor.interpretive_spine_fallbacks == 0

    def test_advisor_pipeline_identical_across_hatch(self):
        database = build_varied_database(documents=40, name="col-adv")
        workload = Workload(name="col-adv")
        workload.add("/site/regions/africa/item[quantity > 5]", frequency=2.0)
        workload.add("/site/people/person[name = 'Person 3 0']")
        workload.add("/site/regions/*/item[price > 400]")
        workload.add("/site//item[payment = 'Cash']")
        advisor = XmlIndexAdvisor(
            database, AdvisorParameters(disk_budget_bytes=64 * 1024.0))
        recommendation = advisor.recommend(workload)
        assert recommendation.configuration.definitions

        outcomes = []
        for use_columnar in (True, False):
            executor = QueryExecutor(database, use_columnar=use_columnar)
            executor.create_indexes(recommendation.configuration)
            rows = []
            for query in normalize_workload(workload):
                result = executor.execute(query, extract=True)
                rows.append((query.query_id, result.result_count,
                             result.used_index_plan,
                             tuple(sorted(n.node_id
                                          for n in result.extracted_nodes))))
            entries = {definition.name:
                       executor._indexes[definition.key].scan()
                       for definition in
                       database.catalog.physical_indexes}
            outcomes.append((rows, entries))
            executor.drop_all_indexes()
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("seed", [11, 29])
    def test_randomized_equivalence_under_change(self, seed):
        database = _coresident_database(xmark_scale=0.02, tpox_scale=0.03,
                                        seed=seed, name=f"col-rand-{seed}")
        donors = {
            "xmark": generate_xmark_database(
                XMarkConfig(scale=0.03, seed=seed + 50)).collection("xmark"),
            "order": generate_tpox_database(
                TpoxConfig(scale=0.04, seed=seed + 60)).collection("order"),
        }
        reserve = {name: [serialize(d) for d in collection.documents]
                   for name, collection in donors.items()}
        statements = [s.text for s in list(xmark_query_workload())
                      + list(tpox_query_workload())]
        queries = [normalize_statement(text)
                   for text in statements + UNSAFE_QUERIES]
        queries = [q for q in queries if not q.is_update]
        columnar = QueryExecutor(database, use_columnar=True)
        legacy = QueryExecutor(database, use_columnar=False)
        rng = random.Random(seed * 13)
        for step in range(8):
            name = rng.choice(list(reserve))
            collection = database.collection(name)
            if reserve[name] and (len(collection) < 2 or rng.random() < 0.65):
                collection.add_document(reserve[name].pop())
            else:
                collection.remove_document(rng.randrange(len(collection)))
            for query in rng.sample(queries, 6):
                a = columnar.execute(query, extract=True)
                b = legacy.execute(query, extract=True)
                assert a.result_count == b.result_count, (step, query.query_id)
                assert a.documents_examined == b.documents_examined
                assert sorted(n.node_id for n in a.extracted_nodes) == \
                    sorted(n.node_id for n in b.extracted_nodes)
        assert columnar.interpretive_spine_fallbacks == 0


class TestDegradedMode:
    def test_persistent_publish_fault_degrades_to_interpreter(self):
        database = build_varied_database(documents=6, name="col-fault")
        legacy = QueryExecutor(database, use_columnar=False)
        clean = legacy.execute("/site//*").result_count
        # The legacy run published the summary and statistics snapshots;
        # the columnar build is now the next ``snapshot.publish`` hit.
        executor = QueryExecutor(database, use_columnar=True)
        with inject(FaultPlan.fail_hit("snapshot.publish", hit=1)):
            degraded = executor.execute("/site//*")
        assert degraded.result_count == clean
        assert any("columnar store" in event
                   for event in executor.fallback_events)
        assert executor.interpretive_spine_fallbacks > 0
        # The fault was not published into the cache: the next execution
        # rebuilds the store and runs columnar again.
        after = executor.execute("/site//*")
        assert after.result_count == clean

    def test_smoke_plan_is_invisible(self):
        # Two deterministic clones: the reference run would otherwise
        # publish every snapshot, leaving the smoke plan nothing to hit.
        reference = QueryExecutor(
            build_varied_database(documents=6, name="col-smoke-a"))
        expected = [(reference.execute(text).result_count)
                    for text in SPINES[:6]]
        noisy = QueryExecutor(
            build_varied_database(documents=6, name="col-smoke-b"))
        # Period 2 so the plan fires in both hatch modes: with the
        # columnar engine off only the summary and merged-statistics
        # publications consult the seam before the queries run.
        with inject(FaultPlan.smoke(period=2)) as injector:
            got = [(noisy.execute(text).result_count) for text in SPINES[:6]]
        assert got == expected
        assert injector.injected, "the smoke plan never fired"


class TestFrozenSubprocess:
    def _run(self, extra_env):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([SRC, TESTS])
        env["REPRO_USE_COLUMNAR"] = "1"  # assert columnar even under the
        env.update(extra_env)            # hatch-off CI matrix job
        snippet = """
            from _support import build_varied_database
            from repro.executor.executor import QueryExecutor
            from repro.storage.columnar import build_columnar_store

            database = build_varied_database(documents=5, name="frozen")
            collection = database.collection("site")
            store = collection.columnar_store
            collection.add_document("<site><people><person id='p9'>"
                                    "<name>Zed</name></person></people></site>")
            collection.remove_document(0)
            maintained = collection.columnar_store
            rebuilt = build_columnar_store(collection.documents)
            assert maintained.canonical_state() == rebuilt.canonical_state()
            executor = QueryExecutor(database)
            result = executor.execute("/site//*", extract=True)
            assert result.result_count == len(collection)
            assert executor.interpretive_spine_fallbacks == 0
            print("COLUMNAR-OK", result.extracted_count)
        """
        return subprocess.run([sys.executable, "-c",
                               textwrap.dedent(snippet)],
                              capture_output=True, text=True, env=env)

    def test_runs_under_snapshot_freeze(self):
        completed = self._run({"REPRO_FREEZE_SNAPSHOTS": "1"})
        assert completed.returncode == 0, completed.stderr
        assert "COLUMNAR-OK" in completed.stdout

    def test_runs_under_fault_smoke(self):
        completed = self._run({"REPRO_FAULTS": "smoke",
                               "REPRO_FREEZE_SNAPSHOTS": "1"})
        assert completed.returncode == 0, completed.stderr
        assert "COLUMNAR-OK" in completed.stdout
