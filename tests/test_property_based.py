"""Property-based tests (hypothesis) for the core data structures and invariants.

Covered invariants:

* XML parser / serializer round-trips arbitrary generated documents.
* Pattern matching agrees with pattern containment (if P contains Q, then
  every concrete path matched by Q is matched by P).
* Generalization produces patterns that contain their sources.
* The physical index returns exactly the entries a naive scan would.
* The greedy searches never exceed the disk budget and never return a
  negative-benefit configuration.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.index.definition import IndexDefinition
from repro.index.physical import build_physical_index
from repro.storage.document_store import XmlDatabase
from repro.storage.statistics import collect_statistics
from repro.xmldb.nodes import DocumentNode, ElementNode, build_document
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import (
    PathPattern,
    PatternStep,
    generalize_pair,
    pattern_contains,
)
from repro.xquery.model import ValueType

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_LABELS = ["a", "b", "c", "item", "name", "quantity"]
_label = st.sampled_from(_LABELS)

_pattern_step = st.builds(
    PatternStep,
    label=st.one_of(_label, st.just("*"),
                    st.sampled_from(["@id", "@key", "@*"])),
    descendant=st.booleans(),
)


def _fix_steps(steps):
    """Attribute steps may only appear last; wildcards stay as generated."""
    cleaned = []
    for index, step in enumerate(steps):
        label = step.label
        if label.startswith("@") and index != len(steps) - 1:
            label = label.lstrip("@") or "a"
            if label == "*":
                label = "a"
        cleaned.append(PatternStep(label=label, descendant=step.descendant))
    return tuple(cleaned)


_pattern = st.lists(_pattern_step, min_size=1, max_size=4).map(
    lambda steps: PathPattern(steps=_fix_steps(steps)))

_element_text = st.text(alphabet=string.ascii_letters + string.digits + " .-",
                        max_size=12)
_attr_value = st.text(alphabet=string.ascii_letters + string.digits + " ",
                      max_size=8)


@st.composite
def _documents(draw, max_depth=3, max_children=3):
    """Generate small random documents over a fixed label alphabet."""
    def build(element: ElementNode, depth: int) -> None:
        for _ in range(draw(st.integers(0, max_children))):
            child = element.add_element(draw(_label))
            if draw(st.booleans()):
                child.set_attribute(draw(st.sampled_from(["id", "key"])),
                                    draw(_attr_value))
            if depth < max_depth and draw(st.booleans()):
                build(child, depth + 1)
            else:
                text = draw(st.one_of(_element_text,
                                      st.integers(0, 999).map(str)))
                if text:
                    child.add_text(text)

    doc, root = build_document(draw(_label))
    build(root, 1)
    doc.assign_node_ids()
    return doc


# ----------------------------------------------------------------------
# Parser / serializer round trip
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @given(_documents())
    @settings(max_examples=40, deadline=None)
    def test_serialize_parse_round_trip(self, document):
        serialized = serialize(document)
        reparsed = parse_document(serialized)
        assert serialize(reparsed) == serialized
        original_paths = sorted(e.simple_path() for e in document.descendant_elements())
        reparsed_paths = sorted(e.simple_path() for e in reparsed.descendant_elements())
        assert original_paths == reparsed_paths


# ----------------------------------------------------------------------
# Pattern algebra properties
# ----------------------------------------------------------------------
class TestPatternProperties:
    @given(_pattern)
    @settings(max_examples=80, deadline=None)
    def test_parse_render_round_trip(self, pattern):
        assert PathPattern.parse(pattern.to_text()) == pattern

    @given(_pattern)
    @settings(max_examples=80, deadline=None)
    def test_containment_reflexive(self, pattern):
        assert pattern_contains(pattern, pattern)

    @given(_pattern, _pattern, _pattern)
    @settings(max_examples=60, deadline=None)
    def test_containment_transitive(self, a, b, c):
        if pattern_contains(a, b) and pattern_contains(b, c):
            assert pattern_contains(a, c)

    @given(_pattern, _documents())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_containment_consistent_with_matching(self, pattern, document):
        """If the universal pattern //* contains P... more usefully: for any
        concrete path in the document matched by P, any pattern that contains
        P must also match that path."""
        general = PathPattern(steps=tuple(
            PatternStep(label="*" if not s.is_attribute else "@*",
                        descendant=True) for s in pattern.steps[-1:])) \
            if pattern.steps else pattern
        paths = [e.simple_path() for e in document.descendant_elements()]
        paths += [a.simple_path() for e in document.descendant_elements()
                  for a in e.attributes]
        if pattern_contains(general, pattern):
            for path in paths:
                if pattern.matches(path):
                    assert general.matches(path)

    @given(_pattern, _pattern)
    @settings(max_examples=80, deadline=None)
    def test_generalize_pair_contains_both_sources(self, first, second):
        result = generalize_pair(first, second)
        if result is not None:
            assert pattern_contains(result, first)
            assert pattern_contains(result, second)
            assert result != first and result != second

    @given(_pattern)
    @settings(max_examples=60, deadline=None)
    def test_universal_contains_every_element_pattern(self, pattern):
        universal = PathPattern.parse("//*")
        if not pattern.indexes_attribute and not any(
                s.is_attribute for s in pattern.steps):
            assert pattern_contains(universal, pattern)


# ----------------------------------------------------------------------
# Physical index correctness vs. naive evaluation
# ----------------------------------------------------------------------
class TestPhysicalIndexProperties:
    @given(st.lists(_documents(), min_size=1, max_size=4),
           st.sampled_from(_LABELS))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_index_entries_match_naive_scan(self, documents, label):
        database = XmlDatabase("prop")
        collection = database.create_collection("c")
        for document in documents:
            collection.add_document(document)
        pattern_text = "//" + label
        definition = IndexDefinition.create(pattern_text, ValueType.VARCHAR)
        index = build_physical_index(definition, database)
        pattern = PathPattern.parse(pattern_text)
        expected = 0
        for document in collection:
            for element in document.descendant_elements():
                if pattern.matches(element.simple_path()):
                    expected += 1
        assert index.entry_count == expected

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=40),
           st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_range_lookup_matches_filter(self, values, threshold):
        database = XmlDatabase("nums")
        collection = database.create_collection("c")
        for index, value in enumerate(values):
            collection.add_document(f"<row><v>{value}</v></row>")
        definition = IndexDefinition.create("/row/v", ValueType.DOUBLE)
        physical = build_physical_index(definition, database)
        hits = physical.lookup_range(BinaryOp.GT, float(threshold))
        assert len(hits) == sum(1 for v in values if v > threshold)
        equal_hits = physical.lookup_equal(float(values[0]))
        assert len(equal_hits) == values.count(values[0])


# ----------------------------------------------------------------------
# Statistics invariants
# ----------------------------------------------------------------------
class TestStatisticsProperties:
    @given(st.lists(_documents(), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cardinalities_sum_to_element_count(self, documents):
        stats = collect_statistics(documents)
        element_paths = {p: s for p, s in stats.path_stats.items() if "/@" not in p}
        assert sum(s.node_count for s in element_paths.values()) == \
            stats.total_element_count
        universal = PathPattern.parse("//*")
        assert stats.cardinality(universal) == stats.total_element_count

    @given(st.lists(_documents(), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_merge_equals_bulk_collection(self, documents):
        bulk = collect_statistics(documents)
        merged = collect_statistics(documents[:1])
        merged.merge(collect_statistics(documents[1:]))
        assert merged.document_count == bulk.document_count
        assert merged.total_element_count == bulk.total_element_count
        assert set(merged.path_stats) == set(bulk.path_stats)
        for path, stat in bulk.path_stats.items():
            assert merged.path_stats[path].node_count == stat.node_count
