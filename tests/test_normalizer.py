"""Unit tests for statement normalization (lowering to PathPredicates)."""

from __future__ import annotations

import pytest

from repro.xpath.ast import BinaryOp
from repro.xquery.errors import QueryParseError
from repro.xquery.model import QueryLanguage, UpdateKind, ValueType
from repro.xquery.normalizer import (
    detect_language,
    location_path_to_pattern,
    normalize_statement,
    normalize_workload,
)
from repro.xquery.model import Workload
from repro.xpath.parser import parse_xpath


def _predicate_map(query):
    return {p.pattern.to_text(): p for p in query.predicates}


class TestXQueryNormalization:
    def test_where_clause_comparisons_become_predicates(self):
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item '
            'where $i/quantity > 5 and $i/payment = "Creditcard" return $i/name')
        predicates = _predicate_map(query)
        quantity = predicates["/site/regions/africa/item/quantity"]
        assert quantity.op is BinaryOp.GT
        assert quantity.value == pytest.approx(5.0)
        assert quantity.value_type is ValueType.DOUBLE
        payment = predicates["/site/regions/africa/item/payment"]
        assert payment.op is BinaryOp.EQ
        assert payment.value == "Creditcard"
        assert payment.value_type is ValueType.VARCHAR

    def test_binding_spine_recorded_as_extraction(self):
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item '
            'where $i/quantity > 5 return $i/name')
        extraction = {p.to_text() for p in query.extraction_paths}
        assert "/site/regions/africa/item" in extraction
        assert "/site/regions/africa/item/name" in extraction

    def test_step_predicates_in_binding_source(self):
        query = normalize_statement(
            'for $p in doc("x")/site/people/person[profile/age > 30] return $p/name')
        predicates = _predicate_map(query)
        assert "/site/people/person/profile/age" in predicates
        assert predicates["/site/people/person/profile/age"].op is BinaryOp.GT

    def test_let_binding_resolution(self):
        query = normalize_statement(
            'for $i in doc("x")/site/regions/asia/item '
            'let $q := $i/quantity where $q > 3 return $i/name')
        predicates = _predicate_map(query)
        assert "/site/regions/asia/item/quantity" in predicates

    def test_attribute_predicate(self):
        query = normalize_statement(
            'for $p in doc("x")/site/people/person '
            'where $p/profile/@income > 50000 return $p/name')
        predicates = _predicate_map(query)
        income = predicates["/site/people/person/profile/@income"]
        assert income.value_type is ValueType.DOUBLE
        assert income.pattern.indexes_attribute

    def test_reversed_comparison_is_flipped(self):
        query = normalize_statement(
            'for $i in doc("x")//item where 5 < $i/quantity return $i')
        predicate = [p for p in query.predicates if not p.is_existence][0]
        assert predicate.op is BinaryOp.GT
        assert predicate.value == pytest.approx(5.0)

    def test_contains_produces_structural_predicate(self):
        query = normalize_statement(
            'for $i in doc("x")//item where contains($i/name, "gold") return $i')
        patterns = {p.pattern.to_text() for p in query.predicates}
        assert "//item/name" in patterns

    def test_unbound_variable_raises(self):
        with pytest.raises(QueryParseError):
            normalize_statement('for $i in doc("x")/a where $z/b > 1 return $i')

    def test_duplicate_predicates_are_merged(self):
        query = normalize_statement(
            'for $i in doc("x")//item where $i/quantity > 5 and $i/quantity > 5 return $i')
        value_predicates = [p for p in query.predicates if p.op is not None]
        assert len(value_predicates) == 1

    def test_frequency_carried_through(self):
        from repro.xquery.model import WorkloadStatement

        statement = WorkloadStatement(
            text='for $i in doc("x")//item where $i/quantity > 5 return $i',
            frequency=4.0)
        query = normalize_statement(statement)
        assert query.frequency == pytest.approx(4.0)


class TestSqlXmlNormalization:
    def test_xmlexists_predicates(self):
        query = normalize_statement(
            'SELECT 1 FROM orders WHERE XMLEXISTS('
            '\'$d/FIXML/Order[@Side = "2"]\' PASSING doc AS "d")')
        assert query.language is QueryLanguage.SQLXML
        predicates = _predicate_map(query)
        assert "/FIXML/Order/@Side" in predicates
        assert predicates["/FIXML/Order/@Side"].value == "2"
        # The XMLEXISTS spine itself is an (existence) predicate.
        assert "/FIXML/Order" in predicates

    def test_xmlquery_paths_are_extraction_only(self):
        query = normalize_statement(
            "SELECT XMLQUERY('$d/Security/Price/LastTrade' PASSING doc AS \"d\") "
            "FROM security")
        assert not [p for p in query.predicates if p.op is not None]
        extraction = {p.to_text() for p in query.extraction_paths}
        assert "/Security/Price/LastTrade" in extraction

    def test_numeric_attribute_comparison(self):
        query = normalize_statement(
            "SELECT 1 FROM custacc WHERE XMLEXISTS("
            "'$d/Customer/Accounts/Account[@balance > 100000]' PASSING doc AS \"d\")")
        predicates = _predicate_map(query)
        balance = predicates["/Customer/Accounts/Account/@balance"]
        assert balance.value_type is ValueType.DOUBLE


class TestXPathNormalization:
    def test_plain_path(self):
        query = normalize_statement("/site/people/person/name")
        assert query.language is QueryLanguage.XPATH
        extraction = {p.to_text() for p in query.extraction_paths}
        assert "/site/people/person/name" in extraction

    def test_path_with_predicate(self):
        query = normalize_statement('/site/regions/africa/item[quantity > 5]/name')
        predicates = _predicate_map(query)
        assert "/site/regions/africa/item/quantity" in predicates

    def test_text_step_folded_into_pattern(self):
        pattern = location_path_to_pattern(parse_xpath("/a/b/text()"))
        assert pattern.to_text() == "/a/b"


class TestUpdateNormalization:
    def test_insert_node(self):
        query = normalize_statement(
            'insert node <Order ID="1"/> into /FIXML')
        assert query.is_update
        assert query.update_kind is UpdateKind.INSERT
        touched = {p.to_text() for p in query.touched_patterns}
        assert "/FIXML" in touched
        assert "/FIXML//*" in touched

    def test_delete_node(self):
        query = normalize_statement('delete node /FIXML/Order[@ID = "7"]')
        assert query.update_kind is UpdateKind.DELETE
        touched = {p.to_text() for p in query.touched_patterns}
        assert "/FIXML/Order" in touched

    def test_replace_value(self):
        query = normalize_statement(
            'replace value of node /FIXML/Order/OrdQty/@Qty with "250"')
        assert query.update_kind is UpdateKind.UPDATE
        touched = {p.to_text() for p in query.touched_patterns}
        assert "/FIXML/Order/OrdQty/@Qty" in touched

    def test_sql_insert_touches_everything(self):
        query = normalize_statement(
            "INSERT INTO orders VALUES (XMLPARSE(DOCUMENT '<FIXML/>'))")
        assert query.is_update
        touched = {p.to_text() for p in query.touched_patterns}
        assert "//*" in touched

    def test_updates_have_no_candidates(self):
        query = normalize_statement('delete node /FIXML/Order[@ID = "7"]')
        assert query.predicates == []


class TestLanguageDetection:
    @pytest.mark.parametrize("text,expected", [
        ('for $i in doc("x")/a return $i', QueryLanguage.XQUERY),
        ('doc("x")/a/b', QueryLanguage.XQUERY),
        ("SELECT 1 FROM t WHERE XMLEXISTS('$d/a' PASSING d AS \"d\")",
         QueryLanguage.SQLXML),
        ("/site/people/person", QueryLanguage.XPATH),
        ("insert node <a/> into /b", QueryLanguage.XQUERY),
    ])
    def test_detection(self, text, expected):
        assert detect_language(text) is expected


class TestWorkloadNormalization:
    def test_normalize_workload_preserves_order_and_ids(self, tiny_workload):
        queries = normalize_workload(tiny_workload)
        assert len(queries) == len(tiny_workload)
        assert queries[0].query_id.endswith("q1")
        assert queries[0].frequency == pytest.approx(3.0)

    def test_mixed_language_workload(self):
        workload = Workload(name="mixed")
        workload.add('for $i in doc("x")//item where $i/quantity > 1 return $i')
        workload.add("SELECT 1 FROM t WHERE XMLEXISTS('$d/a[b = \"c\"]' PASSING doc AS \"d\")")
        workload.add("delete node /a/b")
        queries = normalize_workload(workload)
        languages = [q.language for q in queries]
        assert QueryLanguage.XQUERY in languages
        assert QueryLanguage.SQLXML in languages
        assert any(q.is_update for q in queries)
