"""Equivalence tests for the vectorized predicate engine (PR 9).

The set-at-a-time engine answers value predicates with two bisects over
each path's value-sorted projection (`ColumnarStore.match_positions` /
`matching_documents`) and serves extraction values straight from the
values column.  Every test here pins the same property: the vectorized
path, the legacy object-hop path (``use_vectorized_predicates=False``)
and the purely interpretive path (``use_path_summary=False``) return
**byte-identical** matching documents, extracted node ids and extracted
values -- across randomized mixed-type data (numeric-looking strings
like ``"010"``, negatives, floats, empty values), every comparison
operator, interleaved add/remove deltas, and under
``REPRO_FREEZE_SNAPSHOTS=1``.

The ``scan_node_materializations`` counter is the structural guarantee:
zero on the vectorized scan path (predicates and value extraction never
left the columns), positive on every legacy path.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap

from _support import (
    EXECUTOR_COUNTERS,
    TINY_SITE_XML,
    assert_counter_parity,
    build_varied_database,
)
from repro.executor.executor import QueryExecutor
from repro.storage import XmlDatabase
from repro.xmldb.nodes import build_document, normalized_node_value
from repro.xquery.normalizer import normalize_statement

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")
TESTS = os.path.dirname(os.path.abspath(__file__))

#: Mixed value pool: plain numerics, a numeric-looking string whose
#: lexicographic and numeric orders disagree ("010" < "9" numerically
#: but not as strings), negatives, floats, empty, and non-castable text.
VALUE_POOL = ["7", "010", "10", "9", "-3.5", "0", "", "drum", "7.0",
              "12abc", "100", "-41", "3.25", "carved mask"]

OPS = ["=", "!=", "<", "<=", ">", ">="]

#: String literals exercise the lexicographic compare; float literals
#: the parsed-double compare (including values no node carries).
STR_LITERALS = ["010", "7", "drum", "", "-3.5", "zzz"]
FLOAT_LITERALS = ["7.0", "0.5", "0.0", "10.0", "3.2", "1000.0"]


def _mixed_database(documents: int = 30, seed: int = 9,
                    name: str = "vec-mixed") -> XmlDatabase:
    """Randomized documents over the tiny <site> schema with values
    drawn from the mixed pool (so every operator hits genuine type
    boundaries: castable vs not, empty, negative, float)."""
    rng = random.Random(seed)
    database = XmlDatabase(name)
    collection = database.create_collection("site")
    for d in range(documents):
        doc, site = build_document("site")
        region = site.add_element("regions").add_element(
            rng.choice(["africa", "namerica"]))
        for k in range(rng.randint(1, 4)):
            item = region.add_element("item",
                                      attributes={"id": f"i{d}_{k}"})
            item.add_element("quantity", rng.choice(VALUE_POOL))
            item.add_element("price", rng.choice(VALUE_POOL))
            item.add_element("name", rng.choice(VALUE_POOL))
        collection.add_document(doc)
    return database


def _predicate_statements() -> list:
    statements = []
    for op in OPS:
        for literal in STR_LITERALS:
            statements.append(
                'for $i in doc("x")/site/regions/africa/item '
                f'where $i/quantity {op} "{literal}" return $i/name')
        for literal in FLOAT_LITERALS:
            statements.append(
                'for $i in doc("x")/site/regions/africa/item '
                f'where $i/quantity {op} {literal} return $i/name')
    # Conjunctions (set intersection) and attribute predicates.
    statements.append(
        'for $i in doc("x")/site/regions/africa/item '
        'where $i/quantity > 3.0 and $i/price < "7" return $i/name')
    statements.append(
        'for $i in doc("x")/site/regions/africa/item '
        'where $i/@id != "i0_0" return $i/quantity')
    return statements


def _signature(executor: QueryExecutor, statement: str):
    query = normalize_statement(statement)
    result = executor.execute(query, extract=True, extract_values=True)
    return (result.result_count,
            result.documents_examined,
            tuple(node.node_id for node in result.extracted_nodes),
            tuple(result.extracted_values))


def _three_executors(database: XmlDatabase):
    # Hatches pinned explicitly (not inherited from the environment) so
    # the three paths stay distinct under the hatch-off CI matrix jobs.
    return (QueryExecutor(database, use_columnar=True,
                          use_vectorized_predicates=True),
            QueryExecutor(database, use_columnar=True,
                          use_vectorized_predicates=False),
            QueryExecutor(database, use_path_summary=False))


class TestEquivalence:
    def test_randomized_predicates_byte_identical(self):
        database = _mixed_database()
        vectorized, hatch, interpretive = _three_executors(database)
        for statement in _predicate_statements():
            expected = _signature(hatch, statement)
            assert _signature(vectorized, statement) == expected, statement
            assert _signature(interpretive, statement) == expected, statement
        # PR 10: the legacy counters became registry metrics -- parity
        # must hold after a randomized workload on every hatch mode.
        for executor in (vectorized, hatch, interpretive):
            assert_counter_parity(executor, EXECUTOR_COUNTERS)

    def test_navigation_only_queries(self):
        database = _mixed_database(seed=11, name="vec-nav")
        vectorized, hatch, interpretive = _three_executors(database)
        for statement in ("/site/regions/africa/item/name",
                          "/site//quantity",
                          "/site/regions/*/item/@id"):
            expected = _signature(hatch, statement)
            assert _signature(vectorized, statement) == expected, statement
            assert _signature(interpretive, statement) == expected, statement

    def test_equivalence_across_interleaved_deltas(self):
        database = _mixed_database(seed=13, name="vec-delta")
        collection = database.collection("site")
        vectorized, hatch, interpretive = _three_executors(database)
        statements = _predicate_statements()[::7]
        rng = random.Random(29)
        for round_number in range(4):
            for statement in statements:
                expected = _signature(hatch, statement)
                assert _signature(vectorized, statement) == expected, statement
                assert _signature(interpretive, statement) == expected, statement
            # Interleave an add and a remove (delta-maintained snapshots
            # carry untouched projections, rebuild touched ones).
            value = rng.choice(VALUE_POOL)
            collection.add_document(
                "<site><regions><africa><item id='d%d'>"
                "<quantity>%s</quantity><name>added</name>"
                "</item></africa></regions></site>" % (round_number, value))
            collection.remove_document(rng.randrange(len(collection)))

    def test_env_hatch_disables_vectorized(self, monkeypatch):
        monkeypatch.setenv("REPRO_USE_VECTORIZED", "0")
        database = _mixed_database(documents=3, seed=3, name="vec-env")
        executor = QueryExecutor(database)
        assert executor.use_vectorized_predicates is False
        executor.execute('for $i in doc("x")/site/regions/africa/item '
                         'where $i/quantity > 3.0 return $i/name')
        assert executor.scan_node_materializations > 0


class TestNoMaterialization:
    def test_vectorized_value_scan_touches_no_nodes(self):
        database = build_varied_database(documents=20, name="vec-zero")
        vectorized = QueryExecutor(database, use_columnar=True,
                                   use_vectorized_predicates=True)
        hatch = QueryExecutor(database, use_columnar=True,
                              use_vectorized_predicates=False)
        statement = ('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 50.0 return $i/name')
        vec_result = vectorized.execute(statement, extract_values=True)
        hatch_result = hatch.execute(statement, extract_values=True)
        assert vec_result.result_count == hatch_result.result_count
        assert vec_result.extracted_values == hatch_result.extracted_values
        assert vec_result.extracted_values  # non-degenerate workload
        assert vectorized.scan_node_materializations == 0, (
            "the vectorized scan path materialized XmlNode lists")
        assert hatch.scan_node_materializations > 0

    def test_index_plan_residuals_use_the_set_engine(self):
        from repro.index.definition import IndexDefinition
        from repro.xquery.model import ValueType

        database = build_varied_database(documents=40, name="vec-index")
        vectorized = QueryExecutor(database, use_columnar=True,
                                   use_vectorized_predicates=True)
        hatch = QueryExecutor(database, use_columnar=True,
                              use_vectorized_predicates=False)
        statement = ('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 90.0 return $i/name')
        scan_expected = hatch.execute(statement, extract_values=True)
        for executor in (vectorized, hatch):
            executor.create_indexes([IndexDefinition.create(
                "/site/regions/*/item/quantity", ValueType.DOUBLE)])
        vectorized.scan_node_materializations = 0
        vec_result = vectorized.execute(statement, extract_values=True)
        hatch_result = hatch.execute(statement, extract_values=True)
        assert vec_result.used_index_plan and hatch_result.used_index_plan
        assert vec_result.result_count == scan_expected.result_count
        assert vec_result.extracted_values == hatch_result.extracted_values
        assert vec_result.extracted_values == scan_expected.extracted_values
        assert vectorized.scan_node_materializations == 0
        vectorized.drop_all_indexes()
        hatch.drop_all_indexes()


class TestColumnsAndSynopsisAgree:
    """Satellite: the values column and the statistics synopsis are fed
    by one shared normalizer (`normalized_node_value`), so their
    per-path value views can never disagree."""

    def test_values_column_matches_synopsis_per_path(self):
        database = _mixed_database(seed=17, name="vec-synopsis")
        collection = database.collection("site")
        store = collection.columnar_store
        stats = database.statistics.collection_stats["site"]
        for path, stat in stats.path_stats.items():
            pid = store._path_index.get(path)
            assert pid is not None, path
            positions = store._postings[pid]
            column = [store.values[p] for p in positions]
            assert stat.node_count == len(column)
            # The synopsis records only value-bearing nodes; the column
            # stores "" for structural ones.
            assert stat.distinct_values == len(
                {value for value in column if value})
            castable = []
            for value in column:
                if not value:
                    continue
                try:
                    castable.append(float(value))
                except ValueError:
                    pass
            assert stat.numeric_count == len(castable)
            if castable:
                assert stat.min_value == min(castable)
                assert stat.max_value == max(castable)

    def test_values_column_is_normalized_node_value(self):
        database = XmlDatabase("vec-norm")
        collection = database.create_collection("site")
        collection.add_document(TINY_SITE_XML)
        store = collection.columnar_store
        for position, node in enumerate(store._nodes):
            assert store.values[position] == normalized_node_value(node)


class TestFrozenSubprocess:
    def _run(self, extra_env):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([SRC, TESTS])
        env["REPRO_USE_VECTORIZED"] = "1"  # assert vectorized even under
        env["REPRO_USE_COLUMNAR"] = "1"    # the hatch-off CI matrix jobs
        env.update(extra_env)
        snippet = """
            from test_vectorized import (_mixed_database, _signature,
                                         _predicate_statements)
            from repro.executor.executor import QueryExecutor

            database = _mixed_database(documents=8, name="vec-frozen")
            collection = database.collection("site")
            vectorized = QueryExecutor(database)
            hatch = QueryExecutor(database, use_vectorized_predicates=False)
            statements = _predicate_statements()[::9]
            for statement in statements:
                assert _signature(vectorized, statement) == \\
                    _signature(hatch, statement), statement
            collection.add_document("<site><regions><africa><item id='z'>"
                                    "<quantity>010</quantity>"
                                    "<name>frozen</name>"
                                    "</item></africa></regions></site>")
            collection.remove_document(0)
            for statement in statements:
                assert _signature(vectorized, statement) == \\
                    _signature(hatch, statement), statement
            print("VECTORIZED-OK", vectorized.scan_node_materializations)
        """
        return subprocess.run([sys.executable, "-c",
                               textwrap.dedent(snippet)],
                              capture_output=True, text=True, env=env)

    def test_runs_under_snapshot_freeze(self):
        completed = self._run({"REPRO_FREEZE_SNAPSHOTS": "1"})
        assert completed.returncode == 0, completed.stderr
        assert "VECTORIZED-OK" in completed.stdout

    def test_runs_under_fault_smoke(self):
        completed = self._run({"REPRO_FAULTS": "smoke",
                               "REPRO_FREEZE_SNAPSHOTS": "1"})
        assert completed.returncode == 0, completed.stderr
        assert "VECTORIZED-OK" in completed.stdout
