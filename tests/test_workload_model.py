"""Unit tests for the workload model (Workload, WorkloadStatement, PathPredicate)."""

from __future__ import annotations

import pytest

from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.errors import WorkloadError
from repro.xquery.model import (
    NormalizedQuery,
    PathPredicate,
    QueryLanguage,
    ValueType,
    Workload,
    WorkloadStatement,
)


class TestPathPredicate:
    def test_equality_and_range_flags(self):
        pattern = PathPattern.parse("/a/b")
        eq = PathPredicate(pattern=pattern, op=BinaryOp.EQ, value="x")
        rng = PathPredicate(pattern=pattern, op=BinaryOp.GT, value=5.0,
                            value_type=ValueType.DOUBLE)
        exist = PathPredicate(pattern=pattern)
        assert eq.is_equality and not eq.is_range and not eq.is_existence
        assert rng.is_range and not rng.is_equality
        assert exist.is_existence

    def test_describe_formats_values(self):
        pattern = PathPattern.parse("/a/b")
        assert PathPredicate(pattern=pattern).describe() == "/a/b"
        numeric = PathPredicate(pattern=pattern, op=BinaryOp.GT, value=5.0,
                                value_type=ValueType.DOUBLE)
        assert numeric.describe() == "/a/b > 5"
        text = PathPredicate(pattern=pattern, op=BinaryOp.EQ, value="x")
        assert "x" in text.describe()

    def test_predicates_are_hashable(self):
        pattern = PathPattern.parse("/a/b")
        first = PathPredicate(pattern=pattern, op=BinaryOp.EQ, value="x")
        second = PathPredicate(pattern=pattern, op=BinaryOp.EQ, value="x")
        assert first == second
        assert len({first, second}) == 1


class TestWorkloadStatement:
    def test_positive_frequency_required(self):
        with pytest.raises(WorkloadError):
            WorkloadStatement(text="/a", frequency=0.0)
        with pytest.raises(WorkloadError):
            WorkloadStatement(text="/a", frequency=-1.0)


class TestWorkload:
    def test_add_strings_and_statements(self):
        workload = Workload(name="w")
        workload.add("/a/b", frequency=2.0)
        workload.add(WorkloadStatement(text="/c/d", frequency=3.0))
        assert len(workload) == 2
        assert workload.total_frequency == pytest.approx(5.0)
        assert workload[0].statement_id == "w-q1"

    def test_iteration_preserves_order(self):
        workload = Workload(name="w")
        for index in range(5):
            workload.add(f"/p{index}")
        assert [s.text for s in workload] == [f"/p{i}" for i in range(5)]

    def test_scaled_multiplies_frequencies(self):
        workload = Workload(name="w")
        workload.add("/a", frequency=2.0)
        scaled = workload.scaled(3.0)
        assert scaled.total_frequency == pytest.approx(6.0)
        # Original untouched.
        assert workload.total_frequency == pytest.approx(2.0)

    def test_merged_with(self):
        first = Workload(name="a")
        first.add("/a")
        second = Workload(name="b")
        second.add("/b")
        merged = first.merged_with(second)
        assert len(merged) == 2
        assert merged.name == "a+b"

    def test_extend(self):
        workload = Workload(name="w")
        workload.extend(["/a", "/b", "/c"])
        assert len(workload) == 3

    def test_describe_counts_queries_and_updates(self):
        workload = Workload(name="w")
        workload.add("/a/b")
        workload.add("insert node <x/> into /a")
        description = workload.describe()
        assert "1 queries" in description
        assert "1 updates" in description


class TestNormalizedQuery:
    def test_all_patterns_combines_predicates_and_extraction(self):
        pattern_a = PathPattern.parse("/a/b")
        pattern_c = PathPattern.parse("/c/d")
        query = NormalizedQuery(
            query_id="q", text="/a/b", language=QueryLanguage.XPATH,
            predicates=[PathPredicate(pattern=pattern_a)],
            extraction_paths=[pattern_c])
        patterns = {p.to_text() for p in query.all_patterns()}
        assert patterns == {"/a/b", "/c/d"}
