"""Unit tests for the optimizer's cost model."""

from __future__ import annotations

import pytest

from repro.index.definition import IndexDefinition
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.model import PathPredicate, ValueType
from repro.xquery.normalizer import normalize_statement


@pytest.fixture
def model(tiny_database):
    return CostModel(tiny_database.statistics)


@pytest.fixture
def varied_model(varied_database):
    return CostModel(varied_database.statistics)


def _predicate(pattern, op=None, value=None, value_type=ValueType.VARCHAR, hint=None):
    return PathPredicate(pattern=PathPattern.parse(pattern), op=op, value=value,
                         value_type=value_type, selectivity_hint=hint)


class TestDatabaseQuantities:
    def test_basic_quantities_positive(self, model):
        assert model.data_pages >= 1.0
        assert model.document_count == 3
        assert model.average_document_nodes > 10
        assert model.average_document_pages >= 1.0


class TestScanCost:
    def test_scan_cost_scales_with_database_size(self, tiny_database, xmark_database):
        small = CostModel(tiny_database.statistics)
        large = CostModel(xmark_database.statistics)
        query = normalize_statement("/site/people/person/name")
        assert large.document_scan_cost(query)[0] > small.document_scan_cost(query)[0]

    def test_scan_cost_independent_of_predicates(self, model):
        plain = normalize_statement("/site/people/person")
        selective = normalize_statement(
            'for $p in doc("x")/site/people/person where $p/profile/age > 60 return $p')
        assert model.document_scan_cost(plain)[0] == \
            pytest.approx(model.document_scan_cost(selective)[0])


class TestIndexScanCost:
    def test_selective_index_scan_cheaper_than_scan(self, varied_model):
        model = varied_model
        index = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)
        predicate = _predicate("/site/people/person/@id", BinaryOp.EQ, "p7")
        cost, qualifying, entries = model.index_scan_cost(index, predicate)
        query = normalize_statement("/site/people/person")
        scan_cost, _ = model.document_scan_cost(query)
        assert cost < scan_cost
        assert qualifying >= 1.0
        assert entries >= 1.0

    def test_general_index_costs_more_than_exact(self, model):
        exact = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        general = IndexDefinition.create("//*", ValueType.DOUBLE)
        predicate = _predicate("/site/regions/africa/item/quantity",
                               BinaryOp.GT, 5.0, ValueType.DOUBLE)
        exact_cost, _, _ = model.index_scan_cost(exact, predicate)
        general_cost, _, _ = model.index_scan_cost(general, predicate)
        assert general_cost > exact_cost

    def test_selectivity_hint_is_honoured(self, model):
        index = IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE)
        broad = _predicate("/site/regions/*/item/quantity", BinaryOp.GT, 1.0,
                           ValueType.DOUBLE, hint=0.9)
        narrow = _predicate("/site/regions/*/item/quantity", BinaryOp.GT, 1.0,
                            ValueType.DOUBLE, hint=0.01)
        assert model.index_scan_cost(index, narrow)[0] < model.index_scan_cost(index, broad)[0]

    def test_empty_index_costs_only_probe(self, model):
        index = IndexDefinition.create("/missing/path", ValueType.VARCHAR)
        cost, qualifying, entries = model.index_scan_cost(
            index, _predicate("/missing/path", BinaryOp.EQ, "x"))
        assert qualifying == 0.0 and entries == 0.0
        assert cost == pytest.approx(model.index_probe_cost(index))


class TestFetchAndResidual:
    def test_fetch_cost_linear_in_documents(self, model):
        assert model.fetch_cost(10) == pytest.approx(10 * model.fetch_cost(1))
        assert model.fetch_cost(0) == 0.0

    def test_residual_cost_grows_with_work(self, model):
        small = model.residual_cost(2, residual_predicates=0, extraction_paths=1)
        large = model.residual_cost(2, residual_predicates=3, extraction_paths=2)
        assert large > small

    def test_documents_for_nodes_capped(self, model):
        pattern = PathPattern.parse("/site/regions/africa/item/quantity")
        docs = model.documents_for_nodes(1000.0, pattern)
        assert docs <= model.document_count


class TestMaintenance:
    def test_overlapping_update_charges_maintenance(self, model):
        index = IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE)
        touched = [PathPattern.parse("/site/regions/africa/item//*"),
                   PathPattern.parse("/site/regions/africa/item")]
        cost, affected = model.maintenance_cost(index, touched)
        assert cost > 0.0 and affected > 0.0

    def test_non_overlapping_update_is_free(self, model):
        index = IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR)
        touched = [PathPattern.parse("/site/regions/africa/item")]
        cost, affected = model.maintenance_cost(index, touched)
        assert cost == 0.0 and affected == 0.0

    def test_update_base_cost_positive(self, model):
        query = normalize_statement("delete node /site/regions/africa/item")
        assert model.update_base_cost(query) > 0.0


class TestParameters:
    def test_custom_parameters_change_costs(self, tiny_database):
        expensive_io = CostModel(tiny_database.statistics,
                                 CostParameters(sequential_page_cost=100.0))
        default = CostModel(tiny_database.statistics)
        query = normalize_statement("/site/people/person")
        assert expensive_io.document_scan_cost(query)[0] > \
            default.document_scan_cost(query)[0]
