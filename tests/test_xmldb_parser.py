"""Unit tests for the XML parser."""

from __future__ import annotations

import pytest

from repro.xmldb.errors import XmlParseError
from repro.xmldb.nodes import NodeKind
from repro.xmldb.parser import parse_document, parse_fragment


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.root_element.name == "a"
        assert doc.root_element.children == []

    def test_nested_elements_and_text(self):
        doc = parse_document("<a><b>hello</b><c>world</c></a>")
        root = doc.root_element
        assert [c.name for c in root.element_children()] == ["b", "c"]
        assert root.string_value() == "helloworld"

    def test_attributes_single_and_double_quotes(self):
        doc = parse_document("""<a x="1" y='two'/>""")
        root = doc.root_element
        assert root.get_attribute("x") == "1"
        assert root.get_attribute("y") == "two"

    def test_xml_declaration_and_whitespace(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?>\n  <a/>\n')
        assert doc.root_element.name == "a"

    def test_doctype_is_skipped(self):
        doc = parse_document('<!DOCTYPE site SYSTEM "auction.dtd"><site/>')
        assert doc.root_element.name == "site"

    def test_doctype_with_internal_subset(self):
        doc = parse_document('<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>')
        assert doc.root_element.string_value() == "x"

    def test_bytes_input_utf8(self):
        doc = parse_document("<a>é</a>".encode("utf-8"))
        assert doc.root_element.string_value() == "é"

    def test_node_ids_assigned(self):
        doc = parse_document("<a><b/><c/></a>")
        ids = [e.node_id for e in doc.descendant_elements()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_namespace_prefixes_preserved(self):
        doc = parse_document('<ns:a xmlns:ns="urn:x"><ns:b/></ns:a>')
        assert doc.root_element.name == "ns:a"
        assert doc.root_element.get_attribute("xmlns:ns") == "urn:x"


class TestEntitiesAndSpecialContent:
    def test_predefined_entities_in_text(self):
        doc = parse_document("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert doc.root_element.string_value() == "<x> & \"y\" 'z'"

    def test_numeric_character_references(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root_element.string_value() == "AB"

    def test_entities_in_attributes(self):
        doc = parse_document('<a title="Tom &amp; Jerry"/>')
        assert doc.root_element.get_attribute("title") == "Tom & Jerry"

    def test_cdata_section(self):
        doc = parse_document("<a><![CDATA[<not><parsed>&amp;]]></a>")
        assert doc.root_element.string_value() == "<not><parsed>&amp;"

    def test_comments_are_kept(self):
        doc = parse_document("<a><!-- note --><b/></a>")
        kinds = [c.kind for c in doc.root_element.children]
        assert NodeKind.COMMENT in kinds

    def test_processing_instruction(self):
        doc = parse_document('<a><?style type="css"?></a>')
        pi = [c for c in doc.root_element.children
              if c.kind is NodeKind.PROCESSING_INSTRUCTION][0]
        assert pi.name == "style"
        assert "css" in pi.value


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "<a>",                      # unterminated
        "<a></b>",                  # mismatched close
        "<a><b></a></b>",           # interleaved
        "<a attr></a>",             # attribute without value
        "<a attr=value/>",          # unquoted attribute
        "<a>&unknown;</a>",         # unknown entity
        "<a/><b/>",                 # two roots
        "text only",                # no element
        "<a><!-- unterminated </a>",
        "<1abc/>",                  # invalid name start
    ])
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XmlParseError):
            parse_document(text)

    def test_error_reports_line_and_column(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_document("<a>\n  <b></c>\n</a>")
        assert excinfo.value.line == 2
        assert excinfo.value.column > 0


class TestFragmentParsing:
    def test_fragment_with_multiple_roots(self):
        nodes = parse_fragment("<a/><b>x</b>")
        assert [n.name for n in nodes] == ["a", "b"]

    def test_fragment_ignores_pure_whitespace_text(self):
        nodes = parse_fragment("  <a/>   <b/>  ")
        assert [n.name for n in nodes] == ["a", "b"]


class TestRealisticDocuments:
    def test_tiny_site_structure(self, tiny_document):
        root = tiny_document.root_element
        assert root.name == "site"
        items = [e for e in tiny_document.descendant_elements() if e.name == "item"]
        assert len(items) == 3
        assert items[0].get_attribute("id") == "i1"

    def test_deeply_nested_document(self):
        depth = 60
        text = "".join(f"<n{i}>" for i in range(depth)) + "x" + \
               "".join(f"</n{i}>" for i in reversed(range(depth)))
        doc = parse_document(text)
        leaf_path = doc.root_element.simple_path()
        assert leaf_path == "/n0"
        assert sum(1 for _ in doc.descendant_elements()) == depth
