"""Unit tests for index definitions, matching, sizing, and physical indexes."""

from __future__ import annotations

import pytest

from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.matching import index_matches_predicate, usable_indexes
from repro.index.physical import PhysicalPathIndex, build_physical_index
from repro.index.sizing import (
    estimate_entry_count,
    estimate_index_pages,
    estimate_index_size_bytes,
    estimate_key_width,
)
from repro.storage import pages
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.model import PathPredicate, ValueType


def _predicate(pattern, op=None, value=None, value_type=ValueType.VARCHAR):
    return PathPredicate(pattern=PathPattern.parse(pattern), op=op, value=value,
                         value_type=value_type)


class TestIndexDefinition:
    def test_create_derives_name(self):
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        assert definition.name.startswith("idx_")
        assert "quantity" in definition.name
        assert definition.value_type is ValueType.DOUBLE

    def test_key_identity(self):
        first = IndexDefinition.create("/a/b", name="one")
        second = IndexDefinition.create("/a/b", name="two")
        assert first.key == second.key
        different_type = IndexDefinition.create("/a/b", ValueType.DOUBLE)
        assert different_type.key != first.key

    def test_virtual_physical_round_trip(self):
        definition = IndexDefinition.create("/a/b")
        virtual = definition.as_virtual()
        assert virtual.is_virtual and not definition.is_virtual
        assert virtual.as_physical().is_virtual is False
        assert virtual.as_virtual() is virtual

    def test_ddl_statement(self):
        definition = IndexDefinition.create("/a/b/@id", ValueType.VARCHAR,
                                            collection="orders", name="idx_x")
        ddl = definition.ddl()
        assert "CREATE INDEX idx_x ON orders" in ddl
        assert "XMLPATTERN '/a/b/@id'" in ddl
        assert "VARCHAR" in ddl
        double_ddl = IndexDefinition.create("/a/b", ValueType.DOUBLE).ddl()
        assert "AS SQL DOUBLE" in double_ddl


class TestIndexConfiguration:
    def test_deduplicates_by_key(self):
        configuration = IndexConfiguration()
        assert configuration.add(IndexDefinition.create("/a/b", name="one"))
        assert not configuration.add(IndexDefinition.create("/a/b", name="two"))
        assert len(configuration) == 1

    def test_remove_by_key(self):
        configuration = IndexConfiguration([IndexDefinition.create("/a/b")])
        assert configuration.remove(IndexDefinition.create("/a/b", name="other"))
        assert len(configuration) == 0
        assert not configuration.remove(IndexDefinition.create("/a/b"))

    def test_contains_and_contains_pattern(self):
        definition = IndexDefinition.create("/a/b", ValueType.DOUBLE)
        configuration = IndexConfiguration([definition])
        assert definition in configuration
        assert configuration.contains_pattern(PathPattern.parse("/a/b"))
        assert configuration.contains_pattern(PathPattern.parse("/a/b"), ValueType.DOUBLE)
        assert not configuration.contains_pattern(PathPattern.parse("/a/b"),
                                                  ValueType.VARCHAR)

    def test_union_and_difference(self):
        first = IndexConfiguration([IndexDefinition.create("/a")], name="a")
        second = IndexConfiguration([IndexDefinition.create("/b")], name="b")
        union = first.union(second)
        assert len(union) == 2
        difference = union.difference(second)
        assert [d.pattern.to_text() for d in difference] == ["/a"]

    def test_copy_is_independent(self):
        original = IndexConfiguration([IndexDefinition.create("/a")])
        copy = original.copy()
        copy.add(IndexDefinition.create("/b"))
        assert len(original) == 1

    def test_describe(self):
        configuration = IndexConfiguration([IndexDefinition.create("/a/b")], name="cfg")
        assert "/a/b" in configuration.describe()
        assert "(empty)" in IndexConfiguration(name="empty").describe()


class TestIndexMatching:
    def test_exact_pattern_match(self):
        index = IndexDefinition.create("/a/b/c", ValueType.VARCHAR)
        predicate = _predicate("/a/b/c", BinaryOp.EQ, "x")
        match = index_matches_predicate(index, predicate)
        assert match is not None and match.exact

    def test_containing_pattern_match(self):
        index = IndexDefinition.create("/a/*/c", ValueType.VARCHAR)
        predicate = _predicate("/a/b/c", BinaryOp.EQ, "x")
        match = index_matches_predicate(index, predicate)
        assert match is not None and not match.exact

    def test_non_containing_pattern_rejected(self):
        index = IndexDefinition.create("/a/b/c", ValueType.VARCHAR)
        predicate = _predicate("/a/*/c", BinaryOp.EQ, "x")
        assert index_matches_predicate(index, predicate) is None

    def test_type_compatibility(self):
        varchar_index = IndexDefinition.create("/a/b", ValueType.VARCHAR)
        double_index = IndexDefinition.create("/a/b", ValueType.DOUBLE)
        numeric = _predicate("/a/b", BinaryOp.GT, 5.0, ValueType.DOUBLE)
        textual = _predicate("/a/b", BinaryOp.EQ, "x", ValueType.VARCHAR)
        assert index_matches_predicate(double_index, numeric) is not None
        assert index_matches_predicate(varchar_index, numeric) is None
        assert index_matches_predicate(varchar_index, textual) is not None
        assert index_matches_predicate(double_index, textual) is None

    def test_existence_predicate_matches_either_type(self):
        existence = _predicate("/a/b")
        for value_type in ValueType:
            index = IndexDefinition.create("/a/b", value_type)
            assert index_matches_predicate(index, existence) is not None

    def test_universal_index_matches_everything_elementwise(self):
        universal = IndexDefinition.create("//*", ValueType.VARCHAR)
        assert index_matches_predicate(universal, _predicate("/deep/path/here")) is not None
        assert index_matches_predicate(universal, _predicate("/a/@id")) is None

    def test_usable_indexes_orders_exact_first(self):
        exact = IndexDefinition.create("/a/b/c", ValueType.VARCHAR)
        general = IndexDefinition.create("/a//c", ValueType.VARCHAR)
        unrelated = IndexDefinition.create("/x/y", ValueType.VARCHAR)
        matches = usable_indexes([general, unrelated, exact],
                                 _predicate("/a/b/c", BinaryOp.EQ, "v"))
        assert [m.index.pattern.to_text() for m in matches] == ["/a/b/c", "/a//c"]


class TestSizing:
    def test_entry_count_counts_matching_nodes(self, tiny_database):
        stats = tiny_database.statistics
        index = IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE)
        # 3 items per document x 3 documents.
        assert estimate_entry_count(index, stats) == 9

    def test_double_index_skips_non_numeric(self, tiny_database):
        stats = tiny_database.statistics
        name_double = IndexDefinition.create("/site/people/person/name", ValueType.DOUBLE)
        assert estimate_entry_count(name_double, stats) == 0
        name_varchar = IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR)
        assert estimate_entry_count(name_varchar, stats) == 6

    def test_key_width_by_type(self, tiny_database):
        stats = tiny_database.statistics
        double_index = IndexDefinition.create("/site/regions/*/item/price", ValueType.DOUBLE)
        assert estimate_key_width(double_index, stats) == pages.DOUBLE_KEY_BYTES
        varchar_index = IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR)
        assert 1.0 <= estimate_key_width(varchar_index, stats) <= 64.0

    def test_more_general_pattern_is_larger(self, tiny_database):
        stats = tiny_database.statistics
        specific = IndexDefinition.create("/site/regions/africa/item/quantity",
                                          ValueType.DOUBLE)
        general = IndexDefinition.create("/site/regions/*/item/quantity",
                                         ValueType.DOUBLE)
        universal = IndexDefinition.create("//*", ValueType.VARCHAR)
        assert estimate_index_size_bytes(specific, stats) < \
            estimate_index_size_bytes(general, stats)
        assert estimate_index_size_bytes(general, stats) < \
            estimate_index_size_bytes(universal, stats)

    def test_empty_index_costs_one_page(self, tiny_database):
        stats = tiny_database.statistics
        empty = IndexDefinition.create("/nothing/matches")
        assert estimate_index_size_bytes(empty, stats) == pages.PAGE_SIZE_BYTES
        assert estimate_index_pages(empty, stats) == 1


class TestPhysicalIndex:
    def test_build_and_point_lookup(self, tiny_database):
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, tiny_database)
        assert index.entry_count == 9
        hits = index.lookup_equal(7.0)
        assert len(hits) == 3  # one per document copy
        assert all(entry.key == pytest.approx(7.0) for entry in hits)

    def test_range_lookups(self, tiny_database):
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, tiny_database)
        assert len(index.lookup_range(BinaryOp.GT, 5.0)) == 6   # 7 and 9 per doc
        assert len(index.lookup_range(BinaryOp.LE, 2.0)) == 3
        assert len(index.lookup_range(BinaryOp.GE, 2.0)) == 9
        assert len(index.lookup_range(BinaryOp.NE, 7.0)) == 6

    def test_varchar_index_lookup(self, tiny_database):
        definition = IndexDefinition.create("/site/regions/*/item/payment",
                                            ValueType.VARCHAR)
        index = build_physical_index(definition, tiny_database)
        assert len(index.lookup_equal("Creditcard")) == 6

    def test_attribute_index(self, tiny_database):
        definition = IndexDefinition.create("/site/people/person/@id",
                                            ValueType.VARCHAR)
        index = build_physical_index(definition, tiny_database)
        assert index.entry_count == 6
        assert len(index.lookup_equal("p1")) == 3

    def test_double_index_skips_uncastable_values(self, tiny_database):
        definition = IndexDefinition.create("/site/people/person/name",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, tiny_database)
        assert index.entry_count == 0

    def test_scan_returns_sorted_entries(self, tiny_database):
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, tiny_database)
        keys = [entry.key for entry in index.scan()]
        assert keys == sorted(keys)

    def test_lookup_before_finalize_raises(self):
        index = PhysicalPathIndex(IndexDefinition.create("/a/b"))
        index.insert("x", "c", 0, 1)
        with pytest.raises(RuntimeError):
            index.lookup_equal("x")

    def test_insert_after_finalize_raises(self):
        index = PhysicalPathIndex(IndexDefinition.create("/a/b"))
        index.finalize()
        with pytest.raises(RuntimeError):
            index.insert("x", "c", 0, 1)

    def test_virtual_definition_rejected(self):
        with pytest.raises(ValueError):
            PhysicalPathIndex(IndexDefinition.create("/a/b", is_virtual=True))

    def test_size_accounting(self, tiny_database):
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, tiny_database)
        assert index.size_bytes > 0
        assert index.size_pages >= 1
