"""Shared pytest fixtures.

The module also adds ``src/`` to ``sys.path`` so the tests run even when
the package has not been pip-installed (useful on machines where
editable installs are unavailable).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.storage import XmlDatabase


from repro.workloads import (
    TpoxConfig,
    XMarkConfig,
    generate_tpox_database,
    generate_xmark_database,
    tpox_workload,
    xmark_query_workload,
)
from repro.xquery.model import Workload

from _support import TINY_SITE_XML, build_varied_database

__all__ = ["TINY_SITE_XML", "build_varied_database"]


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: env-capped benchmark smoke checks (perf regressions in "
        "the structural path-summary subsystem); deselect with -m 'not bench_smoke'")


@pytest.fixture
def tiny_document():
    """A freshly parsed tiny <site> document."""
    from repro.xmldb import parse_document

    return parse_document(TINY_SITE_XML)


@pytest.fixture
def tiny_database(tiny_document):
    """A database holding three copies of the tiny document (distinct ids)."""
    from repro.xmldb import parse_document

    database = XmlDatabase("tiny")
    for _ in range(3):
        database.add_document("site", parse_document(TINY_SITE_XML))
    return database




@pytest.fixture(scope="module")
def varied_database():
    """Module-scoped varied database (see :func:`build_varied_database`)."""
    return build_varied_database()


@pytest.fixture(scope="session")
def xmark_database():
    """A session-scoped XMark-style database (small scale, fixed seed)."""
    return generate_xmark_database(XMarkConfig(scale=0.05, seed=42))


@pytest.fixture(scope="session")
def xmark_workload():
    return xmark_query_workload()


@pytest.fixture(scope="session")
def tpox_database():
    # Scale 0.25 (was 0.05): with the collection-scoped cost model a
    # query is no longer charged for scanning the other two TPoX
    # collections, so the per-collection data must be large enough that
    # selective indexes still beat the (now much cheaper) routed scans.
    return generate_tpox_database(TpoxConfig(scale=0.25, seed=7))


@pytest.fixture(scope="session")
def tpox_mixed_workload():
    return tpox_workload(update_ratio=0.3)


@pytest.fixture
def tiny_workload():
    """A small mixed workload against the tiny <site> schema."""
    workload = Workload(name="tiny")
    workload.add('for $i in doc("site.xml")/site/regions/africa/item '
                 'where $i/quantity > 5 return $i/name', frequency=3.0)
    workload.add('for $i in doc("site.xml")/site/regions/namerica/item '
                 'where $i/price > 400 return $i/name', frequency=2.0)
    workload.add('for $p in doc("site.xml")/site/people/person '
                 'where $p/profile/age > 60 return $p/name', frequency=1.0)
    workload.add('SELECT 1 FROM site WHERE XMLEXISTS('
                 '\'$d/site/people/person[profile/@income > 90000]\' '
                 'PASSING doc AS "d")', frequency=1.0)
    return workload
