"""Shared pytest fixtures.

The module also adds ``src/`` to ``sys.path`` so the tests run even when
the package has not been pip-installed (useful on machines where
editable installs are unavailable).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.storage import XmlDatabase
from repro.workloads import (
    TpoxConfig,
    XMarkConfig,
    generate_tpox_database,
    generate_xmark_database,
    tpox_workload,
    xmark_query_workload,
)
from repro.xquery.model import Workload

#: A small hand-written document used by many unit tests: predictable
#: values, both elements and attributes, two regions.
TINY_SITE_XML = """
<site>
  <regions>
    <africa>
      <item id="i1"><quantity>7</quantity><price>120.5</price>
        <name>carved mask</name><payment>Creditcard</payment></item>
      <item id="i2"><quantity>2</quantity><price>30.0</price>
        <name>drum</name><payment>Cash</payment></item>
    </africa>
    <namerica>
      <item id="i3"><quantity>9</quantity><price>450.0</price>
        <name>vintage lamp</name><payment>Creditcard</payment></item>
    </namerica>
  </regions>
  <people>
    <person id="p1"><name>Alice</name>
      <profile income="95000.0"><age>34</age></profile></person>
    <person id="p2"><name>Bob</name>
      <profile income="42000.0"><age>67</age></profile></person>
  </people>
</site>
"""


@pytest.fixture
def tiny_document():
    """A freshly parsed tiny <site> document."""
    from repro.xmldb import parse_document

    return parse_document(TINY_SITE_XML)


@pytest.fixture
def tiny_database(tiny_document):
    """A database holding three copies of the tiny document (distinct ids)."""
    from repro.xmldb import parse_document

    database = XmlDatabase("tiny")
    for _ in range(3):
        database.add_document("site", parse_document(TINY_SITE_XML))
    return database


def build_varied_database(documents: int = 120, name: str = "varied") -> XmlDatabase:
    """A mid-sized database with the tiny <site> schema but varied values.

    Unlike ``tiny_database`` (three identical documents, where scanning is
    always the best plan), this database has enough documents and value
    diversity that selective predicates genuinely benefit from indexes --
    which is what the optimizer/advisor behaviour tests need.
    """
    from repro.xmldb.nodes import build_document

    regions = ["africa", "namerica", "asia", "europe"]
    payments = ["Creditcard", "Cash"]
    locations = ["United States", "Germany", "Egypt", "Japan"]
    database = XmlDatabase(name)
    collection = database.create_collection("site")
    for d in range(documents):
        doc, site = build_document("site")
        region = site.add_element("regions").add_element(regions[d % len(regions)])
        for k in range(5):
            item = region.add_element("item", attributes={"id": f"item{d}_{k}"})
            item.add_element("quantity", str(((d * 13 + k * 7) % 100) + 1))
            item.add_element("price", f"{((d * 17 + k * 29) % 500) + 1}.0")
            item.add_element("name", f"thing {d} {k}")
            item.add_element("payment", payments[(d + k) % 2])
            item.add_element("location", locations[(d + k) % len(locations)])
        people = site.add_element("people")
        for k in range(2):
            person = people.add_element("person", attributes={"id": f"p{2 * d + k}"})
            person.add_element("name", f"Person {d} {k}")
            profile = person.add_element("profile", attributes={
                "income": f"{10000 + ((d * 37 + k * 11) % 200) * 1000}.0"})
            profile.add_element("age", str(18 + ((d + k * 31) % 72)))
        doc.assign_node_ids()
        collection.add_document(doc)
    return database


@pytest.fixture(scope="module")
def varied_database():
    """Module-scoped varied database (see :func:`build_varied_database`)."""
    return build_varied_database()


@pytest.fixture(scope="session")
def xmark_database():
    """A session-scoped XMark-style database (small scale, fixed seed)."""
    return generate_xmark_database(XMarkConfig(scale=0.05, seed=42))


@pytest.fixture(scope="session")
def xmark_workload():
    return xmark_query_workload()


@pytest.fixture(scope="session")
def tpox_database():
    return generate_tpox_database(TpoxConfig(scale=0.05, seed=7))


@pytest.fixture(scope="session")
def tpox_mixed_workload():
    return tpox_workload(update_ratio=0.3)


@pytest.fixture
def tiny_workload():
    """A small mixed workload against the tiny <site> schema."""
    workload = Workload(name="tiny")
    workload.add('for $i in doc("site.xml")/site/regions/africa/item '
                 'where $i/quantity > 5 return $i/name', frequency=3.0)
    workload.add('for $i in doc("site.xml")/site/regions/namerica/item '
                 'where $i/price > 400 return $i/name', frequency=2.0)
    workload.add('for $p in doc("site.xml")/site/people/person '
                 'where $p/profile/age > 60 return $p/name', frequency=1.0)
    workload.add('SELECT 1 FROM site WHERE XMLEXISTS('
                 '\'$d/site/people/person[profile/@income > 90000]\' '
                 'PASSING doc AS "d")', frequency=1.0)
    return workload
