"""Tests for the XMark/TPoX-style generators and the synthetic workload."""

from __future__ import annotations

import pytest

from repro.storage.document_store import XmlDatabase
from repro.workloads.loader import build_scenario, list_scenarios
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.tpox import (
    TpoxConfig,
    generate_tpox_database,
    tpox_query_workload,
    tpox_update_statements,
    tpox_workload,
)
from repro.workloads.xmark import (
    REGIONS,
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
    xmark_unseen_queries,
)
from repro.xquery.normalizer import normalize_statement, normalize_workload


class TestXMarkGenerator:
    def test_deterministic_for_fixed_seed(self):
        config = XMarkConfig(scale=0.02, seed=11)
        first = generate_xmark_database(config)
        second = generate_xmark_database(config)
        assert first.statistics.total_node_count == second.statistics.total_node_count
        assert first.statistics.distinct_paths == second.statistics.distinct_paths

    def test_scale_controls_size(self):
        small = generate_xmark_database(XMarkConfig(scale=0.02, seed=1))
        large = generate_xmark_database(XMarkConfig(scale=0.1, seed=1))
        assert large.statistics.document_count > small.statistics.document_count
        assert large.statistics.total_node_count > small.statistics.total_node_count

    def test_schema_paths_present(self, xmark_database):
        paths = set(xmark_database.statistics.path_stats)
        expected = [
            "/site/regions/africa/item/quantity",
            "/site/regions/namerica/item/price",
            "/site/regions/europe/item/@id",
            "/site/people/person/profile/@income",
            "/site/people/person/address/city",
            "/site/open_auctions/open_auction/current",
            "/site/open_auctions/open_auction/bidder/increase",
            "/site/closed_auctions/closed_auction/price",
            "/site/categories/category/@id",
        ]
        for path in expected:
            assert path in paths, f"missing {path}"

    def test_region_skew(self, xmark_database):
        stats = xmark_database.statistics
        namerica = stats.stats_for_path("/site/regions/namerica/item").node_count
        africa = stats.stats_for_path("/site/regions/africa/item").node_count
        assert namerica > africa

    def test_numeric_leaves_are_numeric(self, xmark_database):
        stats = xmark_database.statistics
        for path in ["/site/regions/namerica/item/quantity",
                     "/site/people/person/profile/@income",
                     "/site/open_auctions/open_auction/current"]:
            assert stats.stats_for_path(path).mostly_numeric

    def test_explicit_document_count(self):
        database = generate_xmark_database(XMarkConfig(documents=3, seed=5))
        assert database.statistics.document_count == 3

    def test_region_weights_cover_six_regions(self):
        assert len(REGIONS) == 6


class TestXMarkWorkloads:
    def test_training_workload_parses_completely(self, xmark_database, xmark_workload):
        queries = normalize_workload(xmark_workload)
        assert len(queries) == len(xmark_workload)
        # Every query must produce at least one indexable predicate or an
        # extraction path (i.e. the front end understood it).
        for query in queries:
            assert query.predicates or query.extraction_paths

    def test_training_workload_mixes_languages(self, xmark_workload):
        texts = [s.text for s in xmark_workload]
        assert any("XMLEXISTS" in t for t in texts)
        assert any(t.startswith("for ") for t in texts)

    def test_predicate_paths_exist_in_generated_data(self, xmark_database,
                                                     xmark_workload):
        stats = xmark_database.statistics
        queries = normalize_workload(xmark_workload)
        missing = []
        for query in queries:
            for predicate in query.predicates:
                if stats.cardinality(predicate.pattern) == 0:
                    missing.append(predicate.pattern.to_text())
        assert missing == [], f"workload predicates over non-existent paths: {missing}"

    def test_unseen_queries_differ_from_training(self, xmark_workload):
        unseen = xmark_unseen_queries()
        training_texts = {s.text for s in xmark_workload}
        assert all(s.text not in training_texts for s in unseen)

    def test_workload_without_synthetic_queries_is_smaller(self):
        full = xmark_query_workload()
        standard_only = xmark_query_workload(include_synthetic=False)
        assert len(standard_only) < len(full)


class TestTpoxGenerator:
    def test_three_collections(self, tpox_database):
        assert set(tpox_database.collection_names) == {"order", "security", "custacc"}

    def test_schema_paths_present(self, tpox_database):
        paths = set(tpox_database.statistics.path_stats)
        for path in ["/FIXML/Order/@ID", "/FIXML/Order/Instrmt/@Sym",
                     "/FIXML/Order/OrdQty/@Qty", "/Security/Symbol",
                     "/Security/Price/LastTrade", "/Customer/@id",
                     "/Customer/Accounts/Account/@balance"]:
            assert path in paths, f"missing {path}"

    def test_deterministic_for_fixed_seed(self):
        config = TpoxConfig(scale=0.02, seed=3)
        first = generate_tpox_database(config)
        second = generate_tpox_database(config)
        assert first.statistics.total_node_count == second.statistics.total_node_count

    def test_many_small_documents(self, tpox_database):
        stats = tpox_database.statistics
        assert stats.document_count >= 40
        assert stats.total_node_count / stats.document_count < 60


class TestTpoxWorkloads:
    def test_query_workload_parses(self, tpox_database, tpox_mixed_workload):
        queries = normalize_workload(tpox_mixed_workload)
        assert len(queries) == len(tpox_mixed_workload)

    def test_update_ratio_controls_frequency_share(self):
        mixed = tpox_workload(update_ratio=0.5)
        queries = normalize_workload(mixed)
        update_frequency = sum(q.frequency for q in queries if q.is_update)
        total_frequency = sum(q.frequency for q in queries)
        assert update_frequency / total_frequency == pytest.approx(0.5, abs=0.02)

    def test_zero_update_ratio_is_read_only(self):
        queries = normalize_workload(tpox_workload(update_ratio=0.0))
        assert not any(q.is_update for q in queries)

    def test_invalid_update_ratio_rejected(self):
        with pytest.raises(ValueError):
            tpox_workload(update_ratio=1.0)
        with pytest.raises(ValueError):
            tpox_workload(update_ratio=-0.1)

    def test_update_statements_normalize_as_updates(self):
        for statement in tpox_update_statements():
            query = normalize_statement(statement.text)
            assert query.is_update
            assert query.touched_patterns

    def test_query_predicates_hit_generated_data(self, tpox_database):
        stats = tpox_database.statistics
        queries = normalize_workload(tpox_query_workload())
        for query in queries:
            for predicate in query.predicates:
                assert stats.cardinality(predicate.pattern) > 0, \
                    predicate.pattern.to_text()


class TestSyntheticWorkload:
    def test_generated_queries_parse_and_hit_data(self, xmark_database):
        generator = SyntheticWorkloadGenerator(xmark_database, seed=3)
        workload = generator.generate(query_count=10, predicates_per_query=2)
        assert len(workload) == 10
        queries = normalize_workload(workload)
        stats = xmark_database.statistics
        hit = 0
        for query in queries:
            for predicate in query.predicates:
                if stats.cardinality(predicate.pattern) > 0:
                    hit += 1
                    break
        assert hit >= 8  # the generator samples real paths, so nearly all hit

    def test_deterministic_for_seed(self, xmark_database):
        first = SyntheticWorkloadGenerator(xmark_database, seed=5).generate(5)
        second = SyntheticWorkloadGenerator(xmark_database, seed=5).generate(5)
        assert [s.text for s in first] == [s.text for s in second]

    def test_requires_value_paths(self):
        empty = XmlDatabase("empty")
        empty.add_document("c", "<a><b/></a>")
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(empty).generate(1)

    def test_indexable_path_count_positive(self, xmark_database):
        generator = SyntheticWorkloadGenerator(xmark_database)
        assert generator.indexable_path_count > 20


class TestScenarios:
    def test_list_scenarios_nonempty(self):
        names = list_scenarios()
        assert "xmark-small" in names and "tpox-small" in names

    def test_build_named_scenario(self):
        scenario = build_scenario("xmark-small")
        assert scenario.database.statistics.document_count > 0
        assert len(scenario.workload) > 0
        assert scenario.description

    def test_unknown_scenario_raises_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            build_scenario("nope")
        assert "xmark-small" in str(excinfo.value)
