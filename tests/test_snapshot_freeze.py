"""Runtime enforcement of the snapshot contracts, plus regression tests
for the violations the contract analyzer surfaced.

``REPRO_FREEZE_SNAPSHOTS`` is read when ``repro.contracts`` is imported,
so enforcement is exercised in a subprocess with the variable set; the
regression tests (stale baseline reads, drift-score determinism,
immutable capture entries) run in-process.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from _support import build_varied_database
from repro.advisor.benefit import ConfigurationEvaluator
from repro.tuning.drift import workload_distance
from repro.tuning.monitor import WorkloadMonitor, WorkloadSnapshot
from repro.xquery.model import Workload
from repro.xquery.normalizer import normalize_statement, normalize_workload

SRC = str(Path(__file__).parent.parent / "src")


def _run_frozen(snippet: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_FREEZE_SNAPSHOTS"] = "1"
    return subprocess.run([sys.executable, "-c", textwrap.dedent(snippet)],
                          capture_output=True, text=True, env=env)


class TestFreezeEnforcement:
    def test_direct_write_raises_outside_builder(self):
        completed = _run_frozen("""
            from repro.contracts import SnapshotMutationError
            from repro.storage.statistics import DatabaseStatistics
            stats = DatabaseStatistics()
            try:
                stats.total_documents = 5
            except SnapshotMutationError:
                print("TRAPPED")
        """)
        assert completed.returncode == 0, completed.stderr
        assert "TRAPPED" in completed.stdout

    def test_builders_and_memos_stay_usable(self):
        completed = _run_frozen("""
            from repro.storage.statistics import DatabaseStatistics, \\
                PathStatistics
            first = DatabaseStatistics()
            other = DatabaseStatistics()
            other.path_stats["/a"] = PathStatistics(path="/a")
            first.merge(other)            # builder: writes allowed inside
            copied = first.copy()         # builder building a fresh object
            first._match_cache[("k", "v")] = None   # memo attr: exempt
            print("OK", len(first.path_stats), len(copied.path_stats))
        """)
        assert completed.returncode == 0, completed.stderr
        assert "OK 1 1" in completed.stdout

    def test_error_is_an_attribute_error(self):
        # Callers catching AttributeError for duck-typing keep working.
        completed = _run_frozen("""
            from repro.contracts import SnapshotMutationError
            assert issubclass(SnapshotMutationError, AttributeError)
            print("SUBCLASS-OK")
        """)
        assert completed.returncode == 0, completed.stderr
        assert "SUBCLASS-OK" in completed.stdout

    def test_end_to_end_pipeline_under_freeze(self):
        # The advisor pipeline builds plenty of snapshots (plans,
        # statistics, evaluations); it must run to completion with the
        # guard armed.
        completed = _run_frozen("""
            from repro.advisor.advisor import XmlIndexAdvisor
            from repro.xquery.model import Workload
            from repro.xmldb.nodes import build_document
            from repro.storage.document_store import XmlDatabase

            database = XmlDatabase("frozen")
            collection = database.create_collection("site")
            for d in range(8):
                doc, site = build_document("site")
                item = site.add_element("regions").add_element("africa") \\
                    .add_element("item")
                item.add_element("quantity", str(10 * d + 1))
                collection.add_document(doc)
            workload = Workload(name="w")
            workload.add('for $i in doc("x")/site/regions/africa/item '
                         'where $i/quantity > 50 return $i', frequency=2.0)
            recommendation = XmlIndexAdvisor(database).recommend(workload)
            print("RECOMMENDED", len(recommendation.configuration))
        """)
        assert completed.returncode == 0, completed.stderr
        assert "RECOMMENDED" in completed.stdout


# ======================================================================
# Regressions for analyzer-surfaced violations
# ======================================================================
def _tiny_workload() -> Workload:
    workload = Workload(name="stale")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=2.0)
    return workload


class TestBaselineRevalidation:
    def test_baseline_costs_refresh_after_data_change(self):
        # The analyzer flagged baseline_costs/baseline_workload_cost as
        # unrevalidated reads of ``_baseline``: after a data change they
        # served costs for the old database until some *other* entry
        # point happened to refresh.  They must now self-revalidate.
        database = build_varied_database(documents=24, name="stale-base")
        queries = normalize_workload(_tiny_workload())
        evaluator = ConfigurationEvaluator(database, queries)
        before = evaluator.baseline_workload_cost
        # Quadruple the collection so every baseline cost moves.
        collection = database.collection("site")
        for document in list(collection)[:24] * 3:
            collection.add_document(document.copy()
                                    if hasattr(document, "copy")
                                    else document)
        fresh = ConfigurationEvaluator(database, queries)
        assert evaluator.baseline_workload_cost == \
            pytest.approx(fresh.baseline_workload_cost)
        assert evaluator.baseline_workload_cost != pytest.approx(before)
        assert evaluator.baseline_costs == fresh.baseline_costs


class TestDriftDeterminism:
    def test_workload_distance_sums_in_sorted_key_order(self):
        # The analyzer flagged the unsorted ``set | set`` sum: float
        # addition is order-sensitive, so the drift score could differ
        # across hash-randomized runs.  Distance must be identical
        # however the snapshots' entries are ordered.
        monitor = WorkloadMonitor()
        texts = [f'for $i in doc("x")/site/regions/africa/item '
                 f'where $i/quantity > {n} return $i/name'
                 for n in (1, 2, 3, 4, 5, 6, 7)]
        for text in texts:
            monitor.record(normalize_statement(text))
        current = monitor.snapshot()
        reversed_baseline = WorkloadSnapshot(
            step=current.step, entries=tuple(reversed(current.entries)))
        forward = workload_distance(current, current)
        backward = workload_distance(current, reversed_baseline)
        assert forward == 0.0
        assert backward == 0.0  # same distribution, any entry order


class TestImmutableCapture:
    def test_snapshot_entries_cannot_be_retroactively_changed(self):
        # CapturedQuery is frozen: an entry handed out in a snapshot is
        # detached from future traffic by construction.
        monitor = WorkloadMonitor()
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item return $i')
        monitor.record(query)
        snapshot = monitor.snapshot()
        frozen_weight = snapshot.entries[0].weight
        monitor.record(query)
        monitor.record(query)
        assert snapshot.entries[0].weight == frozen_weight
        with pytest.raises(AttributeError):
            snapshot.entries[0].weight = 99.0

    def test_record_returns_accumulated_entry(self):
        monitor = WorkloadMonitor()
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item return $i')
        first = monitor.record(query)
        second = monitor.record(query)
        assert first.arrivals == 1 and second.arrivals == 2
        assert second.weight == pytest.approx(2.0)
        assert len(monitor) == 1
