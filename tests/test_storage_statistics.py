"""Unit tests for statistics collection and selectivity estimation."""

from __future__ import annotations

import pytest

from repro.storage.statistics import DatabaseStatistics, PathStatistics, collect_statistics
from repro.xmldb.parser import parse_document
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern


@pytest.fixture
def stats(tiny_document):
    return collect_statistics([tiny_document])


class TestCollection:
    def test_document_and_node_counts(self, stats):
        assert stats.document_count == 1
        assert stats.total_element_count > 0
        assert stats.total_node_count > stats.total_element_count

    def test_per_path_cardinalities(self, stats):
        item = stats.stats_for_path("/site/regions/africa/item")
        assert item is not None
        assert item.node_count == 2
        quantity = stats.stats_for_path("/site/regions/africa/item/quantity")
        assert quantity.node_count == 2

    def test_attribute_paths_collected(self, stats):
        income = stats.stats_for_path("/site/people/person/profile/@income")
        assert income is not None
        assert income.node_count == 2
        assert income.mostly_numeric

    def test_numeric_ranges(self, stats):
        quantity = stats.stats_for_path("/site/regions/africa/item/quantity")
        assert quantity.min_value == pytest.approx(2.0)
        assert quantity.max_value == pytest.approx(7.0)

    def test_distinct_values(self, stats):
        payment = stats.stats_for_path("/site/regions/africa/item/payment")
        assert payment.distinct_values == 2

    def test_structural_elements_have_default_width(self, stats):
        regions = stats.stats_for_path("/site/regions")
        assert regions.average_value_bytes > 0

    def test_document_count_per_path(self):
        doc_a = parse_document("<a><b>1</b></a>")
        doc_b = parse_document("<a><c>2</c></a>")
        stats = collect_statistics([doc_a, doc_b])
        assert stats.stats_for_path("/a").document_count == 2
        assert stats.stats_for_path("/a/b").document_count == 1

    def test_only_direct_text_counts_as_value(self):
        doc = parse_document("<a><b><c>inner</c></b></a>")
        stats = collect_statistics([doc])
        b_stat = stats.stats_for_path("/a/b")
        assert b_stat.total_value_bytes == 0
        c_stat = stats.stats_for_path("/a/b/c")
        assert c_stat.total_value_bytes == len("inner")


class TestPatternAggregation:
    def test_cardinality_over_wildcard_pattern(self, stats):
        pattern = PathPattern.parse("/site/regions/*/item")
        assert stats.cardinality(pattern) == 3

    def test_cardinality_universal(self, stats):
        assert stats.cardinality(PathPattern.parse("//*")) == stats.total_element_count

    def test_paths_matching_memoized(self, stats):
        pattern = PathPattern.parse("/site/regions/*/item")
        first = stats.paths_matching(pattern)
        second = stats.paths_matching(pattern)
        assert first is second

    def test_documents_containing(self, stats):
        assert stats.documents_containing(PathPattern.parse("/site/people/person")) == 1
        assert stats.documents_containing(PathPattern.parse("/nothing/here")) == 0

    def test_numeric_range_over_pattern(self, stats):
        bounds = stats.numeric_range(PathPattern.parse("/site/regions/*/item/quantity"))
        assert bounds == (pytest.approx(2.0), pytest.approx(9.0))

    def test_average_key_width(self, stats):
        width = stats.average_key_width(PathPattern.parse("/site/people/person/name"))
        assert 3.0 <= width <= 10.0


class TestSelectivity:
    def test_existence_has_selectivity_one(self, stats):
        pattern = PathPattern.parse("/site/regions/africa/item/quantity")
        assert stats.predicate_selectivity(pattern, None, None) == pytest.approx(1.0)

    def test_equality_uses_distinct_values(self, stats):
        pattern = PathPattern.parse("/site/regions/*/item/payment")
        selectivity = stats.predicate_selectivity(pattern, BinaryOp.EQ, "Creditcard")
        assert 0.0 < selectivity <= 0.5

    def test_range_interpolation(self, stats):
        pattern = PathPattern.parse("/site/regions/*/item/quantity")
        high = stats.predicate_selectivity(pattern, BinaryOp.GT, 8.0)
        low = stats.predicate_selectivity(pattern, BinaryOp.GT, 3.0)
        assert high < low
        assert 0.0 < high < 1.0

    def test_range_on_unknown_values_uses_default(self, stats):
        pattern = PathPattern.parse("/site/people/person/name")
        selectivity = stats.predicate_selectivity(pattern, BinaryOp.GT, "M")
        assert selectivity == pytest.approx(1.0 / 3.0)

    def test_zero_cardinality_pattern(self, stats):
        pattern = PathPattern.parse("/does/not/exist")
        assert stats.predicate_selectivity(pattern, BinaryOp.EQ, "x") == 0.0

    def test_not_equal_complements_equality(self, stats):
        pattern = PathPattern.parse("/site/regions/*/item/payment")
        eq = stats.predicate_selectivity(pattern, BinaryOp.EQ, "Creditcard")
        ne = stats.predicate_selectivity(pattern, BinaryOp.NE, "Creditcard")
        assert eq + ne == pytest.approx(1.0)


class TestMerging:
    def test_merge_adds_counts(self, tiny_document):
        first = collect_statistics([tiny_document])
        second = collect_statistics([parse_document("<site><regions/></site>")])
        before = first.total_node_count
        first.merge(second)
        assert first.document_count == 2
        assert first.total_node_count > before

    def test_merge_combines_ranges(self):
        low = collect_statistics([parse_document("<a><v>1</v></a>")])
        high = collect_statistics([parse_document("<a><v>100</v></a>")])
        low.merge(high)
        stat = low.stats_for_path("/a/v")
        assert stat.min_value == pytest.approx(1.0)
        assert stat.max_value == pytest.approx(100.0)

    def test_copy_is_independent(self, stats):
        # Grow the copy through the sanctioned builder (merge) -- direct
        # attribute writes are a contract violation under
        # REPRO_FREEZE_SNAPSHOTS -- and check the original is untouched.
        copy = stats.copy()
        copy.merge(collect_statistics([parse_document("<a><v>7</v></a>")]))
        assert copy.document_count == 2
        assert stats.document_count == 1
        assert stats.stats_for_path("/a/v") is None

    def test_total_data_bytes_positive(self, stats):
        assert stats.total_data_bytes > 0
