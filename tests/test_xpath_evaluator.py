"""Unit tests for the XPath evaluator."""

from __future__ import annotations

import pytest

from repro.xmldb.parser import parse_document
from repro.xpath.errors import XPathTypeError
from repro.xpath.evaluator import XPathEvaluator, evaluate_path


@pytest.fixture
def evaluator(tiny_document):
    return XPathEvaluator(tiny_document)


class TestPathSelection:
    def test_absolute_child_path(self, evaluator):
        nodes = evaluator.select_nodes("/site/regions/africa/item")
        assert len(nodes) == 2
        assert {n.get_attribute("id") for n in nodes} == {"i1", "i2"}

    def test_descendant_path(self, evaluator):
        nodes = evaluator.select_nodes("//item")
        assert len(nodes) == 3

    def test_wildcard_step(self, evaluator):
        nodes = evaluator.select_nodes("/site/regions/*/item")
        assert len(nodes) == 3

    def test_attribute_selection(self, evaluator):
        nodes = evaluator.select_nodes("/site/people/person/@id")
        assert sorted(n.value for n in nodes) == ["p1", "p2"]

    def test_descendant_attribute(self, evaluator):
        nodes = evaluator.select_nodes("//@id")
        assert len(nodes) == 5  # 3 items + 2 persons

    def test_missing_path_returns_empty(self, evaluator):
        assert evaluator.select_nodes("/site/nonexistent/thing") == []

    def test_text_step(self, evaluator):
        nodes = evaluator.select_nodes("/site/people/person/name/text()")
        assert sorted(n.value for n in nodes) == ["Alice", "Bob"]

    def test_duplicate_elimination_with_descendant(self, tiny_document):
        evaluator = XPathEvaluator(tiny_document)
        nodes = evaluator.select_nodes("//regions//item")
        assert len(nodes) == 3


class TestPredicates:
    def test_numeric_comparison_predicate(self, evaluator):
        nodes = evaluator.select_nodes("/site/regions/africa/item[quantity > 5]")
        assert len(nodes) == 1
        assert nodes[0].get_attribute("id") == "i1"

    def test_string_equality_predicate(self, evaluator):
        nodes = evaluator.select_nodes('//item[payment = "Creditcard"]/@id')
        assert sorted(n.value for n in nodes) == ["i1", "i3"]

    def test_existence_predicate(self, evaluator):
        nodes = evaluator.select_nodes("/site/people/person[profile]/name")
        assert len(nodes) == 2

    def test_attribute_predicate(self, evaluator):
        nodes = evaluator.select_nodes('/site/people/person[@id = "p2"]/name')
        assert [n.string_value() for n in nodes] == ["Bob"]

    def test_nested_path_predicate(self, evaluator):
        nodes = evaluator.select_nodes("/site/people/person[profile/age > 60]/name")
        assert [n.string_value() for n in nodes] == ["Bob"]

    def test_conjunction_inside_predicate(self, evaluator):
        nodes = evaluator.select_nodes(
            '//item[quantity > 5 and payment = "Creditcard"]')
        assert {n.get_attribute("id") for n in nodes} == {"i1", "i3"}

    def test_chained_predicates(self, evaluator):
        nodes = evaluator.select_nodes('//item[quantity > 1][price < 200]')
        assert {n.get_attribute("id") for n in nodes} == {"i1", "i2"}


class TestComparisons:
    def test_top_level_comparison_true(self, evaluator):
        assert evaluator.evaluate('/site/people/person/@id = "p1"') is True

    def test_top_level_comparison_false(self, evaluator):
        assert evaluator.evaluate('/site/people/person/@id = "p99"') is False

    def test_existential_semantics_over_node_sets(self, evaluator):
        # At least one quantity > 8 (i3 has 9).
        assert evaluator.evaluate("//item/quantity > 8") is True
        assert evaluator.evaluate("//item/quantity > 9") is False

    @pytest.mark.parametrize("expr,expected", [
        ("//item/quantity >= 9", True),
        ("//item/quantity < 2", False),
        ("//item/quantity <= 2", True),
        ("//item/quantity != 7", True),
        ('//item/payment = "Cash"', True),
        ('//item/payment = "Barter"', False),
    ])
    def test_various_operators(self, evaluator, expr, expected):
        assert evaluator.evaluate(expr) is expected

    def test_and_or(self, evaluator):
        assert evaluator.evaluate(
            '//item/quantity > 8 and //item/payment = "Cash"') is True
        assert evaluator.evaluate(
            '//item/quantity > 20 or //item/payment = "Cash"') is True
        assert evaluator.evaluate(
            '//item/quantity > 20 and //item/payment = "Cash"') is False


class TestFunctions:
    def test_contains(self, evaluator):
        assert evaluator.evaluate('contains(/site/regions/namerica/item/name, "lamp")') is True
        assert evaluator.evaluate('contains(/site/regions/namerica/item/name, "xyz")') is False

    def test_starts_with(self, evaluator):
        assert evaluator.evaluate('starts-with(/site/people/person/name, "Al")') is True

    def test_not(self, evaluator):
        assert evaluator.evaluate('not(//item[quantity > 100])') is True

    def test_count(self, evaluator):
        assert evaluator.evaluate("count(//item)") == pytest.approx(3.0)

    def test_exists(self, evaluator):
        assert evaluator.evaluate("exists(//person)") is True
        assert evaluator.evaluate("exists(//robot)") is False

    def test_number_and_string(self, evaluator):
        assert evaluator.evaluate("number(/site/regions/africa/item/quantity)") == pytest.approx(7.0)
        assert evaluator.evaluate("string(/site/people/person/name)") == "Alice"

    def test_unknown_function_raises(self, evaluator):
        with pytest.raises(XPathTypeError):
            evaluator.evaluate("frobnicate(//item)")

    def test_wrong_arity_raises(self, evaluator):
        with pytest.raises(XPathTypeError):
            evaluator.evaluate('contains(//item)')


class TestContextAndHelpers:
    def test_relative_path_with_context(self, evaluator, tiny_document):
        person = evaluator.select_nodes("/site/people/person")[1]
        ages = evaluator.select_nodes("profile/age", context=person)
        assert [a.string_value() for a in ages] == ["67"]

    def test_select_nodes_rejects_scalar_result(self, evaluator):
        with pytest.raises(XPathTypeError):
            evaluator.select_nodes("count(//item)")

    def test_evaluate_boolean_coercion(self, evaluator):
        assert evaluator.evaluate_boolean("//item") is True
        assert evaluator.evaluate_boolean("//widget") is False

    def test_module_level_helper(self, tiny_document):
        result = evaluate_path(tiny_document, "/site/people/person/@id")
        assert len(result) == 2


class TestDescendantAttributeSteps:
    """Regression: a descendant-or-self attribute step must enumerate the
    attributes of the context node *and* all descendant elements, not
    just the context node's own attributes."""

    def _descendant_attr_path(self, name, absolute=True):
        from repro.xpath.ast import Axis, LocationPath, Step

        return LocationPath(
            steps=[Step(axis=Axis.DESCENDANT_OR_SELF, node_test="@" + name)],
            absolute=absolute)

    def test_descendant_attribute_step_from_document(self, evaluator):
        nodes = evaluator.select_nodes(self._descendant_attr_path("id"))
        assert sorted(n.value for n in nodes) == ["i1", "i2", "i3", "p1", "p2"]

    def test_descendant_attribute_step_from_element_context(self, evaluator,
                                                            tiny_document):
        people = evaluator.select_nodes("/site/people")[0]
        nodes = evaluator.select_nodes(
            self._descendant_attr_path("id", absolute=False), context=people)
        assert sorted(n.value for n in nodes) == ["p1", "p2"]

    def test_descendant_attribute_step_includes_own_attributes(self, evaluator):
        person = evaluator.select_nodes("/site/people/person")[0]
        nodes = evaluator.select_nodes(
            self._descendant_attr_path("*", absolute=False), context=person)
        # person's own @id plus its profile's @income.
        assert sorted(n.name for n in nodes) == ["id", "income"]

    def test_parsed_descendant_attribute_still_works(self, evaluator):
        # The parser normalizes //@id to //*/@id; both forms must agree.
        assert len(evaluator.select_nodes("//@id")) == 5


class TestNonFiniteStringConversion:
    """Regression: string() of non-finite floats raised
    OverflowError/ValueError via ``int(value)``."""

    def test_to_string_helper(self):
        from repro.xpath.evaluator import _to_string

        assert _to_string(float("inf")) == "Infinity"
        assert _to_string(float("-inf")) == "-Infinity"
        assert _to_string(float("nan")) == "NaN"
        assert _to_string(2.0) == "2"
        assert _to_string(2.5) == "2.5"

    def test_string_of_nan_via_public_api(self, evaluator):
        # number() of a non-numeric string is NaN in XPath 1.0.
        assert evaluator.evaluate('string(number("not-a-number"))') == "NaN"

    def test_string_of_infinity_via_public_api(self, evaluator):
        # float("Infinity") parses, so number("Infinity") is +inf.
        assert evaluator.evaluate('string(number("Infinity"))') == "Infinity"
        assert evaluator.evaluate('string(number("-Infinity"))') == "-Infinity"

    def test_contains_with_nan_string(self, evaluator):
        assert evaluator.evaluate(
            'contains(string(number("oops")), "NaN")') is True

    def test_literal_to_xpath_non_finite(self):
        from repro.xpath.ast import Literal

        assert Literal(float("nan")).to_xpath() == "NaN"
        assert Literal(float("inf")).to_xpath() == "Infinity"
        assert Literal(float("-inf")).to_xpath() == "-Infinity"
