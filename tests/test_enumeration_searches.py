"""Unit tests for the three configuration-search algorithms."""

from __future__ import annotations

import pytest

from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.candidates import enumerate_basic_candidates
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.enumeration import (
    GreedySearch,
    GreedyWithHeuristicsSearch,
    TopDownSearch,
    create_search,
)
from repro.advisor.generalization import generalize_candidates
from repro.xquery.model import Workload
from repro.xquery.normalizer import normalize_workload


@pytest.fixture(scope="module")
def search_setup(varied_database):
    """Shared candidates/DAG/evaluator for the search tests."""
    workload = Workload(name="search")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=3.0)
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/quantity > 95 return $i/name', frequency=2.0)
    workload.add('for $i in doc("x")/site/regions/asia/item '
                 'where $i/price > 480 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=4.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/profile/@income > 200000 return $p/name', frequency=1.0)
    queries = normalize_workload(workload)
    basic = enumerate_basic_candidates(queries, varied_database)
    generalization = generalize_candidates(basic)
    evaluator = ConfigurationEvaluator(varied_database, queries)
    return generalization, evaluator


def _make(algorithm_class, evaluator, budget_bytes):
    parameters = AdvisorParameters(disk_budget_bytes=budget_bytes)
    return algorithm_class(evaluator, parameters)


class TestGreedySearch:
    def test_unlimited_budget_takes_all_beneficial(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedySearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        assert result.benefit.total_benefit > 0
        assert result.fits_budget
        assert len(result.configuration) >= 4

    def test_budget_is_respected(self, search_setup):
        generalization, evaluator = search_setup
        budget = 6 * 1024.0
        result = _make(GreedySearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        assert result.size_bytes <= budget + 1e-6
        assert result.fits_budget

    def test_zero_budget_gives_empty_configuration(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedySearch, evaluator, 0.0).search(
            generalization.candidates, generalization.dag)
        assert len(result.configuration) == 0
        assert result.benefit.total_benefit == pytest.approx(0.0)

    def test_trace_records_decisions(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedySearch, evaluator, 6 * 1024.0).search(
            generalization.candidates, generalization.dag)
        actions = {step.action.split(" ")[0] for step in result.trace}
        assert "add" in actions or "skip" in actions


class TestGreedyWithHeuristicsSearch:
    def test_no_unused_indexes_in_result(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedyWithHeuristicsSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        assert result.benefit.unused_indexes == []

    def test_budget_is_respected(self, search_setup):
        generalization, evaluator = search_setup
        budget = 6 * 1024.0
        result = _make(GreedyWithHeuristicsSearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        assert result.size_bytes <= budget + 1e-6

    def test_at_least_as_good_as_plain_greedy_at_tight_budget(self, search_setup):
        generalization, evaluator = search_setup
        budget = 5 * 1024.0
        greedy = _make(GreedySearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        heuristic = _make(GreedyWithHeuristicsSearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        assert heuristic.benefit.total_benefit >= greedy.benefit.total_benefit - 1e-6

    def test_does_not_pick_redundant_general_indexes(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedyWithHeuristicsSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        patterns = [index.pattern for index in result.configuration]
        # No index in the configuration strictly contains another of the
        # same value type while the contained one is also present and both
        # cover the same workload predicates (that would be redundancy).
        for general in result.configuration:
            for specific in result.configuration:
                if general.key == specific.key:
                    continue
                if general.value_type is not specific.value_type:
                    continue
                if general.pattern.contains(specific.pattern):
                    # allowed only if the general one covers additional
                    # workload patterns the specific one does not
                    assert general.pattern != specific.pattern

    def test_positive_benefit(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedyWithHeuristicsSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        assert result.benefit.total_benefit > 0


class TestTopDownSearch:
    def test_unlimited_budget_keeps_roots(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(TopDownSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        root_keys = {c.key for c in generalization.dag.roots}
        config_keys = {(d.pattern.to_text(), d.value_type.value)
                       for d in result.configuration}
        assert root_keys <= config_keys

    def test_budget_forces_specialization(self, search_setup):
        generalization, evaluator = search_setup
        unlimited = _make(TopDownSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        budget = unlimited.size_bytes * 0.3
        constrained = _make(TopDownSearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        assert constrained.size_bytes <= budget + 1e-6
        assert constrained.size_bytes < unlimited.size_bytes

    def test_configurations_more_general_than_greedy(self, search_setup):
        generalization, evaluator = search_setup
        budget = 20 * 1024.0
        top_down = _make(TopDownSearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        greedy = _make(GreedyWithHeuristicsSearch, evaluator, budget).search(
            generalization.candidates, generalization.dag)
        def generality(result):
            if not len(result.configuration):
                return 0.0
            return sum(d.pattern.generality_score() for d in result.configuration) / len(
                result.configuration)
        assert generality(top_down) >= generality(greedy)

    def test_trace_mentions_replacements_when_constrained(self, search_setup):
        generalization, evaluator = search_setup
        unlimited = _make(TopDownSearch, evaluator, None).search(
            generalization.candidates, generalization.dag)
        result = _make(TopDownSearch, evaluator, unlimited.size_bytes * 0.3).search(
            generalization.candidates, generalization.dag)
        actions = " ".join(step.action for step in result.trace)
        assert "replace" in actions or "drop" in actions

    def test_works_without_prebuilt_dag(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(TopDownSearch, evaluator, None).search(
            generalization.candidates, dag=None)
        assert result.benefit.total_benefit >= 0


class TestFactoryAndResult:
    def test_create_search_dispatch(self, search_setup):
        _, evaluator = search_setup
        assert isinstance(create_search(SearchAlgorithm.GREEDY, evaluator), GreedySearch)
        assert isinstance(create_search(SearchAlgorithm.GREEDY_HEURISTIC, evaluator),
                          GreedyWithHeuristicsSearch)
        assert isinstance(create_search(SearchAlgorithm.TOP_DOWN, evaluator),
                          TopDownSearch)
        with pytest.raises(ValueError):
            create_search("nonsense", evaluator)  # type: ignore[arg-type]

    def test_result_describe_and_counters(self, search_setup):
        generalization, evaluator = search_setup
        result = _make(GreedySearch, evaluator, 8 * 1024.0).search(
            generalization.candidates, generalization.dag)
        assert result.evaluations_performed > 0
        text = result.describe()
        assert "greedy" in text and "KiB" in text
