"""Tests for the structural path-summary subsystem and the XPath compiler.

Covers:

* :class:`repro.storage.path_summary.PathSummary` construction, lookup
  semantics and the collection-level invalidation contract;
* :mod:`repro.xpath.compiler` lowering rules, fallback classification
  and the parse/compile LRU caches;
* node-set equivalence between compiled summary lookups and the
  interpretive :class:`~repro.xpath.evaluator.XPathEvaluator` across
  the synthetic and XMark workloads (the property the executor's
  summary-backed scan engine relies on);
* statistics derived from the summary matching the direct collection
  path;
* executor behaviour: summary scans vs. legacy interpretive scans, and
  physical index builds sourced from the summary.
"""

from __future__ import annotations

import pytest

from _support import TINY_SITE_XML, build_varied_database
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexDefinition
from repro.storage import XmlDatabase
from repro.storage.path_summary import PathSummary, build_path_summary
from repro.storage.statistics import (
    collect_statistics,
    collect_statistics_from_summary,
)
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.xmldb import parse_document
from repro.xpath.compiler import (
    clear_compiler_caches,
    compile_xpath,
    parse_xpath_cached,
    pattern_summary_safe,
)
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.patterns import PathPattern
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_workload


# ----------------------------------------------------------------------
# PathSummary core
# ----------------------------------------------------------------------
class TestPathSummary:
    def test_build_counts_and_paths(self, tiny_document):
        summary = build_path_summary([tiny_document], renumber=True)
        assert summary.document_count == 1
        assert summary.has_path("/site/regions/africa/item")
        assert summary.has_path("/site/people/person/@id")
        assert not summary.has_path("/site/nowhere")
        # 3 items, 2 persons carry @id.
        assert len(summary.nodes_for_path("/site/regions/africa/item")) == 2
        assert summary.total_element_count == sum(
            1 for _ in tiny_document.descendant_elements())

    def test_pattern_lookup_with_wildcards_and_descendants(self, tiny_document):
        summary = build_path_summary([tiny_document], renumber=True)
        items = summary.nodes_for_pattern(PathPattern.parse("/site/regions/*/item"))
        assert len(items) == 3
        ids = summary.nodes_for_pattern(PathPattern.parse("//@id"))
        assert sorted(n.value for n in ids) == ["i1", "i2", "i3", "p1", "p2"]
        assert summary.node_count_for_pattern(PathPattern.parse("//item")) == 3

    def test_per_document_lookup_and_document_ids(self):
        database = XmlDatabase("t")
        collection = database.create_collection("site")
        collection.add_document(parse_document(TINY_SITE_XML))
        collection.add_document(parse_document("<site><people/></site>"))
        summary = collection.path_summary
        pattern = PathPattern.parse("//item")
        assert summary.document_ids_for_pattern(pattern) == {0}
        assert summary.nodes_for_pattern(pattern, doc_id=1) == []
        assert summary.has_match(pattern, doc_id=0)
        assert not summary.has_match(pattern, doc_id=1)

    def test_collection_invalidates_summary_on_add_and_remove(self):
        database = XmlDatabase("t")
        collection = database.create_collection("site")
        collection.add_document(parse_document(TINY_SITE_XML))
        first = collection.path_summary
        assert collection.path_summary is first  # cached
        version = collection.version
        collection.add_document(parse_document(TINY_SITE_XML))
        assert collection.version > version
        second = collection.path_summary
        assert second is not first
        assert second.document_count == 2
        collection.remove_document(0)
        assert collection.path_summary.document_count == 1

    def test_invalidate_statistics_also_drops_summary(self):
        database = XmlDatabase("t")
        collection = database.create_collection("site")
        collection.add_document(parse_document(TINY_SITE_XML))
        first = collection.path_summary
        collection.invalidate_statistics()
        assert collection.path_summary is not first

    def test_describe_mentions_counts(self, tiny_document):
        summary = build_path_summary([tiny_document], renumber=True)
        text = summary.describe()
        assert "distinct paths" in text and "1 document(s)" in text

    def test_ordered_pattern_lookup_is_in_document_order(self):
        """Multi-path pattern lookups with ordered=True merge the per-path
        runs by node id: the result is exactly document order, per
        document, across every distinct path the pattern matches."""
        database = XmlDatabase("t")
        collection = database.create_collection("site")
        collection.add_document(parse_document(TINY_SITE_XML))
        collection.add_document(parse_document(TINY_SITE_XML))
        summary = collection.path_summary
        # '//@id' matches both item/@id and person/@id -- two distinct
        # paths whose nodes interleave in document order.
        pattern = PathPattern.parse("//@id")
        assert len(summary.paths_matching(pattern)) > 1
        def doc_of(node):
            return list(node.ancestors(include_self=True))[-1].doc_id

        ordered = summary.nodes_for_pattern(pattern, ordered=True)
        keys = [(doc_of(node), node.node_id) for node in ordered]
        assert keys == sorted(keys)
        # Same node set as the unordered (grouped-by-path) lookup.
        unordered = summary.nodes_for_pattern(pattern)
        assert {id(n) for n in ordered} == {id(n) for n in unordered}
        # Per-document lookup is ordered too.
        for doc_id in (0, 1):
            per_doc = summary.nodes_for_pattern(pattern, doc_id=doc_id,
                                                ordered=True)
            ids = [node.node_id for node in per_doc]
            assert ids == sorted(ids) and ids

    def test_ordered_lookup_single_path_unchanged(self, tiny_document):
        summary = build_path_summary([tiny_document], renumber=True)
        pattern = PathPattern.parse("/site/regions/africa/item")
        assert summary.nodes_for_pattern(pattern, ordered=True) == \
            summary.nodes_for_pattern(pattern)

    def test_compiled_lookup_serves_ordered_extraction(self):
        """CompiledXPath.select_nodes(ordered=True) returns the summary
        spine in document order, matching the interpreter's order."""
        from repro.xpath.compiler import compile_xpath

        database = XmlDatabase("t")
        collection = database.create_collection("site")
        document = collection.add_document(parse_document(TINY_SITE_XML))
        summary = collection.path_summary
        compiled = compile_xpath("//@id")
        assert compiled.is_summary_backed
        nodes = compiled.select_nodes(summary, document, ordered=True)
        interpreted = XPathEvaluator(document).select_nodes(compiled.expression)
        assert [n.node_id for n in nodes] == [n.node_id for n in interpreted]


# ----------------------------------------------------------------------
# Statistics share the summary traversal
# ----------------------------------------------------------------------
class TestStatisticsFromSummary:
    def test_summary_statistics_match_direct_collection(self):
        docs = [parse_document(TINY_SITE_XML),
                parse_document("<site><people><person id='x'>"
                               "<name>Zoe</name></person></people></site>")]
        direct = collect_statistics(docs)
        via_summary = collect_statistics_from_summary(
            build_path_summary(docs, renumber=True))
        assert direct.document_count == via_summary.document_count
        assert direct.total_node_count == via_summary.total_node_count
        assert direct.total_element_count == via_summary.total_element_count
        assert direct.total_text_bytes == via_summary.total_text_bytes
        assert direct.path_stats == via_summary.path_stats

    def test_collection_statistics_derived_from_summary(self, xmark_database):
        for collection in xmark_database.collections:
            stats = collection.statistics
            summary = collection.path_summary
            assert stats.document_count == summary.document_count
            assert stats.total_element_count == summary.total_element_count
            assert set(stats.path_stats) == set(summary.distinct_paths)


# ----------------------------------------------------------------------
# Compiler lowering and caches
# ----------------------------------------------------------------------
class TestCompiler:
    def test_predicate_free_paths_are_summary_backed(self):
        for text in ("/site/people/person/@id", "//keyword",
                     "/site/regions/*/item", "//item/name/text()",
                     "/site//item/payment", "//@id"):
            compiled = compile_xpath(text)
            assert compiled.is_summary_backed, text
            assert not compiled.residual_predicates

    def test_final_step_predicates_become_residual(self):
        compiled = compile_xpath("/site/regions/africa/item[quantity > 5]")
        assert compiled.is_summary_backed
        assert len(compiled.residual_predicates) == 1
        assert compiled.pattern.to_text() == "/site/regions/africa/item"

    @pytest.mark.parametrize("text,reason_fragment", [
        ("item/name", "relative"),
        ("$i/quantity", "variable"),
        ("/", "document root"),
        ("/site/person[@id = 'p']/name", "inner step"),
        ("/a//a", "context"),
        ("//site//*", "context"),
        ("/site//text()", "text()"),
        ("count(//item)", "not a location path"),
    ])
    def test_fallback_reasons(self, text, reason_fragment):
        compiled = compile_xpath(text)
        assert not compiled.is_summary_backed
        assert reason_fragment in compiled.fallback_reason

    def test_fallback_still_evaluates_via_interpreter(self, tiny_document):
        compiled = compile_xpath("//person[@id = \"p1\"]/name")
        assert not compiled.is_summary_backed
        nodes = compiled.select_nodes(None, tiny_document)
        assert [n.string_value() for n in nodes] == ["Alice"]

    def test_compile_cache_returns_same_object(self):
        clear_compiler_caches()
        first = compile_xpath("/site/people/person")
        second = compile_xpath("/site/people/person")
        assert first is second
        assert parse_xpath_cached("/site/people/person") is parse_xpath_cached(
            "/site/people/person")

    def test_pattern_summary_safety(self):
        assert pattern_summary_safe(PathPattern.parse("/site/regions//item"))
        assert pattern_summary_safe(PathPattern.parse("//item/@id"))
        assert not pattern_summary_safe(PathPattern.parse("/a//a"))
        assert not pattern_summary_safe(PathPattern.parse("//site//*"))


# ----------------------------------------------------------------------
# Compiled-vs-interpreter node-set equivalence (the core property)
# ----------------------------------------------------------------------
def _assert_equivalent(database, expressions):
    checked = 0
    for collection in database.collections:
        summary = collection.path_summary
        for document in collection:
            evaluator = XPathEvaluator(document)
            for text in expressions:
                compiled = compile_xpath(text)
                got = {id(n) for n in compiled.select_nodes(summary, document,
                                                            evaluator)}
                want = {id(n) for n in evaluator.select_nodes(text)}
                assert got == want, (text, document.doc_id)
                checked += 1
    assert checked > 0


HAND_EXPRESSIONS = [
    "/site/people/person/@id",
    "/site/regions/*/item",
    "/site/regions/africa/item[quantity > 5]",
    "//keyword",
    "//@id",
    "//item/name/text()",
    "/site//item/payment",
    "//regions//item",
    "/site/people/person[profile/@income >= 42000]",
    "/a//a",                      # fallback shape: must still agree
    "//person[@id = \"p1\"]/name",  # inner predicate: interpreter both ways
]


def test_compiled_equivalence_tiny(tiny_database):
    _assert_equivalent(tiny_database, HAND_EXPRESSIONS)


def test_compiled_equivalence_xmark_workload(xmark_database, xmark_workload):
    expressions = set(HAND_EXPRESSIONS)
    for query in normalize_workload(xmark_workload):
        for predicate in query.predicates:
            expressions.add(predicate.pattern.to_text())
        for pattern in query.extraction_paths:
            expressions.add(pattern.to_text())
    _assert_equivalent(xmark_database, sorted(expressions))


def test_compiled_equivalence_synthetic_workload():
    database = build_varied_database(documents=20, name="synth-equiv")
    workload = SyntheticWorkloadGenerator(database, seed=5).generate(
        12, predicates_per_query=2, name="synthetic-equivalence")
    expressions = set()
    for query in normalize_workload(workload):
        for predicate in query.predicates:
            expressions.add(predicate.pattern.to_text())
        for pattern in query.extraction_paths:
            expressions.add(pattern.to_text())
    assert expressions
    _assert_equivalent(database, sorted(expressions))


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class TestExecutorSummaryEngine:
    QUERY = ('for $i in doc("x")/site/regions/africa/item '
             'where $i/quantity > 90 return $i/name')

    def test_summary_and_legacy_scans_agree(self, xmark_database, xmark_workload):
        queries = [q for q in normalize_workload(xmark_workload)
                   if not q.is_update]
        summary_results = QueryExecutor(
            xmark_database, use_path_summary=True).execute_workload(queries)
        legacy_results = QueryExecutor(
            xmark_database, use_path_summary=False).execute_workload(queries)
        for with_summary, legacy in zip(summary_results, legacy_results):
            assert with_summary.result_count == legacy.result_count
            assert with_summary.documents_examined == legacy.documents_examined

    def test_summary_index_build_matches_legacy_entries(self):
        from repro.index.physical import build_physical_index

        database = build_varied_database(documents=15, name="idx-equiv")
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        index = build_physical_index(definition, database)
        # Reference: brute-force walk of every document.
        expected = []
        for collection in database.collections:
            for document in collection:
                for element in document.descendant_elements():
                    if definition.pattern.matches(element.simple_path()):
                        key = element.double_value()
                        if key is not None:
                            expected.append((key, collection.name,
                                             document.doc_id, element.node_id))
        got = [(e.key, e.collection, e.doc_id, e.node_id)
               for e in index.entries]
        assert sorted(got) == sorted(expected)

    def test_index_plan_sees_documents_added_after_construction(self):
        database = build_varied_database(documents=10, name="stale-lookup")
        executor = QueryExecutor(database)
        # A document added *after* the executor was constructed...
        late = parse_document(TINY_SITE_XML.replace('id="p1"', 'id="p777"'))
        database.collection("site").add_document(late)
        executor.create_indexes([
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)])
        query = ('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p777" return $p/name')
        result = executor.execute(query)
        # ...must be found by the index plan (the lookup refreshes itself).
        assert result.used_index_plan
        assert result.result_count == 1

    def test_index_built_before_add_is_rebuilt_on_execute(self):
        # Regression: a physical index materialized *before* a document
        # was added must be rebuilt, not just the doc lookup refreshed —
        # otherwise the index plan silently misses the new document.
        database = build_varied_database(documents=10, name="stale-index")
        executor = QueryExecutor(database)
        executor.create_indexes([
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)])
        late = parse_document(TINY_SITE_XML.replace('id="p1"', 'id="p888"'))
        database.collection("site").add_document(late)
        query = ('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p888" return $p/name')
        result = executor.execute(query)
        assert result.used_index_plan
        assert result.result_count == 1

    def test_scan_sees_documents_added_after_construction(self):
        database = build_varied_database(documents=5, name="stale-scan")
        executor = QueryExecutor(database)
        before = executor.execute(self.QUERY).documents_examined
        database.collection("site").add_document(parse_document(TINY_SITE_XML))
        after = executor.execute(self.QUERY).documents_examined
        assert after == before + 1
