"""Unit tests for the two new EXPLAIN modes (the paper's optimizer extensions)."""

from __future__ import annotations

import pytest

from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.explain import (
    ExplainMode,
    enumerate_indexes,
    evaluate_indexes,
)
from repro.optimizer.optimizer import Optimizer
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_statement


QUERY = ('for $i in doc("x")/site/regions/africa/item '
         'where $i/quantity > 90 and $i/payment = "Creditcard" return $i/name')


class TestEnumerateIndexesMode:
    def test_candidates_match_query_predicates(self, varied_database):
        query = normalize_statement(QUERY)
        result = enumerate_indexes(query, varied_database)
        patterns = {c.pattern.to_text(): c for c in result.candidates}
        assert "/site/regions/africa/item/quantity" in patterns
        assert patterns["/site/regions/africa/item/quantity"].value_type is ValueType.DOUBLE
        assert "/site/regions/africa/item/payment" in patterns
        assert patterns["/site/regions/africa/item/payment"].value_type is ValueType.VARCHAR

    def test_attribute_predicates_enumerated(self, varied_database):
        query = normalize_statement(
            'for $p in doc("x")/site/people/person '
            'where $p/profile/@income > 200000 return $p/name')
        result = enumerate_indexes(query, varied_database)
        patterns = {c.pattern.to_text() for c in result.candidates}
        assert "/site/people/person/profile/@income" in patterns

    def test_query_without_indexable_predicates(self, varied_database):
        query = normalize_statement("/site/people/person/name")
        result = enumerate_indexes(query, varied_database)
        assert result.candidates == []

    def test_costs_reported(self, varied_database):
        query = normalize_statement(QUERY)
        result = enumerate_indexes(query, varied_database)
        assert result.cost_without_indexes > 0
        assert result.cost_with_universal_indexes <= result.cost_without_indexes

    def test_catalog_left_clean(self, varied_database):
        query = normalize_statement(QUERY)
        enumerate_indexes(query, varied_database)
        assert varied_database.catalog.virtual_indexes == []

    def test_candidates_deduplicated(self, varied_database):
        query = normalize_statement(
            'for $i in doc("x")//item where $i/quantity > 90 and $i/quantity < 95 return $i')
        result = enumerate_indexes(query, varied_database)
        patterns = [c.pattern.to_text() for c in result.candidates]
        assert len(patterns) == len(set(patterns))

    def test_render_output(self, varied_database):
        query = normalize_statement(QUERY)
        result = enumerate_indexes(query, varied_database)
        text = result.render()
        assert "ENUMERATE INDEXES" in text
        assert "candidate:" in text

    def test_spec_to_definition(self, varied_database):
        query = normalize_statement(QUERY)
        result = enumerate_indexes(query, varied_database)
        definition = result.candidates[0].to_definition()
        assert definition.is_virtual
        assert definition.pattern == result.candidates[0].pattern


class TestEvaluateIndexesMode:
    def test_configuration_lowers_cost(self, varied_database):
        query = normalize_statement(QUERY)
        configuration = IndexConfiguration([
            IndexDefinition.create("/site/regions/africa/item/quantity", ValueType.DOUBLE),
            IndexDefinition.create("/site/regions/africa/item/payment", ValueType.VARCHAR),
        ])
        baseline = Optimizer(varied_database).optimize(query, candidate_indexes=[])
        result = evaluate_indexes(query, varied_database, configuration)
        assert result.estimated_cost <= baseline.total_cost
        assert result.used_indexes  # at least one index used
        assert result.plan.uses_indexes

    def test_useless_configuration_reports_scan(self, varied_database):
        query = normalize_statement(QUERY)
        configuration = IndexConfiguration([
            IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR)])
        result = evaluate_indexes(query, varied_database, configuration)
        assert result.used_indexes == []
        baseline = Optimizer(varied_database).optimize(query, candidate_indexes=[])
        assert result.estimated_cost == pytest.approx(baseline.total_cost)

    def test_accepts_plain_iterables(self, varied_database):
        query = normalize_statement(QUERY)
        result = evaluate_indexes(query, varied_database, [
            IndexDefinition.create("/site/regions/africa/item/quantity", ValueType.DOUBLE)])
        assert isinstance(result.configuration, IndexConfiguration)

    def test_general_configuration_matches_specific_predicates(self, varied_database):
        query = normalize_statement(QUERY)
        general = IndexConfiguration([
            IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE)])
        result = evaluate_indexes(query, varied_database, general)
        assert result.used_indexes
        assert result.used_indexes[0].pattern.to_text() == "/site/regions/*/item/quantity"

    def test_physical_indexes_hidden_by_default(self, varied_database):
        physical = IndexDefinition.create("/site/regions/africa/item/quantity",
                                          ValueType.DOUBLE, name="existing_phys")
        varied_database.catalog.add_index(physical)
        try:
            query = normalize_statement(QUERY)
            empty = evaluate_indexes(query, varied_database, IndexConfiguration())
            assert empty.used_indexes == []
            with_physical = evaluate_indexes(query, varied_database, IndexConfiguration(),
                                             include_physical=True)
            assert with_physical.estimated_cost <= empty.estimated_cost
        finally:
            varied_database.catalog.drop_index("existing_phys")

    def test_catalog_restored_after_evaluation(self, varied_database):
        query = normalize_statement(QUERY)
        evaluate_indexes(query, varied_database, [
            IndexDefinition.create("/site/regions/africa/item/quantity", ValueType.DOUBLE)])
        assert varied_database.catalog.virtual_indexes == []

    def test_render_output(self, varied_database):
        query = normalize_statement(QUERY)
        result = evaluate_indexes(query, varied_database, [
            IndexDefinition.create("/site/regions/africa/item/quantity", ValueType.DOUBLE)])
        assert "EVALUATE INDEXES" in result.render()


class TestExplainModeEnum:
    def test_modes_exist(self):
        assert ExplainMode.NORMAL.value == "normal"
        assert ExplainMode.ENUMERATE_INDEXES.value == "enumerate indexes"
        assert ExplainMode.EVALUATE_INDEXES.value == "evaluate indexes"
