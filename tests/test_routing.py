"""Collection-scoped cost model + structural routing (PR 4).

Three contracts are covered:

* **routing sets** -- which collections a query's patterns can match,
  including exact loose-matched routing for summary-unsafe ``//``
  shapes (PR 8), empty matches, and the ``use_collection_costing``
  escape hatch;
* **reduction** -- on a single-collection database the collection-
  scoped model must be byte-identical to the legacy whole-database
  model (costs, plans, benefits, recommendations), and on any database
  routing must never change *results*;
* **invalidation** -- cached plans and per-query costings are keyed to
  the routing set's collections: a document add to one collection
  triggers **zero** re-costings of queries routed only to the others
  (the acceptance criterion), byte-identically to a fresh evaluation.

The randomized suites extend the ``tests/test_maintenance.py`` harness
pattern: seeded interleaved change sequences on XMark/TPoX fragments,
checked against an escape-hatch twin after every operation.
"""

from __future__ import annotations

import random

import pytest

from _support import (
    EVALUATOR_COUNTERS,
    EXECUTOR_COUNTERS,
    assert_counter_parity,
    build_varied_database,
)
from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.workloads.tpox import (
    TpoxConfig,
    generate_tpox_database,
    tpox_query_workload,
)
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xmldb.serializer import serialize
from repro.xquery.model import ValueType, Workload, WorkloadStatement
from repro.xquery.normalizer import normalize_statement, normalize_workload


def _coresident_database(xmark_scale: float = 0.03, tpox_scale: float = 0.05,
                         seed: int = 42, name: str = "co") -> XmlDatabase:
    database = XmlDatabase(name)
    sources = (generate_xmark_database(XMarkConfig(scale=xmark_scale, seed=seed)),
               generate_tpox_database(TpoxConfig(scale=tpox_scale, seed=seed + 1)))
    for source in sources:
        for collection in source.collections:
            target = database.create_collection(collection.name)
            for document in collection:
                target.add_document(serialize(document))
    return database


def _combined_queries():
    workload = Workload(name="combined")
    for statement in list(xmark_query_workload()) + list(tpox_query_workload()):
        workload.add(WorkloadStatement(text=statement.text,
                                       frequency=statement.frequency))
    return [query for query in normalize_workload(workload)
            if not query.is_update]


class TestRoutingSets:
    def test_predicate_query_routes_to_its_collection(self):
        database = _coresident_database()
        model = Optimizer(database).cost_model
        query = normalize_statement(
            "/site/regions/africa/item[quantity > 5]")
        assert model.routing_set(query) == ("xmark",)
        query = normalize_statement('/FIXML/Order[@ID = "103000042"]')
        assert model.routing_set(query) == ("order",)

    def test_unmatched_predicate_routes_nowhere(self):
        database = _coresident_database()
        model = Optimizer(database).cost_model
        query = normalize_statement("/no/such/path[thing = 'x']")
        assert model.routing_set(query) == ()

    def test_summary_unsafe_pattern_routes_exactly(self):
        # ``/site//*``-shaped patterns (a descendant step that can match
        # its own context) used to widen routing to every collection
        # (None); the loose per-path matcher now decides their
        # descendant-or-self semantics exactly against each synopsis,
        # so the routing set shrinks to the matching collections.
        database = _coresident_database()
        model = Optimizer(database).cost_model
        assert model.routing_set(normalize_statement("/site//*")) \
            == ("xmark",)
        # Descendant-or-self: the context node itself satisfies
        # ``//site``, so the shape still routes (exactly) to xmark.
        assert model.routing_set(normalize_statement("/site//site")) \
            == ("xmark",)
        # An unsafe shape no collection can satisfy routes nowhere
        # instead of everywhere.
        assert model.routing_set(normalize_statement("/FIXML//site")) == ()

    def test_escape_hatch_disables_routing(self):
        database = _coresident_database()
        model = Optimizer(database, use_collection_costing=False).cost_model
        query = normalize_statement("/site/regions/africa/item[quantity > 5]")
        assert model.routing_set(query) is None

    def test_single_collection_routing_covers_everything(self):
        database = build_varied_database(documents=10, name="route-single")
        model = Optimizer(database).cost_model
        query = normalize_statement("/site/regions/africa/item[quantity > 5]")
        # Full coverage is normalized to None (= all collections), and
        # the scoped model is the unscoped one.
        routing = model.routing_set(query)
        assert routing is None
        assert model.scoped(routing) is model

    def test_plans_record_routing(self):
        database = _coresident_database()
        optimizer = Optimizer(database)
        plan = optimizer.optimize(
            normalize_statement("/site/people/person[name = 'Alice']"),
            candidate_indexes=[])
        assert plan.routing == ("xmark",)
        assert "routed to xmark" in plan.render()
        update = optimizer.plan_update(
            normalize_statement('delete node /FIXML/Order[@ID = "1"]'),
            candidate_indexes=[])
        assert update.routing == ("order",)

    def test_merged_statistics_keep_subsynopses(self):
        database = _coresident_database()
        merged = database.statistics
        assert set(merged.collection_stats) == \
            {"xmark", "order", "security", "custacc"}
        routed = merged.merged_over(("xmark",))
        assert routed is not merged
        assert routed.document_count == len(database.collection("xmark"))
        assert merged.merged_over(tuple(merged.collection_stats)) is merged
        # Versions recorded per collection (the cache-key signatures).
        for collection in database.collections:
            assert merged.collection_versions[collection.name] \
                == collection.version


class TestSingleCollectionReduction:
    """On single-collection databases the collection-scoped model must
    reduce to the legacy one byte-identically."""

    def test_plan_costs_byte_identical(self):
        database = build_varied_database(documents=60, name="reduce")
        queries = [query for query in
                   normalize_workload(xmark_query_workload())
                   if not query.is_update]
        candidates = [
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
            IndexDefinition.create("/site/regions/*/item/quantity",
                                   ValueType.DOUBLE),
            IndexDefinition.create("//item/payment", ValueType.VARCHAR),
        ]
        routed = Optimizer(database)
        legacy = Optimizer(database, use_collection_costing=False)
        for query in queries:
            for visible in ([], candidates):
                a = routed.optimize(query, candidate_indexes=visible)
                b = legacy.optimize(query, candidate_indexes=visible)
                assert a.total_cost == b.total_cost, query.query_id
                assert a.used_index_names == b.used_index_names

    def test_benefits_and_recommendation_byte_identical(self):
        database = build_varied_database(documents=60, name="reduce-adv")
        workload = Workload(name="reduce")
        workload.add("/site/regions/africa/item[quantity > 5]", frequency=2.0)
        workload.add("/site/people/person[name = 'Person 3 0']")
        workload.add("/site/regions/*/item[price > 400]")
        queries = normalize_workload(workload)
        configuration = IndexConfiguration([
            IndexDefinition.create("/site/regions/*/item/quantity",
                                   ValueType.DOUBLE),
            IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR),
        ])
        routed = ConfigurationEvaluator(database, queries).evaluate(configuration)
        legacy = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_collection_costing=False)).evaluate(configuration)
        assert routed.total_benefit == legacy.total_benefit
        assert routed.total_size_bytes == legacy.total_size_bytes
        rows = {row.query_id: row for row in legacy.query_evaluations}
        for row in routed.query_evaluations:
            assert row.cost_with_configuration == \
                rows[row.query_id].cost_with_configuration
        recommendations = []
        for costing in (True, False):
            advisor = XmlIndexAdvisor(database, AdvisorParameters(
                disk_budget_bytes=64 * 1024.0, use_collection_costing=costing))
            recommendation = advisor.recommend(
                Workload(statements=list(workload)))
            recommendations.append(
                (frozenset(d.key for d in recommendation.configuration),
                 recommendation.total_benefit))
        assert recommendations[0] == recommendations[1]


class TestExecutorRouting:
    def test_scan_prunes_unrouted_collections(self):
        database = _coresident_database()
        executor = QueryExecutor(database)
        result = executor.execute("/site/people/person[name = 'Alice']")
        assert result.documents_examined == len(database.collection("xmark"))
        assert executor.documents_routed_out > 0

    def test_routing_escape_hatch_walks_everything(self):
        database = _coresident_database()
        executor = QueryExecutor(
            database,
            optimizer=Optimizer(database, use_collection_costing=False),
            use_collection_routing=False)
        result = executor.execute("/site/people/person[name = 'Alice']")
        assert result.documents_examined == \
            sum(len(c) for c in database.collections)
        assert executor.documents_routed_out == 0

    def test_index_plan_residual_checks_respect_routing(self):
        # A //-general index covers paths in several collections; the
        # candidate documents outside the query's routing set must be
        # skipped without residual evaluation.
        database = _coresident_database(xmark_scale=0.05, tpox_scale=0.08)
        executor = QueryExecutor(database)
        definition = IndexDefinition.create("//Symbol", ValueType.VARCHAR)
        executor.create_indexes([definition])
        query = normalize_statement('/Security[Symbol = "SYM0005"]')
        plan = executor.optimizer.optimize(
            query, candidate_indexes=database.catalog.physical_indexes)
        result = executor.execute(query)
        legacy = QueryExecutor(
            database,
            optimizer=Optimizer(database, use_collection_costing=False),
            use_collection_routing=False)
        legacy.create_indexes([definition])
        assert result.result_count == legacy.execute(query).result_count
        if plan.uses_indexes:
            assert plan.routing == ("security",)

    def test_dead_executor_listener_is_dropped(self):
        """Executors subscribe to collections weakly: a collected
        executor must not be pinned by the listener list, and its dead
        listener must be pruned on the next change notification."""
        import gc

        database = build_varied_database(documents=4, name="route-weak")
        collection = database.collection("site")
        listeners_before = len(collection._change_listeners)
        executor = QueryExecutor(database)
        executor.execute("/site/people/person[name = 'Person 1 0']")
        assert len(collection._change_listeners) == listeners_before + 1
        del executor
        gc.collect()
        collection.add_document("<site><people/></site>")  # prunes dead refs
        assert len(collection._change_listeners) == listeners_before

    def test_summary_cache_invalidated_by_version_listener(self):
        database = build_varied_database(documents=8, name="route-sum")
        executor = QueryExecutor(database)
        executor.execute("/site/people/person[name = 'Person 1 0']")
        cached = executor._summaries.get("site")
        assert cached is not None
        assert executor._summary_for("site") is cached  # served from memo
        database.collection("site").add_document("<site><people/></site>")
        assert "site" not in executor._summaries  # listener evicted it
        executor.execute("/site/people/person[name = 'Person 1 0']")
        assert executor._summaries["site"] is not cached


class TestRoutedInvalidation:
    """The acceptance criterion: single-collection change, zero cross-
    collection re-costings, byte-exact results."""

    def _evaluators(self, database, queries):
        routed = ConfigurationEvaluator(database, queries)
        legacy = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_collection_costing=False))
        return routed, legacy

    def _configuration(self):
        return IndexConfiguration([
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
            IndexDefinition.create("/site/regions/*/item/quantity",
                                   ValueType.DOUBLE),
            IndexDefinition.create("/FIXML/Order/@ID", ValueType.VARCHAR),
            IndexDefinition.create("/Security/Symbol", ValueType.VARCHAR),
        ])

    def test_single_collection_add_recosts_zero_cross_collection(self):
        database = _coresident_database()
        queries = _combined_queries()
        routed, legacy = self._evaluators(database, queries)
        configuration = self._configuration()
        routed_base = routed.evaluate(configuration)
        legacy_base = legacy.evaluate(configuration)

        model = routed.optimizer.cost_model
        affected_ids = {query.query_id for query in queries
                        if (lambda r: not r or "xmark" in r)
                        (model.routing_set(query))}
        cross_ids = {query.query_id for query in queries} - affected_ids
        assert cross_ids, "need queries routed only to other collections"

        donor = generate_xmark_database(XMarkConfig(scale=0.03, seed=99))
        database.collection("xmark").add_document(
            serialize(donor.collection("xmark").documents[0]))

        before = routed.query_costings
        routed_delta = routed.update(routed_base)
        assert routed.query_costings - before == len(affected_ids)
        # The escape hatch's aggregates guard re-costs everything.
        before = legacy.query_costings
        legacy.update(legacy_base)
        assert legacy.query_costings - before == len(queries)

        # Byte-exactness of the preserved rows.
        fresh = ConfigurationEvaluator(database, queries)
        reference = fresh.evaluate(configuration)
        assert routed_delta.total_benefit == reference.total_benefit
        rows = {row.query_id: row for row in reference.query_evaluations}
        for row in routed_delta.query_evaluations:
            assert row.cost_with_configuration == \
                rows[row.query_id].cost_with_configuration
            assert row.cost_without_indexes == \
                rows[row.query_id].cost_without_indexes

    def test_plan_cache_survives_other_collection_change(self):
        database = _coresident_database()
        queries = _combined_queries()
        optimizer = Optimizer(database)
        order_queries = [query for query in queries
                         if optimizer.cost_model.routing_set(query)
                         == ("order",)]
        assert order_queries
        candidates = [IndexDefinition.create("/FIXML/Order/@ID",
                                             ValueType.VARCHAR)]
        for query in order_queries:
            optimizer.optimize(query, candidate_indexes=candidates)
        plans_before = optimizer.plan_calls
        donor = generate_xmark_database(XMarkConfig(scale=0.03, seed=99))
        database.collection("xmark").add_document(
            serialize(donor.collection("xmark").documents[0]))
        for query in order_queries:
            optimizer.optimize(query, candidate_indexes=candidates)
        assert optimizer.plan_calls == plans_before  # all served cached
        assert optimizer.plan_cache_flushes == 0

    def test_legacy_model_still_flushes_on_aggregates(self):
        database = _coresident_database()
        optimizer = Optimizer(database, use_collection_costing=False)
        query = normalize_statement('/FIXML/Order[@ID = "103000042"]')
        candidates = [IndexDefinition.create("/FIXML/Order/@ID",
                                             ValueType.VARCHAR)]
        optimizer.optimize(query, candidate_indexes=candidates)
        plans_before = optimizer.plan_calls
        donor = generate_xmark_database(XMarkConfig(scale=0.03, seed=99))
        database.collection("xmark").add_document(
            serialize(donor.collection("xmark").documents[0]))
        optimizer.optimize(query, candidate_indexes=candidates)
        assert optimizer.plan_calls == plans_before + 1  # re-planned


@pytest.mark.parametrize("seed", [7, 21])
def test_randomized_multi_collection_equivalence(seed):
    """Randomized interleaved adds/removes across co-resident
    collections: routing on vs. off must return identical results after
    every operation, and the long-lived routed evaluator must stay
    byte-identical to a fresh one at the end."""
    database = _coresident_database(xmark_scale=0.02, tpox_scale=0.03,
                                    seed=seed, name=f"rand-{seed}")
    donors = {
        "xmark": generate_xmark_database(
            XMarkConfig(scale=0.03, seed=seed + 50)).collection("xmark"),
        "order": generate_tpox_database(
            TpoxConfig(scale=0.04, seed=seed + 60)).collection("order"),
        "custacc": generate_tpox_database(
            TpoxConfig(scale=0.04, seed=seed + 70)).collection("custacc"),
    }
    reserve = {name: [serialize(d) for d in collection.documents]
               for name, collection in donors.items()}

    queries = _combined_queries()
    routed_executor = QueryExecutor(database)
    unrouted_executor = QueryExecutor(
        database, optimizer=Optimizer(database, use_collection_costing=False),
        use_collection_routing=False)
    evaluator = ConfigurationEvaluator(database, queries)
    configuration = IndexConfiguration([
        IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
        IndexDefinition.create("/FIXML/Order/@ID", ValueType.VARCHAR),
        IndexDefinition.create("/Customer/@id", ValueType.VARCHAR),
    ])
    evaluator.evaluate(configuration)

    rng = random.Random(seed * 101)
    check_queries = [query for query in queries]
    for step in range(10):
        name = rng.choice(list(reserve))
        collection = database.collection(name)
        if reserve[name] and (len(collection) < 2 or rng.random() < 0.65):
            collection.add_document(reserve[name].pop())
        else:
            collection.remove_document(rng.randrange(len(collection)))
        sample = rng.sample(check_queries, 6)
        for query in sample:
            a = routed_executor.execute(query)
            b = unrouted_executor.execute(query)
            assert a.result_count == b.result_count, (step, query.query_id)

    maintained = evaluator.evaluate(configuration)
    reference = ConfigurationEvaluator(database, queries).evaluate(configuration)
    assert maintained.total_benefit == reference.total_benefit
    rows = {row.query_id: row for row in reference.query_evaluations}
    for row in maintained.query_evaluations:
        assert row.cost_with_configuration == \
            rows[row.query_id].cost_with_configuration
        assert row.used_index_keys == rows[row.query_id].used_index_keys
    # PR 10: legacy counters stayed byte-equal to their registry
    # metrics across the randomized interleaved run.
    assert_counter_parity(routed_executor, EXECUTOR_COUNTERS)
    assert_counter_parity(unrouted_executor, EXECUTOR_COUNTERS)
    assert_counter_parity(evaluator, EVALUATOR_COUNTERS)
