"""Tests for the query executor and workload measurement (actual execution)."""

from __future__ import annotations

import pytest

from repro.executor.executor import QueryExecutor
from repro.executor.measurement import measure_workload
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_statement, normalize_workload


SELECTIVE = ('for $p in doc("x")/site/people/person '
             'where $p/@id = "p7" return $p/name')
RANGE = ('for $i in doc("x")/site/regions/africa/item '
         'where $i/quantity > 90 return $i/name')
ID_INDEX = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)
QUANTITY_INDEX = IndexDefinition.create("/site/regions/*/item/quantity",
                                        ValueType.DOUBLE)


@pytest.fixture
def executor(varied_database):
    executor = QueryExecutor(varied_database)
    yield executor
    executor.drop_all_indexes()


class TestScanExecution:
    def test_scan_examines_every_document(self, executor, varied_database):
        result = executor.execute(SELECTIVE)
        assert not result.used_index_plan
        assert result.documents_examined == varied_database.statistics.document_count
        assert result.result_count == 1  # exactly one document holds p7

    def test_range_query_result_count(self, executor, varied_database):
        result = executor.execute(RANGE)
        # Verify against a direct evaluation over all documents.
        from repro.xpath.evaluator import XPathEvaluator

        expected = 0
        for document in varied_database.collection("site"):
            evaluator = XPathEvaluator(document)
            if evaluator.evaluate_boolean("/site/regions/africa/item/quantity > 90"):
                expected += 1
        assert result.result_count == expected

    def test_update_statements_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.execute("delete node /site/people/person")


class TestIndexExecution:
    def test_index_plan_used_and_results_identical_to_scan(self, executor):
        scan_result = executor.execute(SELECTIVE)
        executor.create_indexes([ID_INDEX])
        indexed_result = executor.execute(SELECTIVE)
        assert indexed_result.used_index_plan
        assert indexed_result.result_count == scan_result.result_count
        assert indexed_result.documents_examined < scan_result.documents_examined
        assert indexed_result.index_entries_scanned > 0

    def test_general_index_also_produces_correct_results(self, executor):
        scan_result = executor.execute(RANGE)
        executor.create_indexes([QUANTITY_INDEX])
        indexed_result = executor.execute(RANGE)
        assert indexed_result.result_count == scan_result.result_count

    def test_conjunctive_query_intersects_indexes(self, executor):
        query = ('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 and $i/payment = "Creditcard" return $i/name')
        scan_result = executor.execute(query)
        executor.create_indexes([
            QUANTITY_INDEX,
            IndexDefinition.create("/site/regions/*/item/payment", ValueType.VARCHAR),
        ])
        indexed_result = executor.execute(query)
        assert indexed_result.result_count == scan_result.result_count

    def test_create_indexes_idempotent(self, executor):
        built_first = executor.create_indexes([ID_INDEX])
        built_again = executor.create_indexes([ID_INDEX])
        assert built_first and not built_again
        assert executor.materialized_index_count == 1

    def test_drop_all_indexes(self, executor, varied_database):
        executor.create_indexes([ID_INDEX])
        executor.drop_all_indexes()
        assert executor.materialized_index_count == 0
        assert varied_database.catalog.physical_indexes == []

    def test_execution_result_describe(self, executor):
        result = executor.execute(SELECTIVE)
        text = result.describe()
        assert "doc(s) examined" in text


class TestWorkloadMeasurement:
    def test_measure_with_and_without_configuration(self, varied_database):
        workload = Workload(name="m")
        workload.add(SELECTIVE, frequency=2.0)
        workload.add(RANGE, frequency=1.0)
        configuration = IndexConfiguration([ID_INDEX, QUANTITY_INDEX])
        measurements = measure_workload(varied_database, workload, configuration)
        assert set(measurements) == {"no-indexes", "recommended"}
        baseline = measurements["no-indexes"]
        indexed = measurements["recommended"]
        assert baseline.queries_using_indexes == 0
        assert indexed.queries_using_indexes >= 1
        assert indexed.documents_examined < baseline.documents_examined
        # Result counts must agree query by query.
        for base_row, indexed_row in zip(baseline.per_query, indexed.per_query):
            assert base_row.result_count == indexed_row.result_count
        # Catalog left clean.
        assert varied_database.catalog.physical_indexes == []

    def test_measure_without_configuration(self, varied_database):
        workload = Workload(name="m2")
        workload.add(SELECTIVE)
        measurements = measure_workload(varied_database, workload)
        assert set(measurements) == {"no-indexes"}

    def test_updates_skipped_in_measurement(self, varied_database):
        workload = Workload(name="m3")
        workload.add(SELECTIVE)
        workload.add("delete node /site/people/person")
        measurements = measure_workload(varied_database, workload)
        assert measurements["no-indexes"].query_count == 1

    def test_measurement_describe(self, varied_database):
        workload = Workload(name="m4")
        workload.add(SELECTIVE)
        measurement = measure_workload(varied_database, workload)["no-indexes"]
        assert "queries" in measurement.describe()

    def test_accepts_normalized_queries(self, varied_database):
        queries = [normalize_statement(SELECTIVE, query_id="nq1")]
        measurements = measure_workload(varied_database, queries)
        assert measurements["no-indexes"].query_count == 1
