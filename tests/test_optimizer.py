"""Unit tests for plan selection (the optimizer proper)."""

from __future__ import annotations

import pytest

from repro.index.definition import IndexDefinition
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import DocumentScan, IndexScan, QueryPlan
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_statement


@pytest.fixture
def optimizer(varied_database):
    return Optimizer(varied_database)


SELECTIVE_QUERY = ('for $p in doc("x")/site/people/person '
                   'where $p/@id = "p7" return $p/name')
RANGE_QUERY = ('for $i in doc("x")/site/regions/africa/item '
               'where $i/quantity > 90 return $i/name')


class TestPlanSelection:
    def test_no_indexes_means_document_scan(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        plan = optimizer.optimize(query, candidate_indexes=[])
        assert not plan.uses_indexes
        assert isinstance(plan.root, DocumentScan)
        assert plan.total_cost > 0

    def test_matching_index_is_used_when_cheaper(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        index = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[index])
        assert plan.uses_indexes
        assert index.key in {i.key for i in plan.used_indexes}
        scan_cost = optimizer.optimize(query, candidate_indexes=[]).total_cost
        assert plan.total_cost < scan_cost

    def test_incompatible_type_index_not_used(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        wrong_type = IndexDefinition.create("/site/people/person/@id", ValueType.DOUBLE)
        plan = optimizer.optimize(query, candidate_indexes=[wrong_type])
        assert not plan.uses_indexes

    def test_irrelevant_index_not_used(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        irrelevant = IndexDefinition.create("/site/regions/africa/item/price",
                                            ValueType.DOUBLE)
        plan = optimizer.optimize(query, candidate_indexes=[irrelevant])
        assert not plan.uses_indexes

    def test_exact_index_preferred_over_general(self, optimizer):
        query = normalize_statement(RANGE_QUERY)
        exact = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE, name="exact")
        general = IndexDefinition.create("//*", ValueType.DOUBLE, name="general")
        plan = optimizer.optimize(query, candidate_indexes=[general, exact])
        assert plan.uses_indexes
        assert "exact" in plan.used_index_names
        assert "general" not in plan.used_index_names

    def test_general_index_still_used_when_only_option(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        general = IndexDefinition.create("/site/people/person/@*", ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[general])
        assert plan.uses_indexes

    def test_multiple_predicates_can_and_indexes(self, optimizer):
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item '
            'where $i/quantity > 90 and $i/payment = "Creditcard" return $i/name')
        quantity_index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                                ValueType.DOUBLE)
        payment_index = IndexDefinition.create("/site/regions/africa/item/payment",
                                               ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[quantity_index, payment_index])
        assert plan.uses_indexes
        assert len(plan.used_indexes) >= 1

    def test_catalog_indexes_used_by_default(self, varied_database):
        index = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR,
                                       name="cat_idx")
        varied_database.catalog.add_index(index)
        try:
            optimizer = Optimizer(varied_database)
            plan = optimizer.optimize(normalize_statement(SELECTIVE_QUERY))
            assert "cat_idx" in plan.used_index_names
        finally:
            varied_database.catalog.drop_index("cat_idx")

    def test_query_without_predicates_scans(self, optimizer):
        query = normalize_statement("/site/people/person/name")
        index = IndexDefinition.create("/site/people/person/name", ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[index])
        assert isinstance(plan, QueryPlan)
        # Extraction-only queries have no indexable predicate: scan.
        assert not plan.uses_indexes


class TestPlanStructure:
    def test_plan_render_mentions_operators(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        index = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[index])
        rendering = plan.render()
        assert "XISCAN" in rendering
        assert "FETCH" in rendering
        assert "plan for" in rendering

    def test_matched_predicates_reported(self, optimizer):
        query = normalize_statement(SELECTIVE_QUERY)
        index = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)
        plan = optimizer.optimize(query, candidate_indexes=[index])
        matched = plan.matched_predicates()
        assert any(p.pattern.to_text() == "/site/people/person/@id" for p in matched)

    def test_document_scan_render(self, optimizer):
        plan = optimizer.optimize(normalize_statement("/site/people/person"),
                                  candidate_indexes=[])
        assert "XSCAN" in plan.render()


class TestUpdatePlanning:
    def test_update_plan_charges_affected_indexes(self, optimizer):
        update = normalize_statement(
            'replace value of node /site/regions/africa/item/quantity with "3"')
        affected = IndexDefinition.create("/site/regions/*/item/quantity",
                                          ValueType.DOUBLE)
        unaffected = IndexDefinition.create("/site/people/person/name",
                                            ValueType.VARCHAR)
        plan = optimizer.plan_update(update, candidate_indexes=[affected, unaffected])
        charged = {m.index.key for m in plan.maintenance_costs}
        assert affected.key in charged
        assert unaffected.key not in charged
        assert plan.total_cost > plan.base_cost
        assert "maintain" in plan.render()

    def test_update_through_optimize_wrapper(self, optimizer):
        update = normalize_statement("delete node /site/people/person")
        plan = optimizer.optimize(update, candidate_indexes=[])
        assert not plan.uses_indexes
        assert plan.total_cost > 0

    def test_more_indexes_cost_more_to_maintain(self, optimizer):
        update = normalize_statement("insert node <item/> into /site/regions/africa")
        few = optimizer.plan_update(update, candidate_indexes=[
            IndexDefinition.create("/site/regions/africa/item/quantity",
                                   ValueType.DOUBLE)])
        many = optimizer.plan_update(update, candidate_indexes=[
            IndexDefinition.create("/site/regions/africa/item/quantity", ValueType.DOUBLE),
            IndexDefinition.create("/site/regions/africa/item/price", ValueType.DOUBLE),
            IndexDefinition.create("/site/regions/africa/item/payment", ValueType.VARCHAR),
        ])
        assert many.total_cost > few.total_cost


class TestWorkloadCosting:
    def test_estimate_workload_cost_weighted_by_frequency(self, optimizer, tiny_workload):
        from repro.xquery.normalizer import normalize_workload

        queries = normalize_workload(tiny_workload)
        total = optimizer.estimate_workload_cost(queries, candidate_indexes=[])
        unweighted = sum(optimizer.optimize(q, candidate_indexes=[]).total_cost
                         for q in queries)
        assert total > unweighted  # frequencies are > 1 for some statements

    def test_cost_model_refreshes_with_statistics(self, tiny_database):
        optimizer = Optimizer(tiny_database)
        first_model = optimizer.cost_model
        tiny_database.add_document("site", "<site><regions/></site>")
        tiny_database.invalidate_statistics()
        second_model = optimizer.cost_model
        assert second_model is not first_model
