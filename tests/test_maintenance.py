"""Delta-propagation maintenance: equivalence and invalidation tests.

The core contract of :mod:`repro.storage.maintenance` is *byte
identity*: a collection whose derived state (path summary, statistics
synopsis, physical index entries) is maintained through per-document
deltas must be indistinguishable from one that tears everything down
and rebuilds on every change, for any interleaving of document adds and
removes.  The randomized tests drive both modes through identical
seeded op sequences on XMark/TPoX fragments and compare after every
operation.

The second half covers the invalidation layers above storage: the
executor's delta catch-up of materialized indexes (with the catalog's
per-index staleness marks and the journal-gap rebuild fallback), and
the optimizer's/evaluator's collection-scoped fine-grained invalidation
(state survives signature churn that leaves the synopsis intact).
"""

from __future__ import annotations

import random

import pytest

from _support import (
    EXECUTOR_COUNTERS,
    TINY_SITE_XML,
    assert_counter_parity,
    build_varied_database,
)
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.physical import build_physical_index
from repro.storage.document_store import XmlCollection, XmlDatabase
from repro.storage.maintenance import (
    DataChangeTracker,
    DeltaLog,
    compute_document_delta,
)
from repro.storage.statistics import StatisticsAccumulator
from repro.workloads.tpox import TpoxConfig, generate_tpox_database
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xmldb.parser import parse_document
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload


def _clone_documents(database: XmlDatabase, twin_name: str,
                     use_incremental_maintenance: bool) -> XmlDatabase:
    """A twin database with byte-identical trees (re-parsed from the
    serialized documents) in the other maintenance mode."""
    from repro.xmldb.serializer import serialize

    twin = XmlDatabase(
        twin_name, use_incremental_maintenance=use_incremental_maintenance)
    for collection in database.collections:
        twin_collection = twin.create_collection(collection.name)
        for document in collection:
            twin_collection.add_document(serialize(document))
    return twin


def _assert_equivalent(incremental: XmlCollection,
                       rebuilt: XmlCollection) -> None:
    assert incremental.path_summary.canonical_state() \
        == rebuilt.path_summary.canonical_state()
    assert incremental.statistics == rebuilt.statistics


class TestDocumentDelta:
    def test_groups_match_summary_build(self):
        document = parse_document(TINY_SITE_XML)
        document.doc_id = 0
        document.assign_node_ids()
        delta = compute_document_delta(document)
        assert delta.doc_key == 0
        assert "/site/regions/africa/item" in delta.path_groups
        assert "/site/regions/africa/item/@id" in delta.path_groups
        # One pass captures every element and attribute exactly once.
        assert delta.element_count == sum(
            len(nodes) for path, nodes in delta.path_groups.items()
            if "/@" not in path)
        assert delta.attribute_count == sum(
            len(nodes) for path, nodes in delta.path_groups.items()
            if "/@" in path)

    def test_delta_log_since_and_trim(self):
        collection = XmlCollection("c")
        for i in range(3):
            collection.add_document(f"<a><b>{i}</b></a>")
        assert collection.deltas_since(collection.version) == []
        deltas = collection.deltas_since(0)
        assert [d.version for d in deltas] == [1, 2, 3]
        assert all(d.is_add for d in deltas)

        log = DeltaLog(capacity=2)
        for delta in deltas:
            log.record(delta)
        assert log.since(0) is None  # trimmed past version 1
        assert [d.version for d in log.since(1)] == [2, 3]

    def test_discontinuity_breaks_catchup(self):
        collection = XmlCollection("c")
        collection.add_document("<a><b>1</b></a>")
        version = collection.version
        collection.invalidate_statistics()  # in-place-edit barrier
        assert collection.deltas_since(version) is None
        collection.add_document("<a><b>2</b></a>")
        assert collection.deltas_since(version) is None  # still bridged by the gap
        assert len(collection.deltas_since(collection.version - 1)) == 1


class TestSummaryDelta:
    def test_apply_delta_shares_untouched_paths(self):
        collection = XmlCollection("c")
        collection.add_document("<r><a>1</a></r>")
        collection.add_document("<r><b>2</b></r>")
        before = collection.path_summary
        collection.add_document("<r><a>3</a></r>")  # touches /r and /r/a only
        after = collection.path_summary
        assert after is not before  # snapshot replaced, not mutated
        assert after.doc_nodes_for_path("/r/b") is before.doc_nodes_for_path("/r/b")
        assert after.doc_nodes_for_path("/r/a") is not before.doc_nodes_for_path("/r/a")
        # The old snapshot still answers with its pre-change view.
        assert len(before.nodes_for_path("/r/a")) == 1
        assert len(after.nodes_for_path("/r/a")) == 2

    def test_remove_drops_emptied_paths(self):
        collection = XmlCollection("c")
        collection.add_document("<r><only>x</only></r>")
        collection.add_document("<r><a>1</a></r>")
        assert collection.path_summary.has_path("/r/only")
        collection.remove_document(0)
        summary = collection.path_summary
        assert not summary.has_path("/r/only")
        # Keys above the removed document slid down.
        assert list(summary.doc_nodes_for_path("/r/a")) == [0]

    def test_statistics_min_max_retraction(self):
        collection = XmlCollection("c")
        collection.add_document("<r><v>5</v></r>")
        collection.add_document("<r><v>100</v></r>")
        collection.add_document("<r><v>40</v></r>")
        stat = collection.statistics.path_stats["/r/v"]
        assert (stat.min_value, stat.max_value) == (5.0, 100.0)
        collection.remove_document(1)  # retract the max
        stat = collection.statistics.path_stats["/r/v"]
        assert (stat.min_value, stat.max_value) == (5.0, 40.0)
        collection.remove_document(0)  # retract the min
        stat = collection.statistics.path_stats["/r/v"]
        assert (stat.min_value, stat.max_value) == (40.0, 40.0)

    def test_accumulator_from_summary_roundtrip(self):
        collection = XmlCollection("c", use_incremental_maintenance=False)
        collection.add_document(TINY_SITE_XML)
        collection.add_document("<site><people><person id='p9'/></people></site>")
        accumulator = StatisticsAccumulator.from_summary(collection.path_summary)
        assert accumulator.snapshot() == collection.statistics


@pytest.mark.parametrize("workload_kind", ["xmark", "tpox"])
def test_randomized_interleaved_equivalence(workload_kind):
    """Interleaved add/remove sequences must keep the incrementally
    maintained summary, statistics and index entries byte-identical to
    the full-rebuild escape hatch, checked after *every* operation."""
    if workload_kind == "xmark":
        base = generate_xmark_database(XMarkConfig(scale=0.02, seed=11), "maint")
        donor = generate_xmark_database(XMarkConfig(scale=0.03, seed=77), "donor")
        collection_name = "xmark"
        index_defs = [
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
            IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE),
        ]
    else:
        base = generate_tpox_database(TpoxConfig(scale=0.02, seed=11), "maint")
        donor = generate_tpox_database(TpoxConfig(scale=0.03, seed=77), "donor")
        collection_name = "order"
        index_defs = [
            IndexDefinition.create("//Order/@ID", ValueType.VARCHAR),
        ]
    twin = _clone_documents(base, "maint-rebuild", use_incremental_maintenance=False)
    assert base.use_incremental_maintenance
    reserve = donor.collection(collection_name).documents

    from repro.xmldb.serializer import serialize

    incremental = base.collection(collection_name)
    rebuilt = twin.collection(collection_name)
    # Prime derived state so adds/removes go through the delta path.
    _assert_equivalent(incremental, rebuilt)
    indexes = [build_physical_index(d, base) for d in index_defs]

    rng = random.Random(1234)
    for step in range(14):
        if reserve and (len(incremental) < 2 or rng.random() < 0.6):
            document = reserve.pop()
            xml = serialize(document)
            incremental.add_document(xml)
            rebuilt.add_document(xml)
        else:
            victim = rng.randrange(len(incremental))
            incremental.remove_document(victim)
            rebuilt.remove_document(victim)
        for delta in incremental.deltas_since(incremental.version - 1):
            for index in indexes:
                index.apply_collection_delta(delta)
        _assert_equivalent(incremental, rebuilt)
        for definition, index in zip(index_defs, indexes):
            assert index.entries == build_physical_index(definition, twin).entries, \
                f"index diverged at step {step}"
    assert base.statistics == twin.statistics


def test_randomized_advisor_equivalence_across_changes():
    """After a random change sequence, a long-lived fine-grained
    evaluator must produce byte-identical benefits to a fresh legacy
    evaluator over the rebuilt twin."""
    base = generate_xmark_database(XMarkConfig(scale=0.02, seed=5), "adv")
    donor = generate_xmark_database(XMarkConfig(scale=0.03, seed=55), "adv-donor")
    queries = normalize_workload(xmark_query_workload(name="maint-adv"))
    evaluator = ConfigurationEvaluator(base, queries)  # fine-grained default
    configuration = IndexConfiguration([
        IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
        IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE),
        IndexDefinition.create("//item/payment", ValueType.VARCHAR),
    ])
    before = evaluator.evaluate(configuration)
    assert before.query_evaluations

    from repro.xmldb.serializer import serialize

    collection = base.collection("xmark")
    rng = random.Random(99)
    for document in donor.collection("xmark").documents[:5]:
        collection.add_document(serialize(document))
        if len(collection) > 3 and rng.random() < 0.4:
            collection.remove_document(rng.randrange(len(collection)))

    twin = _clone_documents(base, "adv-rebuild", use_incremental_maintenance=False)
    fresh = ConfigurationEvaluator(
        twin, queries, AdvisorParameters(use_incremental_maintenance=False,
                                         use_incremental=False))
    maintained = evaluator.evaluate(configuration)  # auto-refreshes
    reference = fresh.evaluate(configuration)
    assert maintained.total_benefit == reference.total_benefit
    assert maintained.total_size_bytes == reference.total_size_bytes
    by_id = {row.query_id: row for row in reference.query_evaluations}
    for row in maintained.query_evaluations:
        assert row.cost_without_indexes == by_id[row.query_id].cost_without_indexes
        assert row.cost_with_configuration == by_id[row.query_id].cost_with_configuration
        assert row.used_index_keys == by_id[row.query_id].used_index_keys


class TestExecutorMaintenance:
    def _database_with_executor(self):
        database = build_varied_database(documents=24, name="exec-maint")
        executor = QueryExecutor(database)
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        executor.create_indexes([definition])
        return database, executor, definition

    def test_catchup_uses_deltas_not_rebuilds(self):
        database, executor, definition = self._database_with_executor()
        query = "/site/regions/*/item[quantity > 90]"
        executor.execute(query)
        database.collection("site").add_document(TINY_SITE_XML)
        database.collection("site").remove_document(2)
        result = executor.execute(query)
        assert executor.index_rebuilds == 0
        assert executor.index_delta_maintenances == 1
        # The maintained structure equals a from-scratch build.
        maintained = executor._indexes[definition.key]
        assert maintained.entries == build_physical_index(definition, database).entries
        # And the executor agrees with a fresh legacy executor.
        legacy = QueryExecutor(database, use_incremental_maintenance=False)
        legacy.create_indexes([definition])
        assert legacy.execute(query).result_count == result.result_count
        # PR 10: maintenance counters are registry-backed views now.
        assert_counter_parity(executor, EXECUTOR_COUNTERS)
        assert_counter_parity(legacy, EXECUTOR_COUNTERS)

    def test_catalog_tracks_staleness(self):
        database, executor, definition = self._database_with_executor()
        name = definition.as_physical().name
        signature = database.data_signature()
        assert database.catalog.index_maintained_signature(name) == signature
        assert database.catalog.stale_physical_indexes(signature) == []
        database.collection("site").add_document(TINY_SITE_XML)
        current = database.data_signature()
        assert database.catalog.stale_physical_indexes(current) == [name]
        executor.execute("/site/regions/*/item[quantity > 90]")
        assert database.catalog.stale_physical_indexes(current) == []

    def test_journal_gap_falls_back_to_rebuild(self):
        database, executor, definition = self._database_with_executor()
        executor.execute("/site/regions/*/item[quantity > 90]")
        database.collection("site").invalidate_statistics()  # breaks the journal
        executor.execute("/site/regions/*/item[quantity > 90]")
        assert executor.index_rebuilds == 1
        assert executor.index_delta_maintenances == 0

    def test_legacy_flag_always_rebuilds(self):
        database = build_varied_database(documents=12, name="exec-legacy")
        executor = QueryExecutor(database, use_incremental_maintenance=False)
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        executor.create_indexes([definition])
        database.collection("site").add_document(TINY_SITE_XML)
        executor.execute("/site/regions/*/item[quantity > 90]")
        assert executor.index_rebuilds == 1
        assert executor.index_delta_maintenances == 0


class TestDeltaLogCapacity:
    def test_capacity_parameter_flows_to_collections(self):
        database = XmlDatabase("cap", delta_log_capacity=4)
        collection = database.create_collection("c")
        assert collection.delta_log_capacity == 4
        for i in range(6):
            collection.add_document(f"<a><b>{i}</b></a>")
        # Only the last 4 deltas are retained: a consumer at version 1
        # hits the trimmed history, a consumer at version 2 does not.
        assert collection.deltas_since(1) is None
        assert [d.version for d in collection.deltas_since(2)] == [3, 4, 5, 6]

    def test_standalone_collection_capacity(self):
        collection = XmlCollection("c", delta_log_capacity=2)
        for i in range(5):
            collection.add_document(f"<a><b>{i}</b></a>")
        assert collection.deltas_since(2) is None
        assert [d.version for d in collection.deltas_since(3)] == [4, 5]

    def test_larger_capacity_avoids_journal_gap_rebuild(self):
        """A consumer that falls behind by more deltas than the journal
        retains must rebuild; a larger configured capacity bridges the
        same gap through delta catch-up instead."""
        outcomes = {}
        for label, capacity in (("small", 8), ("large", 128)):
            database = XmlDatabase(f"cap-{label}", delta_log_capacity=capacity)
            collection = database.create_collection("site")
            collection.add_document(TINY_SITE_XML)
            executor = QueryExecutor(database)
            definition = IndexDefinition.create(
                "/site/regions/*/item/quantity", ValueType.DOUBLE)
            executor.create_indexes([definition])
            for _ in range(20):  # beyond the small journal's capacity
                collection.add_document(TINY_SITE_XML)
            executor.execute("/site/regions/*/item[quantity > 5]")
            outcomes[label] = (executor.index_rebuilds,
                               executor.index_delta_maintenances)
        assert outcomes["small"] == (1, 0)  # gap -> rebuild
        assert outcomes["large"] == (0, 1)  # journal bridged the gap


class TestSignatureMemoization:
    def test_signature_cached_until_change(self):
        database = build_varied_database(documents=6, name="sig")
        first = database.data_signature()
        assert database.data_signature() is first  # memoized object
        database.collection("site").add_document(TINY_SITE_XML)
        second = database.data_signature()
        assert second != first
        assert database.data_signature() is second

    def test_create_collection_invalidates(self):
        database = XmlDatabase("sig2")
        first = database.data_signature()
        database.create_collection("fresh")
        assert database.data_signature() != first

    def test_direct_collection_mutation_detected(self):
        database = XmlDatabase("sig3")
        collection = database.create_collection("c")
        before = database.data_signature()
        collection.add_document("<a/>")  # not via database.add_document
        assert database.data_signature() != before


class TestDataChangeTracker:
    def test_poll_reports_nothing_without_change(self):
        database = build_varied_database(documents=6, name="tracker-idle")
        tracker = DataChangeTracker(database)
        assert tracker.poll() is None

    def test_net_zero_batch_has_no_changed_paths(self):
        """Add-then-remove of the same document moves the signature but
        leaves the synopsis identical: the tracker must report the
        churn with an empty changed-path set and stable aggregates."""
        database = build_varied_database(documents=6, name="tracker-zero")
        tracker = DataChangeTracker(database)
        collection = database.collection("site")
        document = collection.add_document(TINY_SITE_XML)
        collection.remove_document(document.doc_id)
        change = tracker.poll()
        assert change is not None
        assert change.changed_collections == {"site"}
        assert change.changed_paths == frozenset()
        assert not change.aggregates_changed

    def test_document_add_changes_aggregates_and_paths(self):
        database = build_varied_database(documents=6, name="tracker-add")
        tracker = DataChangeTracker(database)
        database.collection("site").add_document("<site><zzz>1</zzz></site>")
        change = tracker.poll()
        assert change.aggregates_changed
        assert "/site/zzz" in change.changed_paths
        assert tracker.poll() is None  # absorbed


class TestFineGrainedInvalidation:
    def _workload(self):
        workload = Workload(name="fg")
        workload.add("/site/regions/africa/item[quantity > 5]", frequency=2.0)
        workload.add("/site/people/person[name = 'Alice']")
        return normalize_workload(workload)

    def test_runstats_churn_preserves_evaluator_state(self):
        """invalidate_statistics bumps every version but recollects an
        identical synopsis: fine-grained invalidation must keep every
        cached row, the legacy mode drops them all."""
        database = build_varied_database(documents=12, name="fg-runstats")
        queries = self._workload()
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        evaluator.evaluate(IndexConfiguration([index]))
        cached_rows = len(evaluator._query_cache)
        assert cached_rows
        database.runstats()  # signature moves, synopsis does not
        assert evaluator.refresh()  # change detected...
        assert len(evaluator._query_cache) == cached_rows  # ...nothing evicted
        assert evaluator.rows_preserved_on_refresh == cached_rows

    def test_runstats_churn_preserves_plan_cache(self):
        database = build_varied_database(documents=12, name="fg-plans")
        queries = self._workload()
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        evaluator.evaluate(IndexConfiguration([index]))
        optimizer = evaluator.optimizer
        plans_before = optimizer.plan_calls
        database.runstats()
        evaluator.evaluate(IndexConfiguration([index]))
        # Every what-if plan came from the preserved cache.
        assert optimizer.plan_calls == plans_before
        assert optimizer.plan_cache_evictions == 0

    def test_document_add_recosts_everything_exactly(self):
        """Aggregates moved: the guard must re-cost all queries -- and
        the result must equal a from-scratch legacy evaluator."""
        database = build_varied_database(documents=12, name="fg-add")
        queries = self._workload()
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        configuration = IndexConfiguration([index])
        evaluator.evaluate(configuration)
        database.collection("site").add_document(TINY_SITE_XML)
        maintained = evaluator.evaluate(configuration)
        reference = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_incremental_maintenance=False)
        ).evaluate(configuration)
        assert maintained.total_benefit == reference.total_benefit
        rows = {r.query_id: r for r in reference.query_evaluations}
        for row in maintained.query_evaluations:
            assert row.cost_with_configuration == \
                rows[row.query_id].cost_with_configuration

    def test_update_recosts_rows_staled_via_index_pattern_only(self):
        """Regression: an aggregate-neutral change can move the
        statistics of paths an index pattern matches without touching
        the query's own predicate pattern (here: byte-identical swaps
        widen the numeric range under ``//item/*`` through the *price*
        leaves while the quantity predicate's path is untouched).  The
        delta-update row-reuse gate must widen through the relevance
        map, or update() reuses a stale row and diverges from
        evaluate()."""
        def make_doc(d, price=None):
            items = "".join(
                f"<item><quantity>{(d * 13 + k * 7) % 100 + 10:03d}</quantity>"
                f"<price>{price or f'{(d * 17 + k * 29) % 90 + 10:02d}'}</price>"
                f"</item>" for k in range(5))
            return f"<site><region>{items}</region></site>"

        database = XmlDatabase("fg-idx-stale")
        collection = database.create_collection("c")
        for d in range(120):
            collection.add_document(make_doc(d))
        workload = Workload(name="w")
        workload.add("/site/region/item[quantity > 105]")
        queries = normalize_workload(workload)
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("//item/*", ValueType.DOUBLE)
        base = evaluator.evaluate(IndexConfiguration([index]))

        # Byte-neutral swaps: every doc keeps its quantities, prices
        # collapse to '05' (same width, new global //item/* minimum).
        for _ in range(len(collection)):
            quantities = [node.typed_value() for node in
                          collection.path_summary.nodes_for_path(
                              "/site/region/item/quantity", 0)]
            collection.remove_document(0)
            items = "".join(
                f"<item><quantity>{q}</quantity><price>05</price></item>"
                for q in quantities)
            collection.add_document(f"<site><region>{items}</region></site>")

        delta = evaluator.update(base)
        assert evaluator._last_stale == frozenset({"w-q1"})
        reference = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_incremental=False,
                              use_incremental_maintenance=False)
        ).evaluate(base.configuration)
        # The scenario is meaningful: the pre-change row is wrong now.
        assert base.query_evaluations[0].cost_with_configuration \
            != reference.query_evaluations[0].cost_with_configuration
        assert delta.total_benefit == reference.total_benefit
        assert delta.query_evaluations[0].cost_with_configuration \
            == reference.query_evaluations[0].cost_with_configuration

    def test_delta_update_across_change_matches_full(self):
        """update() against a base from the immediately preceding epoch
        re-costs only the staled rows -- and still matches evaluate()."""
        database = build_varied_database(documents=12, name="fg-update")
        queries = self._workload()
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        base = evaluator.evaluate(IndexConfiguration())
        database.runstats()  # epoch bump with an empty stale set
        delta = evaluator.update(base, add=[index])
        assert evaluator.delta_evaluations == 1  # not forced to full
        full = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_incremental_maintenance=False)
        ).evaluate(IndexConfiguration([index]))
        assert delta.total_benefit == pytest.approx(full.total_benefit)


class TestOrderedExtraction:
    def _database(self):
        return build_varied_database(documents=30, name="extract")

    def test_scan_extraction_is_document_ordered(self):
        database = self._database()
        executor = QueryExecutor(database)
        # Multi-path pattern: regions/*/item/name spans several distinct
        # paths, which the summary merges by node id.
        result = executor.execute("/site/regions/*/item/name", extract=True)
        assert result.extracted_count > 0
        nodes = result.extracted_nodes
        doc_of = {}
        for collection in database.collections:
            for document in collection:
                for node in document.descendants():
                    doc_of[id(node)] = document.doc_id
        last = (-1, -1)
        for node in nodes:
            key = (doc_of[id(node)], node.node_id)
            assert key > last, "extraction not in document order"
            last = key

    def test_extraction_matches_interpretive_order(self):
        database = self._database()
        summary_results = QueryExecutor(database).execute(
            "/site/regions/*/item/name", extract=True)
        legacy_results = QueryExecutor(database, use_path_summary=False).execute(
            "/site/regions/*/item/name", extract=True)
        assert [n.node_id for n in summary_results.extracted_nodes] \
            == [n.node_id for n in legacy_results.extracted_nodes]

    def test_index_plan_extraction_ordered(self):
        database = self._database()
        executor = QueryExecutor(database)
        definition = IndexDefinition.create("/site/regions/*/item/quantity",
                                            ValueType.DOUBLE)
        executor.create_indexes([definition])
        result = executor.execute("/site/regions/*/item[quantity > 90]",
                                  extract=True)
        assert result.used_index_plan
        assert result.extracted_count >= result.result_count
        scan = QueryExecutor(database, use_path_summary=True)
        scan.drop_all_indexes()
        reference = scan.execute("/site/regions/*/item[quantity > 90]",
                                 extract=True)
        assert not reference.used_index_plan
        assert [n.node_id for n in result.extracted_nodes] \
            == [n.node_id for n in reference.extracted_nodes]

    def test_execute_without_extract_keeps_result_lean(self):
        executor = QueryExecutor(self._database())
        result = executor.execute("/site/regions/*/item/name")
        assert result.extracted_nodes is None
        assert result.extracted_count == 0

    def test_index_plan_extraction_follows_collection_insertion_order(self):
        """Regression: with collections created in non-alphabetical
        order, index-plan extraction must emit documents in the same
        (collection insertion, doc id) order the scan path visits, not
        sorted by collection name."""
        def load(collection, seed):
            for d in range(30):
                items = "".join(
                    f"<item><quantity>{(seed + d * 13 + k * 7) % 100 + 1}"
                    f"</quantity><name>thing {d} {k}</name>"
                    f"<payment>Cash</payment><location>Egypt</location>"
                    f"</item>" for k in range(5))
                collection.add_document(f"<site><region>{items}</region></site>")

        database = XmlDatabase("order-extract")
        load(database.create_collection("zeta"), 3)
        load(database.create_collection("alpha"), 5)
        executor = QueryExecutor(database)
        definition = IndexDefinition.create("/site/region/item/quantity",
                                            ValueType.DOUBLE)
        executor.create_indexes([definition])
        query = "/site/region/item[quantity > 92]"
        indexed = executor.execute(query, extract=True)
        assert indexed.used_index_plan
        scan = QueryExecutor(database)
        scan.drop_all_indexes()
        reference = scan.execute(query, extract=True)
        assert not reference.used_index_plan
        assert indexed.extracted_nodes == reference.extracted_nodes
