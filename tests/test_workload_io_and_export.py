"""Tests for workload file I/O and JSON export of recommendations."""

from __future__ import annotations

import json

import pytest

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters
from repro.tools.cli import main
from repro.tools.export import (
    analysis_to_dict,
    index_to_dict,
    recommendation_to_dict,
    recommendation_to_json,
)
from repro.xquery.errors import WorkloadError
from repro.xquery.model import Workload
from repro.xquery.workload_io import (
    dump_workload_text,
    load_workload_file,
    parse_workload_text,
    save_workload_file,
)

SAMPLE_WORKLOAD_TEXT = """
-- A training workload for the advisor.
-- frequency: 5
for $i in doc("xmark.xml")/site/regions/namerica/item
where $i/quantity > 7 return $i/name;

-- frequency: 2.5
SELECT 1 FROM xmark
WHERE XMLEXISTS('$d/site/people/person[@id = "p1"]' PASSING doc AS "d");

delete node /site/regions/africa/item;

/site/people/person/name
"""


class TestWorkloadFileParsing:
    def test_statements_and_frequencies(self):
        workload = parse_workload_text(SAMPLE_WORKLOAD_TEXT, name="sample")
        assert len(workload) == 4
        assert workload[0].frequency == pytest.approx(5.0)
        assert workload[0].text.startswith("for $i")
        assert workload[1].frequency == pytest.approx(2.5)
        assert "XMLEXISTS" in workload[1].text
        assert workload[2].frequency == pytest.approx(1.0)
        assert workload[3].text == "/site/people/person/name"

    def test_comments_are_ignored(self):
        workload = parse_workload_text("-- just a comment\n/a/b;\n")
        assert len(workload) == 1

    def test_semicolon_on_its_own_line(self):
        workload = parse_workload_text("for $i in doc('x')/a\nreturn $i\n;\n/b/c;")
        assert len(workload) == 2

    def test_empty_file_raises(self):
        with pytest.raises(WorkloadError):
            parse_workload_text("-- nothing here\n\n")

    def test_round_trip_through_text(self):
        original = parse_workload_text(SAMPLE_WORKLOAD_TEXT, name="sample")
        dumped = dump_workload_text(original)
        reparsed = parse_workload_text(dumped, name="sample")
        assert len(reparsed) == len(original)
        assert [s.frequency for s in reparsed] == [s.frequency for s in original]
        assert [s.text.split()[0] for s in reparsed] == \
            [s.text.split()[0] for s in original]

    def test_save_and_load_file(self, tmp_path):
        workload = parse_workload_text(SAMPLE_WORKLOAD_TEXT)
        path = tmp_path / "workload.sql"
        save_workload_file(workload, path)
        loaded = load_workload_file(path)
        assert len(loaded) == len(workload)
        assert loaded.name == "workload"


@pytest.fixture(scope="module")
def export_recommendation(varied_database):
    workload = Workload(name="export")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=3.0)
    advisor = XmlIndexAdvisor(varied_database,
                              AdvisorParameters(disk_budget_bytes=32 * 1024))
    return advisor.recommend(workload)


class TestJsonExport:
    def test_recommendation_to_dict_structure(self, export_recommendation):
        payload = recommendation_to_dict(export_recommendation)
        assert payload["algorithm"] == "greedy-heuristic"
        assert payload["indexes"]
        for index in payload["indexes"]:
            assert set(index) >= {"name", "pattern", "value_type", "ddl"}
            assert index["ddl"].startswith("CREATE INDEX")
        assert payload["candidates"]["basic"] >= 2
        assert len(payload["queries"]) == 2
        assert payload["estimated_improvement_percent"] > 0

    def test_json_round_trips_through_stdlib(self, varied_database,
                                             export_recommendation):
        analysis = RecommendationAnalysis(varied_database, export_recommendation)
        text = recommendation_to_json(export_recommendation, analysis)
        parsed = json.loads(text)
        assert "recommendation" in parsed and "analysis" in parsed
        assert parsed["analysis"]["summary"]["improvement_recommended_pct"] > 0
        assert len(parsed["analysis"]["per_query"]) == 2

    def test_index_to_dict_size_optional(self, export_recommendation):
        definition = export_recommendation.configuration.definitions[0]
        without_size = index_to_dict(definition)
        assert "estimated_size_bytes" not in without_size
        with_size = index_to_dict(definition, size_bytes=123.4)
        assert with_size["estimated_size_bytes"] == pytest.approx(123.4)

    def test_analysis_to_dict(self, varied_database, export_recommendation):
        analysis = RecommendationAnalysis(varied_database, export_recommendation)
        payload = analysis_to_dict(analysis)
        assert set(payload) == {"summary", "per_query"}
        assert all(row["cost_no_indexes"] >= row["cost_recommended"]
                   for row in payload["per_query"])


class TestCliIntegrationWithFiles:
    def test_recommend_with_workload_file_and_json_out(self, tmp_path, capsys):
        workload_path = tmp_path / "wl.sql"
        workload_path.write_text(
            "-- frequency: 3\n"
            'for $i in doc("xmark.xml")/site/regions/namerica/item '
            "where $i/quantity > 7 return $i/name;\n")
        json_path = tmp_path / "rec.json"
        code = main(["recommend", "--scenario", "xmark-small",
                     "--workload-file", str(workload_path),
                     "--budget-kb", "64", "--json-out", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "CREATE INDEX" in out
        payload = json.loads(json_path.read_text())
        assert payload["recommendation"]["indexes"]
