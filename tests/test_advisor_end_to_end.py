"""End-to-end tests of the XmlIndexAdvisor pipeline (Figure 1)."""

from __future__ import annotations

import pytest

from repro.advisor.advisor import Recommendation, XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.index.definition import IndexDefinition
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload


@pytest.fixture(scope="module")
def training_workload():
    workload = Workload(name="train")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=3.0)
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/quantity > 95 return $i/name', frequency=2.0)
    workload.add('for $i in doc("x")/site/regions/asia/item '
                 'where $i/price > 480 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=4.0)
    workload.add('SELECT 1 FROM site WHERE XMLEXISTS('
                 '\'$d/site/people/person[profile/@income > 200000]\' '
                 'PASSING doc AS "d")', frequency=1.0)
    return workload


@pytest.fixture(scope="module")
def recommendation(varied_database, training_workload):
    advisor = XmlIndexAdvisor(varied_database,
                              AdvisorParameters(disk_budget_bytes=64 * 1024))
    return advisor.recommend(training_workload)


class TestRecommendPipeline:
    def test_recommendation_structure(self, recommendation):
        assert isinstance(recommendation, Recommendation)
        assert len(recommendation.configuration) > 0
        assert recommendation.total_benefit > 0
        assert recommendation.total_size_bytes > 0
        assert recommendation.dag.node_count >= len(recommendation.candidates.basic_candidates)

    def test_all_phases_timed(self, recommendation):
        assert {"normalize", "enumerate", "generalize", "search"} <= set(
            recommendation.phase_seconds)

    def test_budget_respected(self, recommendation):
        assert recommendation.total_size_bytes <= 64 * 1024 + 1e-6

    def test_improvement_positive(self, recommendation):
        assert 0.0 < recommendation.improvement_percent() <= 100.0

    def test_recommended_indexes_cover_selective_predicates(self, recommendation):
        patterns = {d.pattern.to_text() for d in recommendation.configuration}
        covered = set()
        for pattern_text in patterns:
            covered.add(pattern_text)
        # The person @id lookup is the most frequent query: some index
        # covering that path must be recommended.
        assert any("person" in p and "@id" in p or p.endswith("@*") or p == "//*"
                   for p in patterns)

    def test_ddl_statements_generated(self, recommendation):
        ddl = recommendation.ddl_statements()
        assert len(ddl) == len(recommendation.configuration)
        assert all(statement.startswith("CREATE INDEX") for statement in ddl)
        assert all("XMLPATTERN" in statement for statement in ddl)

    def test_describe_mentions_size_and_algorithm(self, recommendation):
        text = recommendation.describe()
        assert "index(es)" in text and "KiB" in text

    def test_queries_are_kept_for_analysis(self, recommendation, training_workload):
        assert len(recommendation.queries) == len(training_workload)


class TestAlgorithmsAndParameters:
    def test_all_algorithms_produce_valid_recommendations(self, varied_database,
                                                          training_workload):
        budget = 32 * 1024.0
        benefits = {}
        for algorithm in SearchAlgorithm:
            advisor = XmlIndexAdvisor(varied_database,
                                      AdvisorParameters(disk_budget_bytes=budget,
                                                        search_algorithm=algorithm))
            recommendation = advisor.recommend(training_workload)
            assert recommendation.total_size_bytes <= budget + 1e-6
            assert recommendation.total_benefit >= 0.0
            benefits[algorithm] = recommendation.total_benefit
        # The paper's heuristic greedy should not lose to plain greedy.
        assert benefits[SearchAlgorithm.GREEDY_HEURISTIC] >= \
            benefits[SearchAlgorithm.GREEDY] - 1e-6

    def test_algorithm_override_at_recommend_time(self, varied_database,
                                                  training_workload):
        advisor = XmlIndexAdvisor(varied_database, AdvisorParameters())
        recommendation = advisor.recommend(training_workload,
                                           algorithm=SearchAlgorithm.TOP_DOWN)
        assert recommendation.search_result.algorithm is SearchAlgorithm.TOP_DOWN

    def test_unlimited_budget(self, varied_database, training_workload):
        advisor = XmlIndexAdvisor(varied_database,
                                  AdvisorParameters(disk_budget_bytes=None))
        recommendation = advisor.recommend(training_workload)
        assert recommendation.total_benefit > 0

    def test_invalid_parameters_rejected(self, varied_database):
        with pytest.raises(ValueError):
            XmlIndexAdvisor(varied_database,
                            AdvisorParameters(disk_budget_bytes=-5.0))
        with pytest.raises(ValueError):
            XmlIndexAdvisor(varied_database,
                            AdvisorParameters(generalization_rounds=-1))

    def test_workload_as_plain_strings(self, varied_database):
        advisor = XmlIndexAdvisor(varied_database,
                                  AdvisorParameters(disk_budget_bytes=32 * 1024))
        recommendation = advisor.recommend([
            'for $p in doc("x")/site/people/person where $p/@id = "p3" return $p/name'])
        assert len(recommendation.queries) == 1

    def test_update_heavy_workload_gets_smaller_recommendation(self, varied_database):
        read_workload = Workload(name="reads")
        read_workload.add('for $i in doc("x")/site/regions/africa/item '
                          'where $i/quantity > 90 return $i/name', frequency=3.0)
        mixed_workload = Workload(name="mixed")
        mixed_workload.add('for $i in doc("x")/site/regions/africa/item '
                           'where $i/quantity > 90 return $i/name', frequency=3.0)
        mixed_workload.add('replace value of node /site/regions/africa/item/quantity '
                           'with "1"', frequency=200.0)
        advisor = XmlIndexAdvisor(varied_database, AdvisorParameters())
        read_rec = advisor.recommend(read_workload)
        mixed_rec = advisor.recommend(mixed_workload)
        assert read_rec.total_benefit > mixed_rec.total_benefit
        # With overwhelming update cost the advisor should recommend nothing
        # (or at least strictly less).
        assert len(mixed_rec.configuration) <= len(read_rec.configuration)


class TestCreateRecommendedIndexes:
    def test_definitions_added_to_catalog_as_physical(self, varied_database,
                                                      training_workload):
        advisor = XmlIndexAdvisor(varied_database,
                                  AdvisorParameters(disk_budget_bytes=32 * 1024))
        recommendation = advisor.recommend(training_workload)
        created = advisor.create_recommended_indexes(recommendation)
        try:
            assert created
            assert all(not index.is_virtual for index in created)
            for index in created:
                assert varied_database.catalog.has_index(index.name)
            # Creating again is a no-op.
            assert advisor.create_recommended_indexes(recommendation) == []
        finally:
            for index in created:
                varied_database.catalog.drop_index(index.name)
