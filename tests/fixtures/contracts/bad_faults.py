"""Seeded violations for the fault-coverage checker.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input.
"""

from repro.faults import guarded_fault_point
from repro.contracts import injection_site

FIXTURE_WIRED = injection_site("fixture.wired", "consulted below")
FIXTURE_ORPHAN = injection_site("fixture.orphan")  # line 11: never consulted


class FixtureCatalogUser:
    def covered_mutation(self, catalog, definition) -> None:
        guarded_fault_point("fixture.wired")
        catalog.add_index(definition)

    def uncovered_mutation(self, catalog, name) -> None:
        catalog.drop_index(name)  # line 20: no fault point in function

    def typo_consult(self) -> None:
        guarded_fault_point("fixture.wried")  # line 23: unregistered site
