"""Seeded violations for the snapshot-immutability checker.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input.
"""

from repro.contracts import builder, snapshot_contract


@snapshot_contract(builders=("rebuild",), mutators=("rebuild",),
                   memo_attrs=("_memo",))
class FrozenThing:
    def __init__(self) -> None:
        self.value = 0
        self.items = []  # type: list
        self._memo = None

    def rebuild(self) -> "FrozenThing":
        self.value += 1  # allowed: declared builder
        return self

    def touch(self) -> None:
        self.value = 5  # line 23: VIOLATION - write outside a builder
        self._memo = "cached"  # allowed: memo attribute

    def read(self) -> int:
        return self.value


def mutate_outside() -> FrozenThing:
    thing = FrozenThing()
    thing.value = 9  # line 32: VIOLATION - attribute write
    thing.items.append(1)  # line 33: VIOLATION - container mutation
    thing.rebuild()  # line 34: VIOLATION - mutator call outside build phase
    del thing.items  # line 35: VIOLATION - attribute delete
    return thing


def annotated(thing: FrozenThing) -> None:
    thing.value += 1  # line 40: VIOLATION - augmented write via annotation


@builder
def sanctioned_build() -> FrozenThing:
    thing = FrozenThing()
    thing.value = 3  # allowed: registered builder function
    return thing


def suppressed() -> FrozenThing:
    thing = FrozenThing()
    thing.value = 1  # contract: allow[snapshot-immutability]
    return thing
