"""Seeded violations for the determinism checker.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input.  The module
registers itself as a deterministic scope so the checker engages.
"""

import random
import time
from datetime import datetime
from typing import List, Set

from repro.contracts import deterministic_package

deterministic_package("bad_determinism")


def stamp() -> float:
    return time.time()  # line 19: VIOLATION - wall clock


def label() -> str:
    return datetime.now().isoformat()  # line 23: VIOLATION - wall clock


def pick(options):
    return random.choice(options)  # line 27: VIOLATION - unseeded randomness


def emit(keys: Set[str]) -> List[str]:
    out = []  # type: List[str]
    for key in keys:  # line 32: VIOLATION - unsorted set iteration
        out.append(key)
    others = {1, 2, 3}
    return out + [str(item) for item in list(others)]  # line 35: VIOLATION


def clean(keys: Set[str]) -> List[str]:
    rng = random.Random(7)  # allowed: seeded generator
    ordered = [key for key in sorted(keys)]  # allowed: sorted first
    rng.shuffle(ordered)
    return ordered
