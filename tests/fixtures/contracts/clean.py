"""A fixture that uses every governed construct correctly.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py``, which asserts zero diagnostics.
"""

from typing import List, Set

from repro.contracts import builder, cache_contract, deterministic_package, \
    snapshot_contract

deterministic_package("clean")


@snapshot_contract(builders=("merge",), mutators=("merge",),
                   memo_attrs=("_size",))
class GoodSnapshot:
    def __init__(self) -> None:
        self.count = 0
        self._size = None

    def merge(self, other: "GoodSnapshot") -> "GoodSnapshot":
        self.count += other.count  # allowed: declared builder
        return self

    def size(self) -> int:
        if self._size is None:
            self._size = self.count  # allowed: memo attribute
        return self._size


@builder
def build_snapshot(counts) -> GoodSnapshot:
    merged = GoodSnapshot()
    for count in counts:
        item = GoodSnapshot()
        item.count = count  # allowed: inside a registered builder
        merged.merge(item)  # allowed: mutator call in a build phase
    return merged


@cache_contract(memos={
    "_derived": {"policy": "revalidate", "revalidators": ("_refresh",)},
})
class GoodCache:
    def __init__(self, source) -> None:
        self.source = source
        self._token = None
        self._derived = None

    def _refresh(self) -> None:
        token = len(self.source)
        if token != self._token:
            self._token = token
            self._derived = sum(self.source)

    def total(self):
        self._refresh()
        return self._derived  # allowed: revalidated entry point


def ordered_emit(keys: Set[str]) -> List[str]:
    return [key for key in sorted(keys)]  # allowed: deterministic order
