"""Seeded violations for the escape-hatch checker.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input (with an empty
tests directory, so every fixture flag also counts as untested).
"""

from repro.contracts import escape_hatch

escape_hatch("use_fixture_fast_path")  # branched live, but untested
escape_hatch("use_fixture_dead")  # line 11: only guards dead code
escape_hatch("use_fixture_never")  # line 12: never branched on


class Engine:
    def __init__(self, use_fixture_fast_path: bool = True,
                 use_fixture_dead: bool = True) -> None:
        self.use_fixture_fast_path = use_fixture_fast_path
        self.use_fixture_dead = use_fixture_dead

    def run(self, items):
        if self.use_fixture_fast_path:
            return sorted(items)
        return list(items)

    def dead(self) -> None:
        if self.use_fixture_dead:
            pass
        return None
