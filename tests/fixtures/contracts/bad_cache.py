"""Seeded violations for the cache-invalidation checker.

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input.
"""

from repro.contracts import cache_contract


@cache_contract(memos={
    "_memo": {"policy": "revalidate", "revalidators": ("_revalidate",)},
    "_pushed": {"policy": "push",
                "readers": ("read_pushed",),
                "refreshers": ("_on_change",)},
    "_keyed": {"policy": "object-keyed"},
})
class Cached:
    def __init__(self) -> None:
        self._memo = None
        self._pushed = {}  # type: dict
        self._keyed = {}  # type: dict

    def _revalidate(self) -> None:
        self._memo = None

    def good_entry(self):
        self._revalidate()
        return self._memo  # allowed: directly revalidated

    def bad_entry(self):
        return self._memo  # line 31: VIOLATION - unrevalidated read path

    def indirect_bad(self):
        return self._helper()

    def _helper(self):
        return self._memo  # line 37: VIOLATION - reached from indirect_bad()

    def read_pushed(self):
        return self._pushed  # allowed: declared reader

    def _on_change(self) -> None:
        self._pushed.clear()  # allowed: declared refresher

    def stray_writer(self) -> None:
        self._pushed["k"] = 1  # line 46: VIOLATION - not a reader/refresher

    def keyed_anywhere(self):
        return self._keyed  # allowed: object-keyed policy
