"""Seeded violations for the telemetry checker (a fixture package).

Not collected by pytest (no ``test_`` prefix); analyzed by
``tests/test_contract_analysis.py`` as a golden input.  The package
declares its own observe-only plane (``bad_telemetry.plane``) and
audited wall-clock module (``bad_telemetry.clock``) so the telemetry
checker and the determinism checker's wall-clock confinement pass
engage on the fixture alone -- the violations live in ``plane.py``
(import direction) and ``engine.py`` (everything else).
"""
