"""The fixture's audited wall-clock module -- no violations here.

Declaring ``wall_clock_module`` puts every *other* module under the
``bad_telemetry`` tree into the wall-clock confinement scope: direct
``time.*`` reads there are determinism violations (see ``engine.py``),
while this module may touch ``time`` freely.
"""

import time

from repro.contracts import wall_clock_module

wall_clock_module("bad_telemetry.clock")

wall_clock = time.perf_counter  # allowed: the declared clock module
