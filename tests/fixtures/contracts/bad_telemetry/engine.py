"""Governed-side telemetry violations: bounds, recording args, writes.

These rules apply *outside* the observe-only plane too: histogram
bounds must be literal everywhere, recording arguments may not call
governed mutators, telemetry state reached through a component may not
be reassigned, and wall-clock reads must route through the declared
clock module.
"""

import time

from repro.contracts import snapshot_contract

STATE = 1
#: A module-level literal constant -- an allowed histogram bound form.
LATENCY_BOUNDS = [0.001, 0.01, 0.1]


@snapshot_contract(builders=("rebuild",), mutators=("rebuild", "refresh"))
class CatalogState:
    def __init__(self) -> None:
        self.version = 0

    def rebuild(self) -> "CatalogState":
        self.version += 1  # allowed: declared builder
        return self

    def refresh(self) -> int:
        return self.version


def bad_bounds(metrics, samples):
    bounds = sorted(samples)
    return metrics.histogram("engine.latency", bounds)  # line 34: VIOLATION - data-dependent bounds


def bad_recording_arg(metrics, state):
    metrics.counter("engine.refreshes").inc(state.refresh())  # line 38: VIOLATION - mutator in arg


def bad_passthrough_writes(executor):
    executor.metrics.latency.value = 0  # line 42: VIOLATION - reshaping telemetry state
    executor.metrics.counter("engine.calls").value += 1  # line 43: VIOLATION - augmented write


def bad_wall_clock():
    return time.perf_counter()  # line 47: VIOLATION - clock read outside the audited module


def clean(metrics):
    metrics.histogram("engine.ticks", [1, 2, 5])  # allowed: inline literal bounds
    metrics.histogram("engine.waits", LATENCY_BOUNDS)  # allowed: module constant
    metrics.counter("engine.calls").inc()  # allowed: pure recording
    metrics.counter("engine.rows").inc(len(STATE * [0]))  # allowed: non-governed arg
    from bad_telemetry.clock import wall_clock
    return wall_clock()  # allowed: routed through the audited module
