"""The fixture's observe-only telemetry plane: one import violation.

A module inside an observe-only package may import the standard
library, its own package and ``<top>.contracts`` -- importing any other
module from the same tree means telemetry can name (and therefore
consult or mutate) governed code.
"""

from repro.contracts import observe_only_package

observe_only_package("bad_telemetry.plane")

from bad_telemetry import engine  # line 13: VIOLATION - governed import


def snoop() -> int:
    return engine.STATE
