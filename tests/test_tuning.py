"""Tests for the online tuning subsystem (PR 5).

Covers the four layers -- monitor, compressor, drift detector, and the
controller loop -- plus the acceptance criteria: on a stationary
workload the online loop's configuration is byte-identical to the
offline advisor run on the same queries; after an injected workload
shift the controller detects drift and migrates; and the compressed
advisor input stays at or below the cluster cap as captured volume
grows 10x.
"""

from __future__ import annotations

import pytest

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexDefinition
from repro.storage.catalog import ConfigurationProvenance
from repro.tuning import (
    TuningController,
    TuningPolicy,
    WorkloadMonitor,
    compress_snapshot,
)
from repro.tuning.drift import DriftDetector, workload_distance
from repro.tuning.monitor import template_key
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
    xmark_unseen_queries,
)
from repro.xmldb import parse_document
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_statement, normalize_workload

from _support import TINY_SITE_XML


SCALE = 0.04
BUDGET = 96 * 1024.0


@pytest.fixture(scope="module")
def online_database():
    return generate_xmark_database(XMarkConfig(scale=SCALE, seed=11))


@pytest.fixture(scope="module")
def train_queries():
    return normalize_workload(xmark_query_workload(name="tune-train"))


@pytest.fixture(scope="module")
def shift_queries():
    return normalize_workload(xmark_unseen_queries(name="tune-shift"))


def _query(text: str, query_id: str = "q"):
    return normalize_statement(text, query_id=query_id)


def _adhoc(region: str, field: str, literal: int, query_id: str):
    return _query(
        f'for $i in doc("x.xml")/site/regions/{region}/item '
        f'where $i/{field} > {literal} return $i/name', query_id)


# ======================================================================
# Monitor
# ======================================================================
class TestWorkloadMonitor:
    def test_template_aggregation_ignores_query_ids(self):
        monitor = WorkloadMonitor()
        text = ('for $i in doc("x.xml")/site/regions/africa/item '
                'where $i/quantity > 5 return $i/name')
        first = monitor.record(_query(text, "a"))
        second = monitor.record(_query(text, "b"))
        # Entries are immutable: both arrivals land on one template key,
        # and the second record returns the accumulated entry.
        assert first.key == second.key
        assert len(monitor) == 1
        assert second.weight == pytest.approx(2.0)
        assert second.arrivals == 2

    def test_template_key_distinguishes_literals_and_paths(self):
        q1 = _adhoc("africa", "quantity", 5, "a")
        q2 = _adhoc("africa", "quantity", 6, "b")
        q3 = _adhoc("asia", "quantity", 5, "c")
        keys = {template_key(q) for q in (q1, q2, q3)}
        assert len(keys) == 3

    def test_decay_is_step_based_and_deterministic(self):
        monitor = WorkloadMonitor(decay=0.5)
        query = _adhoc("africa", "quantity", 5, "a")
        monitor.record(query)
        monitor.tick(2)
        entry = monitor.record(query)
        # 1.0 decayed over two steps (0.25) plus the fresh arrival.
        assert entry.weight == pytest.approx(1.25)
        # Snapshot decays forward without mutating the store.
        monitor.tick()
        snapshot = monitor.snapshot()
        assert snapshot.entries[0].weight == pytest.approx(0.625)
        assert monitor.snapshot().entries[0].weight == pytest.approx(0.625)

    def test_frequency_weighted_increments(self):
        from dataclasses import replace

        monitor = WorkloadMonitor()
        weighted = replace(_adhoc("africa", "quantity", 5, "a"),
                           frequency=4.0)
        monitor.record(weighted)
        assert monitor.snapshot().entries[0].weight == pytest.approx(4.0)

    def test_capacity_bound_evicts_lowest_weight(self):
        monitor = WorkloadMonitor(capacity=2)
        heavy = _adhoc("africa", "quantity", 1, "a")
        monitor.record(heavy)
        monitor.record(heavy)
        monitor.record(_adhoc("asia", "quantity", 2, "b"))
        monitor.record(_adhoc("europe", "quantity", 3, "c"))
        assert len(monitor) == 2
        assert monitor.shed_weight == pytest.approx(1.0)
        keys = {entry.key for entry in monitor.snapshot().entries}
        assert template_key(heavy) in keys

    def test_newly_hot_template_survives_a_full_store(self):
        """A template arriving into a full store must be able to
        accumulate weight (the eviction picks a resident, not the
        newcomer), or a complete workload shift would stay invisible."""
        monitor = WorkloadMonitor(capacity=2, decay=1.0)
        for _ in range(3):
            monitor.record(_adhoc("africa", "quantity", 1, "a"))
            monitor.record(_adhoc("asia", "quantity", 2, "b"))
        newcomer = _adhoc("europe", "quantity", 3, "c")
        for _ in range(4):
            monitor.record(newcomer)
        entry = next(e for e in monitor.snapshot().entries
                     if e.key == template_key(newcomer))
        assert entry.weight == pytest.approx(4.0)

    def test_snapshot_prunes_below_weight_floor(self):
        monitor = WorkloadMonitor(decay=0.5)
        stale = _adhoc("africa", "quantity", 1, "a")
        monitor.record(stale)
        monitor.tick(10)  # decays to ~0.001
        fresh = _adhoc("asia", "quantity", 2, "b")
        for _ in range(5):
            monitor.record(fresh)
        snapshot = monitor.snapshot(min_weight_fraction=0.01)
        assert [entry.key for entry in snapshot.entries] == \
            [template_key(fresh)]
        assert snapshot.shed_weight > 0
        # Pruning is per snapshot, not a store mutation: repeated
        # snapshots report the same shed weight (no double counting)
        # and the store still holds both templates.
        again = monitor.snapshot(min_weight_fraction=0.01)
        assert again.shed_weight == pytest.approx(snapshot.shed_weight)
        assert monitor.shed_weight == 0.0
        assert len(monitor) == 2

    def test_snapshot_orders_by_weight_then_key(self):
        monitor = WorkloadMonitor()
        a, b = _adhoc("africa", "quantity", 1, "a"), \
            _adhoc("asia", "quantity", 2, "b")
        monitor.record(b)
        monitor.record(a)
        monitor.record(a)
        snapshot = monitor.snapshot()
        assert [e.key for e in snapshot.entries] == \
            [template_key(a), template_key(b)]

    def test_executor_capture_hook_records_cost_proxy(self, online_database,
                                                      train_queries):
        monitor = WorkloadMonitor()
        executor = QueryExecutor(online_database, monitor=monitor)
        executor.execute(train_queries[0])
        assert monitor.recorded == 1
        entry = monitor.snapshot().entries[0]
        assert entry.cost_proxy is not None and entry.cost_proxy > 0
        executor.attach_monitor(None)
        executor.execute(train_queries[0])
        assert monitor.recorded == 1  # detached


# ======================================================================
# Compressor
# ======================================================================
class TestCompressor:
    def test_identity_at_or_below_cap(self):
        monitor = WorkloadMonitor()
        for i, region in enumerate(("africa", "asia", "europe")):
            monitor.record(_adhoc(region, "quantity", 5, f"q{i}"))
        compressed = compress_snapshot(monitor.snapshot(), cluster_cap=3)
        assert len(compressed.clusters) == 3
        assert all(cluster.member_count == 1
                   for cluster in compressed.clusters)
        assert compressed.truncated_weight == 0.0
        # Weights become the representative queries' frequencies.
        assert all(cluster.query.frequency == pytest.approx(cluster.weight)
                   for cluster in compressed.clusters)

    def test_literal_folding_above_cap(self):
        monitor = WorkloadMonitor()
        for literal in range(10):
            monitor.record(_adhoc("africa", "quantity", literal, f"q{literal}"))
        monitor.record(_adhoc("asia", "price", 3, "other"))
        compressed = compress_snapshot(monitor.snapshot(), cluster_cap=4)
        assert len(compressed.clusters) == 2
        folded = max(compressed.clusters, key=lambda c: c.weight)
        assert folded.member_count == 10
        assert folded.weight == pytest.approx(10.0)

    def test_containment_clustering_reaches_cap(self):
        monitor = WorkloadMonitor()
        regions = ("africa", "asia", "australia", "europe", "namerica",
                   "samerica")
        for i, region in enumerate(regions):
            for field in ("quantity", "price"):
                monitor.record(_adhoc(region, field, i, f"{region}-{field}"))
        snapshot = monitor.snapshot()
        assert len(snapshot.entries) == 12
        compressed = compress_snapshot(snapshot, cluster_cap=4)
        assert len(compressed.clusters) == 4
        assert compressed.truncated_weight == 0.0
        # No captured weight was lost: the clusters partition it.
        assert compressed.total_weight == pytest.approx(
            snapshot.total_weight)
        assert sum(c.member_count for c in compressed.clusters) == 12

    def test_unmergeable_shapes_truncate_with_accounting(self):
        monitor = WorkloadMonitor()
        # Different operators and value types cannot align, so these
        # three shapes are provably uncluster-able.
        texts = [
            'for $p in doc("x")/site/people/person '
            'where $p/@id = "person0" return $p/name',
            'for $a in doc("x")/site/open_auctions/open_auction '
            'where $a/current > 10 return $a/itemref',
            'for $p in doc("x")/site/people/person '
            'where $p/profile/age >= 30 return $p/name',
        ]
        for i, text in enumerate(texts):
            for _ in range(3 - i):
                monitor.record(_query(text, f"q{i}"))
        compressed = compress_snapshot(monitor.snapshot(), cluster_cap=2)
        assert len(compressed.clusters) == 2
        assert compressed.truncated_weight == pytest.approx(1.0)
        # Highest-weight shapes survive.
        assert [c.weight for c in compressed.clusters] == [3.0, 2.0]

    def test_bounded_as_volume_grows_10x(self):
        """Acceptance: the compressed advisor input stays at or below
        the cluster cap while captured volume grows 10x."""
        cap = 8

        def flood(volume: int):
            monitor = WorkloadMonitor()
            regions = ("africa", "asia", "australia", "europe",
                       "namerica", "samerica")
            for i in range(volume):
                monitor.record(_adhoc(regions[i % 6],
                                      ("quantity", "price")[(i // 6) % 2],
                                      i % 89, f"q{i}"))
            snapshot = monitor.snapshot()
            return snapshot, compress_snapshot(snapshot, cap)

        snapshot_1x, compressed_1x = flood(50)
        snapshot_10x, compressed_10x = flood(500)
        assert len(snapshot_10x.entries) > len(snapshot_1x.entries)
        assert len(compressed_1x.clusters) <= cap
        assert len(compressed_10x.clusters) <= cap


# ======================================================================
# Drift
# ======================================================================
class TestDrift:
    def test_workload_distance_extremes(self):
        monitor = WorkloadMonitor()
        empty = monitor.snapshot()
        assert workload_distance(empty, None) == 0.0
        monitor.record(_adhoc("africa", "quantity", 1, "a"))
        snapshot = monitor.snapshot()
        assert workload_distance(snapshot, None) == 1.0
        assert workload_distance(snapshot, snapshot) == 0.0
        other = WorkloadMonitor()
        other.record(_adhoc("asia", "price", 2, "b"))
        assert workload_distance(snapshot, other.snapshot()) == \
            pytest.approx(1.0)

    def test_workload_distance_is_distribution_based(self):
        """Uniformly scaled traffic (more volume, same mix) is zero
        drift -- only the mix matters."""
        base = WorkloadMonitor()
        scaled = WorkloadMonitor()
        for count, monitor in ((1, base), (5, scaled)):
            for _ in range(count):
                monitor.record(_adhoc("africa", "quantity", 1, "a"))
                monitor.record(_adhoc("asia", "price", 2, "b"))
        assert workload_distance(scaled.snapshot(), base.snapshot()) == \
            pytest.approx(0.0)

    def test_data_drift_accumulates_and_rebases(self, tiny_database):
        detector = DriftDetector(tiny_database)
        assert detector.data_drift() == 0.0
        tiny_database.collection("site").add_document(
            parse_document(TINY_SITE_XML))
        drift = detector.data_drift()
        assert 0.0 < drift <= 1.0
        detector.rebase()
        assert detector.data_drift() == 0.0

    def test_assess_combines_weighted_components(self, tiny_database):
        detector = DriftDetector(tiny_database, threshold=0.4,
                                 workload_weight=1.0, data_weight=1.0)
        monitor = WorkloadMonitor()
        monitor.record(_adhoc("africa", "quantity", 1, "a"))
        report = detector.assess(monitor.snapshot(), baseline=None)
        assert report.workload_drift == 1.0
        assert report.data_drift == 0.0
        assert report.score == pytest.approx(0.5)
        assert report.exceeded
        stable = detector.assess(monitor.snapshot(), monitor.snapshot())
        assert stable.score == 0.0 and not stable.exceeded


# ======================================================================
# Controller
# ======================================================================
class TestPolicyValidation:
    @pytest.mark.parametrize("overrides, message", [
        ({"drift_threshold": -0.1}, "drift threshold must be non-negative"),
        ({"workload_weight": -1.0}, "drift weights must be non-negative"),
        ({"data_weight": -1.0}, "drift weights must be non-negative"),
        ({"workload_weight": 0.0, "data_weight": 0.0},
         "at least one drift weight must be positive"),
        ({"cluster_cap": 0}, "cluster_cap must be at least 1"),
        ({"min_weight_fraction": 1.0},
         "min_weight_fraction must be in [0, 1)"),
        ({"min_captured_weight": -1.0},
         "min_captured_weight must be non-negative"),
        ({"disk_budget_bytes": 0.0},
         "disk budget must be positive when set"),
        ({"build_budget_bytes": -5.0},
         "build budget must be positive when set"),
        ({"monitor_capacity": 0}, "monitor_capacity must be at least 1"),
        ({"decay": 0.0}, "decay must be in (0, 1]"),
        ({"decay": 1.5}, "decay must be in (0, 1]"),
        ({"max_build_attempts": 0},
         "max_build_attempts must be at least 1"),
        ({"retry_backoff_steps": 0},
         "retry_backoff_steps must be at least 1"),
        ({"retry_backoff_cap": 0},
         "retry_backoff_cap must be at least 1"),
    ])
    def test_rejects_non_positive_numeric_fields(self, overrides, message):
        policy = TuningPolicy(**overrides)
        with pytest.raises(ValueError) as excinfo:
            policy.validate()
        assert str(excinfo.value) == message

    def test_defaults_validate(self):
        TuningPolicy().validate()


class TestController:
    def _controller(self, database, **policy_overrides):
        policy = TuningPolicy(disk_budget_bytes=BUDGET, decay=0.5,
                              min_weight_fraction=0.02, **policy_overrides)
        return TuningController(database, policy=policy)

    def test_idle_without_traffic(self, online_database):
        controller = self._controller(online_database)
        event = controller.run_cycle()
        assert event.action == "idle"
        assert controller.live_configuration_keys == frozenset()
        controller.executor.drop_all_indexes()

    def test_dry_run_plans_without_applying(self, online_database,
                                            train_queries):
        controller = self._controller(online_database, dry_run=True)
        controller.observe(train_queries, rounds=2)
        event = controller.run_cycle()
        assert event.action == "planned" and not event.applied
        assert event.plan is not None and len(event.plan.builds) > 0
        assert controller.live_configuration_keys == frozenset()
        assert online_database.catalog.configuration_provenance is None

    def test_stationary_convergence_byte_identical(self, online_database,
                                                   train_queries):
        """Acceptance: the online loop's final configuration equals the
        offline advisor's on the same queries, and a further stationary
        cycle does not oscillate."""
        offline = XmlIndexAdvisor(
            online_database, AdvisorParameters(disk_budget_bytes=BUDGET))
        offline_keys = frozenset(
            d.key for d in offline.recommend(
                xmark_query_workload(name="tune-offline")).configuration)

        controller = self._controller(online_database)
        try:
            controller.observe(train_queries, rounds=3)
            event = controller.run_cycle()
            assert event.action == "migrated" and event.applied
            assert controller.live_configuration_keys == offline_keys

            # Provenance: the advised-on snapshot and signature landed
            # in the catalog.
            provenance = online_database.catalog.configuration_provenance
            assert provenance is not None
            assert frozenset(provenance.index_keys) == offline_keys
            assert provenance.data_signature == \
                online_database.data_signature()
            assert provenance.advised_step == controller.monitor.step

            # Post-migration plan-cache coherence: the same executor now
            # serves the workload through the new indexes.
            plans_used = sum(
                1 for query in train_queries
                if controller.executor.execute(query).used_index_plan)
            assert plans_used > 0

            # Stationary stability: same mix, no re-tuning.
            controller.observe(train_queries, rounds=2)
            assert controller.run_cycle().action == "idle"
        finally:
            controller.executor.drop_all_indexes()
            online_database.catalog.record_configuration_provenance(None)

    def test_shift_detection_and_migration(self, online_database,
                                           train_queries, shift_queries):
        """Acceptance: an injected workload shift is detected and the
        controller migrates (drops stale indexes, builds new ones)."""
        controller = self._controller(online_database)
        try:
            controller.observe(train_queries, rounds=3)
            controller.run_cycle()
            before = controller.live_configuration_keys

            controller.observe(shift_queries, rounds=10)
            event = controller.run_cycle()
            assert event.report is not None and event.report.exceeded
            assert event.action == "migrated"
            assert len(event.plan.drops) > 0
            after = controller.live_configuration_keys
            assert after != before

            offline = XmlIndexAdvisor(
                online_database, AdvisorParameters(disk_budget_bytes=BUDGET))
            offline_keys = frozenset(
                d.key for d in offline.recommend(
                    xmark_unseen_queries(name="tune-offline-shift")
                ).configuration)
            assert after == offline_keys

            # Audit trail captured every cycle.
            assert [e.action for e in controller.events] == \
                ["migrated", "migrated"]
            assert "DRIFTED" in controller.audit_trail()
        finally:
            controller.executor.drop_all_indexes()
            online_database.catalog.record_configuration_provenance(None)

    def test_build_budget_defers_and_resumes(self, online_database,
                                             train_queries):
        controller = self._controller(online_database,
                                      build_budget_bytes=2048.0)
        try:
            controller.observe(train_queries, rounds=2)
            event = controller.run_cycle()
            assert event.action == "migrated"
            assert len(event.plan.deferred) > 0
            target = event.plan.target_keys
            assert controller.live_configuration_keys < target

            # Later cycles resume the deferred builds before anything
            # else, until the target configuration stands.
            for _ in range(50):
                if controller.live_configuration_keys == target:
                    break
                assert controller.run_cycle().action == "resumed"
            assert controller.live_configuration_keys == target
            assert controller.executor.materialized_index_count == len(target)
        finally:
            controller.executor.drop_all_indexes()
            online_database.catalog.record_configuration_provenance(None)

    def test_dry_run_with_pending_builds_still_assesses_drift(
            self, online_database, train_queries):
        """Deferred builds left by an out-of-band apply() must not wedge
        a dry-run controller in a resume loop: dry-run cycles park them
        and keep assessing drift."""
        controller = self._controller(online_database, dry_run=True,
                                      build_budget_bytes=2048.0)
        try:
            controller.observe(train_queries, rounds=2)
            event = controller.run_cycle()
            assert event.action == "planned"
            assert len(event.plan.deferred) > 0
            # The operator reviews the plan and applies it directly.
            controller.apply(event.plan,
                             controller.monitor.snapshot(
                                 controller.policy.min_weight_fraction))
            assert controller._pending
            # Further dry-run cycles assess drift instead of returning
            # 'resumed' forever without draining anything.
            follow_up = controller.run_cycle()
            assert follow_up.action != "resumed"
            assert follow_up.report is not None
            # Clearing dry-run lets the pending builds drain normally.
            controller.policy.dry_run = False
            assert controller.run_cycle().action == "resumed"
        finally:
            controller.executor.drop_all_indexes()
            online_database.catalog.record_configuration_provenance(None)
            # Pending builds are durable catalog state now; clear them so
            # the shared module-scope database starts the next test clean.
            online_database.catalog.record_pending_builds(())

    def test_no_change_rebases_provenance(self, online_database,
                                          train_queries):
        controller = self._controller(online_database)
        try:
            controller.observe(train_queries, rounds=3)
            first = controller.run_cycle()
            assert first.action == "migrated"
            advised_step = online_database.catalog \
                .configuration_provenance.advised_step
            # Force a re-advise despite zero drift: the recommendation
            # matches the live configuration, so the plan is empty and
            # only the provenance moves forward.  The policy is the
            # single source of truth for the threshold, so a runtime
            # change takes effect on the next cycle.
            controller.policy.drift_threshold = 0.0
            controller.observe(train_queries, rounds=1)
            second = controller.run_cycle()
            assert second.action == "no-change"
            assert second.plan.is_empty
            assert online_database.catalog.configuration_provenance \
                .advised_step > advised_step
        finally:
            controller.executor.drop_all_indexes()
            online_database.catalog.record_configuration_provenance(None)


# ======================================================================
# Executor / catalog / advisor wiring
# ======================================================================
class TestWiring:
    def test_executor_drop_indexes_is_selective(self, online_database):
        executor = QueryExecutor(online_database)
        keep = IndexDefinition.create("/site/people/person/@id",
                                      ValueType.VARCHAR)
        drop = IndexDefinition.create("/site/regions/africa/item/quantity",
                                      ValueType.DOUBLE)
        executor.create_indexes([keep, drop])
        assert executor.materialized_index_count == 2
        dropped = executor.drop_indexes(
            [drop.as_physical().name, "no-such-index"])
        assert dropped == [drop.as_physical().name]
        assert executor.materialized_index_count == 1
        names = {d.name for d in online_database.catalog.physical_indexes}
        assert names == {keep.as_physical().name}
        executor.drop_all_indexes()

    def test_catalog_provenance_roundtrip(self, tiny_database):
        provenance = ConfigurationProvenance(
            index_keys=(("/a/b", "VARCHAR"),),
            data_signature=tiny_database.data_signature(),
            advised_step=7,
            workload_snapshot="opaque")
        tiny_database.catalog.record_configuration_provenance(provenance)
        assert tiny_database.catalog.configuration_provenance is provenance

    def test_controller_copies_advisor_parameters(self, online_database):
        """A caller-set disk budget survives a policy without one, and
        the caller's parameter object is never mutated."""
        parameters = AdvisorParameters(disk_budget_bytes=BUDGET)
        controller = TuningController(online_database,
                                      advisor_parameters=parameters)
        assert parameters.disk_budget_bytes == BUDGET
        assert controller.advisor.parameters is not parameters
        assert controller.advisor.parameters.disk_budget_bytes == BUDGET
        # A budget set on the policy wins over the parameters' one.
        override = TuningController(
            online_database, advisor_parameters=parameters,
            policy=TuningPolicy(disk_budget_bytes=32 * 1024.0))
        assert override.advisor.parameters.disk_budget_bytes == 32 * 1024.0
        assert parameters.disk_budget_bytes == BUDGET

    def test_advisor_accepts_normalized_and_compressed(self, online_database,
                                                       train_queries):
        advisor = XmlIndexAdvisor(
            online_database, AdvisorParameters(disk_budget_bytes=BUDGET))
        from_workload = advisor.recommend(
            xmark_query_workload(name="entry-workload"))
        from_queries = advisor.recommend(list(train_queries))
        monitor = WorkloadMonitor()
        for query in train_queries:
            monitor.record(query)
        compressed = compress_snapshot(monitor.snapshot(), cluster_cap=64)
        from_compressed = advisor.recommend(compressed)
        # One-shot iterables must not be half-consumed by type probing.
        from_generator = advisor.recommend(q for q in train_queries)
        keys = frozenset(d.key for d in from_workload.configuration)
        assert frozenset(d.key for d in from_queries.configuration) == keys
        assert frozenset(d.key for d in from_compressed.configuration) == keys
        assert frozenset(d.key for d in from_generator.configuration) == keys
