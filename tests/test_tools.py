"""Tests for the text reports and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters
from repro.index.definition import IndexDefinition
from repro.optimizer.explain import enumerate_indexes, evaluate_indexes
from repro.tools.cli import build_parser, main
from repro.tools.report import (
    candidate_report,
    dag_report,
    enumerate_report,
    evaluate_report,
    recommendation_report,
    render_table,
)
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_statement


@pytest.fixture(scope="module")
def report_recommendation(varied_database):
    workload = Workload(name="rep")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=3.0)
    advisor = XmlIndexAdvisor(varied_database,
                              AdvisorParameters(disk_budget_bytes=32 * 1024))
    return advisor.recommend(workload)


class TestRenderTable:
    def test_alignment_and_separator(self):
        table = render_table(["a", "bb"], [["x", 1.5], ["yyyyyyyy", 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert "1.5" in table

    def test_ragged_rows_padded(self):
        table = render_table(["a", "b", "c"], [["only"]])
        assert "only" in table


class TestReports:
    def test_enumerate_report(self, varied_database):
        query = normalize_statement(
            'for $i in doc("x")/site/regions/africa/item '
            'where $i/quantity > 90 return $i/name')
        result = enumerate_indexes(query, varied_database)
        report = enumerate_report([result])
        assert "/site/regions/africa/item/quantity" in report
        assert "DOUBLE" in report

    def test_evaluate_report(self, varied_database):
        query = normalize_statement(
            'for $p in doc("x")/site/people/person where $p/@id = "p5" return $p/name')
        result = evaluate_indexes(query, varied_database, [
            IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)])
        report = evaluate_report([result])
        assert "estimated cost" in report
        assert "/site/people/person/@id" in report

    def test_candidate_and_dag_reports(self, report_recommendation):
        candidates = candidate_report(report_recommendation.candidates)
        assert "basic" in candidates
        dag = dag_report(report_recommendation.dag)
        assert "generalization DAG" in dag

    def test_recommendation_report_with_analysis(self, varied_database,
                                                 report_recommendation):
        analysis = RecommendationAnalysis(varied_database, report_recommendation)
        report = recommendation_report(report_recommendation, analysis)
        assert "CREATE INDEX" in report
        assert "workload improvement" in report
        assert "overtrained" in report

    def test_recommendation_report_without_analysis(self, report_recommendation):
        report = recommendation_report(report_recommendation)
        assert "DDL" in report


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["recommend", "--scenario", "xmark-small",
                                  "--budget-kb", "128", "--algorithm", "top-down"])
        assert args.command == "recommend"
        assert args.budget_kb == pytest.approx(128.0)

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "xmark-small" in out

    def test_enumerate_command_with_single_query(self, capsys):
        code = main(["enumerate", "--scenario", "xmark-small", "--query",
                     'for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 7 return $i/name'])
        assert code == 0
        out = capsys.readouterr().out
        assert "/site/regions/africa/item/quantity" in out

    def test_recommend_command(self, capsys):
        code = main(["recommend", "--scenario", "xmark-small",
                     "--budget-kb", "128", "--show-candidates"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CREATE INDEX" in out
        assert "workload improvement" in out

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--algorithm", "bogus"])

    def test_tune_command_dry_run(self, capsys):
        code = main(["tune", "--scenario", "xmark-small", "--rounds", "2",
                     "--budget-kb", "96", "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert "migration plan" in out
        assert "audit trail" in out
        # Dry run: the plan is only reported, nothing was configured.
        assert "live configuration (0 index(es))" in out

    def test_tune_command_applies_migration(self, capsys):
        code = main(["tune", "--scenario", "xmark-small", "--rounds", "2",
                     "--budget-kb", "96"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycle 1" in out and "migrated" in out
        assert "live configuration (0 index(es))" not in out


class TestTelemetryCli:
    def test_scenarios_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert "xmark-small" in payload

    def test_metrics_json_is_deterministic(self, capsys):
        assert main(["metrics", "--scenario", "xmark-small",
                     "--rounds", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["metrics", "--scenario", "xmark-small",
                     "--rounds", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["executor.queries.executed"]["value"] > 0
        assert payload["optimizer.plan.calls"]["value"] > 0
        # Wall-derived metrics are excluded from the default export.
        assert "executor.query.seconds" not in payload
        assert "executor.query.documents_examined" in payload

    def test_metrics_prometheus_format(self, capsys):
        assert main(["metrics", "--scenario", "xmark-small",
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE executor_queries_executed counter" in out
        assert "executor_query_seconds" not in out

    def test_metrics_wall_flag_includes_timings(self, capsys):
        assert main(["metrics", "--scenario", "xmark-small", "--wall"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "executor.query.seconds" in payload

    def test_explain_renders_plan(self, capsys):
        code = main(["explain", "--scenario", "xmark-small", "--query",
                     'for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 7 return $i/name'])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- cli-q1 --" in out
        assert "query" not in out.splitlines()  # no trace without --trace

    def test_explain_trace_renders_span_tree(self, capsys):
        code = main(["explain", "--scenario", "xmark-small", "--trace",
                     "--query",
                     'for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 7 return $i/name'])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("compile", "plan", "route", "scan"):
            assert f"  {name}" in out
        assert "plan_shape=" in out

    def test_tune_reports_cache_statistics(self, capsys):
        code = main(["tune", "--scenario", "xmark-small", "--rounds", "1",
                     "--budget-kb", "96", "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cache" in out
        assert "evaluator memo" in out
