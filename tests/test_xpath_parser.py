"""Unit tests for the XPath lexer/parser."""

from __future__ import annotations

import pytest

from repro.xpath.ast import (
    Axis,
    BinaryOp,
    ComparisonExpr,
    FunctionCall,
    Literal,
    LocationPath,
    iter_location_paths,
)
from repro.xpath.errors import XPathParseError
from repro.xpath.parser import parse_location_path, parse_xpath


class TestLocationPaths:
    def test_absolute_child_path(self):
        path = parse_xpath("/site/regions/africa/item")
        assert isinstance(path, LocationPath)
        assert path.absolute
        assert [s.node_test for s in path.steps] == ["site", "regions", "africa", "item"]
        assert all(s.axis is Axis.CHILD for s in path.steps)

    def test_descendant_axis(self):
        path = parse_xpath("//item/name")
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[1].axis is Axis.CHILD

    def test_mixed_axes(self):
        path = parse_xpath("/site//item//keyword")
        axes = [s.axis for s in path.steps]
        assert axes == [Axis.CHILD, Axis.DESCENDANT_OR_SELF, Axis.DESCENDANT_OR_SELF]

    def test_attribute_step(self):
        path = parse_xpath("/site/people/person/@id")
        assert path.steps[-1].axis is Axis.ATTRIBUTE
        assert path.steps[-1].node_test == "id"

    def test_descendant_attribute_becomes_wildcard_plus_attribute(self):
        path = parse_xpath("//@id")
        assert [s.node_test for s in path.steps] == ["*", "id"]
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[1].axis is Axis.ATTRIBUTE

    def test_wildcards(self):
        path = parse_xpath("/site/regions/*/item/@*")
        assert path.steps[2].is_wildcard
        assert path.steps[4].is_wildcard
        assert path.steps[4].axis is Axis.ATTRIBUTE

    def test_text_step(self):
        path = parse_xpath("/a/b/text()")
        assert path.steps[-1].is_text

    def test_relative_path(self):
        path = parse_xpath("item/name")
        assert not path.absolute

    def test_dot_relative_path(self):
        path = parse_xpath("./quantity")
        assert not path.absolute
        assert path.steps[0].node_test == "quantity"

    def test_variable_path(self):
        path = parse_xpath("$i/quantity")
        assert path.variable == "i"
        assert [s.node_test for s in path.steps] == ["quantity"]

    def test_bare_variable(self):
        path = parse_xpath("$doc")
        assert path.variable == "doc"
        assert path.steps == []

    def test_variable_with_descendant(self):
        path = parse_xpath("$i//keyword")
        assert path.variable == "i"
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF

    def test_root_only(self):
        path = parse_xpath("/")
        assert path.absolute and path.steps == []


class TestPredicatesAndExpressions:
    def test_step_predicate_comparison(self):
        path = parse_xpath('/site/people/person[profile/age > 30]/name')
        person_step = path.steps[2]
        assert len(person_step.predicates) == 1
        expr = person_step.predicates[0].expression
        assert isinstance(expr, ComparisonExpr)
        assert expr.op is BinaryOp.GT
        assert isinstance(expr.right, Literal)
        assert expr.right.value == pytest.approx(30.0)

    def test_multiple_predicates_on_one_step(self):
        path = parse_xpath('/a/b[c = "x"][d > 2]')
        assert len(path.steps[1].predicates) == 2

    def test_top_level_comparison(self):
        expr = parse_xpath('/site/people/person/@id = "person0"')
        assert isinstance(expr, ComparisonExpr)
        assert expr.op is BinaryOp.EQ
        assert expr.right.value == "person0"

    def test_and_or_precedence(self):
        expr = parse_xpath('$i/a = 1 or $i/b = 2 and $i/c = 3')
        assert isinstance(expr, ComparisonExpr)
        assert expr.op is BinaryOp.OR
        assert isinstance(expr.right, ComparisonExpr)
        assert expr.right.op is BinaryOp.AND

    def test_parenthesized_expression(self):
        expr = parse_xpath('($i/a = 1 or $i/b = 2) and $i/c = 3')
        assert expr.op is BinaryOp.AND
        assert expr.left.op is BinaryOp.OR

    def test_function_call(self):
        expr = parse_xpath('contains($i/name, "gold")')
        assert isinstance(expr, FunctionCall)
        assert expr.name == "contains"
        assert len(expr.arguments) == 2

    @pytest.mark.parametrize("op,enum_member", [
        ("=", BinaryOp.EQ), ("!=", BinaryOp.NE), ("<", BinaryOp.LT),
        ("<=", BinaryOp.LE), (">", BinaryOp.GT), (">=", BinaryOp.GE),
    ])
    def test_all_comparison_operators(self, op, enum_member):
        expr = parse_xpath(f"$x/v {op} 5")
        assert expr.op is enum_member

    def test_string_literals_both_quote_styles(self):
        assert parse_xpath("$x/a = 'y'").right.value == "y"
        assert parse_xpath('$x/a = "y"').right.value == "y"

    def test_numeric_literals(self):
        assert parse_xpath("$x/a = 42").right.value == pytest.approx(42.0)
        assert parse_xpath("$x/a = 4.25").right.value == pytest.approx(4.25)


class TestRendering:
    @pytest.mark.parametrize("text", [
        "/site/regions/africa/item",
        "//item/name",
        "/site/regions/*/item/@id",
        "/site//open_auction",
    ])
    def test_to_xpath_round_trips_plain_paths(self, text):
        assert parse_xpath(text).to_xpath() == text

    def test_to_xpath_for_predicates(self):
        rendered = parse_xpath('/a/b[c > 5]/d').to_xpath()
        reparsed = parse_xpath(rendered)
        assert reparsed.to_xpath() == rendered

    def test_spine_string_strips_predicates(self):
        path = parse_xpath('/a/b[c > 5][d = "x"]/e')
        assert path.spine_string() == "/a/b/e"
        assert path.has_predicates()
        assert not path.without_predicates().has_predicates()


class TestIterLocationPaths:
    def test_collects_nested_paths(self):
        expr = parse_xpath('$i/a = 1 and contains($i/b, "x")')
        paths = iter_location_paths(expr)
        rendered = {p.to_xpath() for p in paths}
        assert "$i/a" in rendered and "$i/b" in rendered

    def test_collects_paths_inside_step_predicates(self):
        path = parse_xpath('/site/person[profile/age > 30]/name')
        rendered = {p.to_xpath() for p in iter_location_paths(path)}
        assert any("profile/age" in r for r in rendered)


class TestErrors:
    @pytest.mark.parametrize("text", [
        "", "   ", "/site/[", "/a/b[", "/a/b]", "/a//", "$", "$/a",
        "/a/b[c >]", 'contains($i/a', "/a/'unterminated",
    ])
    def test_invalid_expressions_raise(self, text):
        with pytest.raises(XPathParseError):
            parse_xpath(text)

    def test_parse_location_path_rejects_comparisons(self):
        with pytest.raises(XPathParseError):
            parse_location_path("/a/b = 1")
