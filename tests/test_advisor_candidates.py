"""Unit tests for basic candidate enumeration and the CandidateSet container."""

from __future__ import annotations

import pytest

from repro.advisor.candidates import (
    CandidateIndex,
    CandidateSet,
    enumerate_basic_candidates,
)
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.model import PathPredicate, ValueType, Workload
from repro.xquery.normalizer import normalize_workload


def _candidate(pattern, value_type=ValueType.VARCHAR, source="basic", queries=()):
    return CandidateIndex(pattern=PathPattern.parse(pattern), value_type=value_type,
                          source=source, benefiting_queries=set(queries))


class TestCandidateIndex:
    def test_key_identity(self):
        assert _candidate("/a/b").key == ("/a/b", "VARCHAR")
        assert _candidate("/a/b", ValueType.DOUBLE).key == ("/a/b", "DOUBLE")

    def test_to_definition_is_virtual(self):
        definition = _candidate("/a/b").to_definition()
        assert definition.is_virtual
        assert definition.pattern.to_text() == "/a/b"

    def test_covers_predicate_respects_type(self):
        candidate = _candidate("/a/*", ValueType.DOUBLE)
        numeric = PathPredicate(pattern=PathPattern.parse("/a/b"), op=BinaryOp.GT,
                                value=1.0, value_type=ValueType.DOUBLE)
        textual = PathPredicate(pattern=PathPattern.parse("/a/b"), op=BinaryOp.EQ,
                                value="x", value_type=ValueType.VARCHAR)
        existence = PathPredicate(pattern=PathPattern.parse("/a/b"))
        assert candidate.covers(numeric)
        assert not candidate.covers(textual)
        assert candidate.covers(existence)

    def test_covers_candidate(self):
        general = _candidate("/a/*")
        specific = _candidate("/a/b")
        other_type = _candidate("/a/b", ValueType.DOUBLE)
        assert general.covers_candidate(specific)
        assert not specific.covers_candidate(general)
        assert not general.covers_candidate(other_type)


class TestCandidateSet:
    def test_add_deduplicates_and_merges_queries(self):
        candidates = CandidateSet()
        candidates.add(_candidate("/a/b", queries={"q1"}))
        candidates.add(_candidate("/a/b", queries={"q2"}))
        assert len(candidates) == 1
        merged = candidates.get(("/a/b", "VARCHAR"))
        assert merged.benefiting_queries == {"q1", "q2"}

    def test_basic_wins_over_generalized_source(self):
        candidates = CandidateSet()
        candidates.add(_candidate("/a/b", source="generalized"))
        candidates.add(_candidate("/a/b", source="basic"))
        assert candidates.get(("/a/b", "VARCHAR")).source == "basic"

    def test_partition_by_source_and_type(self):
        candidates = CandidateSet([
            _candidate("/a/b"),
            _candidate("/a/c", ValueType.DOUBLE),
            _candidate("/a/*", source="generalized"),
        ])
        assert len(candidates.basic_candidates) == 2
        assert len(candidates.generalized_candidates) == 1
        assert len(candidates.by_value_type(ValueType.DOUBLE)) == 1

    def test_copy_is_deep_for_query_sets(self):
        original = CandidateSet([_candidate("/a/b", queries={"q1"})])
        copy = original.copy()
        copy.get(("/a/b", "VARCHAR")).benefiting_queries.add("q2")
        assert original.get(("/a/b", "VARCHAR")).benefiting_queries == {"q1"}

    def test_describe_lists_candidates(self):
        candidates = CandidateSet([_candidate("/a/b")])
        assert "/a/b" in candidates.describe()


class TestEnumerateBasicCandidates:
    def test_candidates_pooled_across_queries(self, varied_database, tiny_workload):
        queries = normalize_workload(tiny_workload)
        candidates = enumerate_basic_candidates(queries, varied_database)
        patterns = {c.pattern.to_text() for c in candidates}
        assert "/site/regions/africa/item/quantity" in patterns
        assert "/site/people/person/profile/age" in patterns
        assert "/site/people/person/profile/@income" in patterns
        assert all(c.source == "basic" for c in candidates)

    def test_query_attribution_recorded(self, varied_database, tiny_workload):
        queries = normalize_workload(tiny_workload)
        candidates = enumerate_basic_candidates(queries, varied_database)
        quantity = candidates.get(("/site/regions/africa/item/quantity", "DOUBLE"))
        assert quantity is not None
        assert any(q.endswith("q1") for q in quantity.benefiting_queries)

    def test_shared_pattern_attributed_to_multiple_queries(self, varied_database):
        workload = Workload(name="dup")
        workload.add('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity > 90 return $i/name')
        workload.add('for $i in doc("x")/site/regions/africa/item '
                     'where $i/quantity < 5 return $i/name')
        queries = normalize_workload(workload)
        candidates = enumerate_basic_candidates(queries, varied_database)
        quantity = candidates.get(("/site/regions/africa/item/quantity", "DOUBLE"))
        assert len(quantity.benefiting_queries) == 2

    def test_update_statements_contribute_nothing(self, varied_database):
        workload = Workload(name="u")
        workload.add("delete node /site/regions/africa/item")
        queries = normalize_workload(workload)
        candidates = enumerate_basic_candidates(queries, varied_database)
        assert len(candidates) == 0

    def test_catalog_untouched(self, varied_database, tiny_workload):
        queries = normalize_workload(tiny_workload)
        enumerate_basic_candidates(queries, varied_database)
        assert varied_database.catalog.virtual_indexes == []
        assert varied_database.catalog.physical_indexes == []
