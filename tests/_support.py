"""Shared test helpers importable by name (``from _support import ...``).

These used to live in ``tests/conftest.py``, but importing them as
``from conftest import ...`` is ambiguous when pytest collects both
``tests/`` and ``benchmarks/`` (each has a ``conftest`` module); this
module has a unique name so test files can import the helpers directly.
"""

from __future__ import annotations

from repro.storage import XmlDatabase

#: A small hand-written document used by many unit tests: predictable
#: values, both elements and attributes, two regions.
TINY_SITE_XML = """
<site>
  <regions>
    <africa>
      <item id="i1"><quantity>7</quantity><price>120.5</price>
        <name>carved mask</name><payment>Creditcard</payment></item>
      <item id="i2"><quantity>2</quantity><price>30.0</price>
        <name>drum</name><payment>Cash</payment></item>
    </africa>
    <namerica>
      <item id="i3"><quantity>9</quantity><price>450.0</price>
        <name>vintage lamp</name><payment>Creditcard</payment></item>
    </namerica>
  </regions>
  <people>
    <person id="p1"><name>Alice</name>
      <profile income="95000.0"><age>34</age></profile></person>
    <person id="p2"><name>Bob</name>
      <profile income="42000.0"><age>67</age></profile></person>
  </people>
</site>
"""


def build_varied_database(documents: int = 120, name: str = "varied") -> XmlDatabase:
    """A mid-sized database with the tiny <site> schema but varied values.

    Unlike ``tiny_database`` (three identical documents, where scanning is
    always the best plan), this database has enough documents and value
    diversity that selective predicates genuinely benefit from indexes --
    which is what the optimizer/advisor behaviour tests need.
    """
    from repro.xmldb.nodes import build_document

    regions = ["africa", "namerica", "asia", "europe"]
    payments = ["Creditcard", "Cash"]
    locations = ["United States", "Germany", "Egypt", "Japan"]
    database = XmlDatabase(name)
    collection = database.create_collection("site")
    for d in range(documents):
        doc, site = build_document("site")
        region = site.add_element("regions").add_element(regions[d % len(regions)])
        for k in range(5):
            item = region.add_element("item", attributes={"id": f"item{d}_{k}"})
            item.add_element("quantity", str(((d * 13 + k * 7) % 100) + 1))
            item.add_element("price", f"{((d * 17 + k * 29) % 500) + 1}.0")
            item.add_element("name", f"thing {d} {k}")
            item.add_element("payment", payments[(d + k) % 2])
            item.add_element("location", locations[(d + k) % len(locations)])
        people = site.add_element("people")
        for k in range(2):
            person = people.add_element("person", attributes={"id": f"p{2 * d + k}"})
            person.add_element("name", f"Person {d} {k}")
            profile = person.add_element("profile", attributes={
                "income": f"{10000 + ((d * 37 + k * 11) % 200) * 1000}.0"})
            profile.add_element("age", str(18 + ((d + k * 31) % 72)))
        doc.assign_node_ids()
        collection.add_document(doc)
    return database


#: Legacy counter attribute -> registry metric name, per component.
#: The PR-10 migration contract: every ad-hoc counter became a
#: read-through view of an instance registry metric, so the public
#: attribute and the metric must be byte-equal at any point in time.
EXECUTOR_COUNTERS = {
    "index_rebuilds": "executor.index.rebuilds",
    "index_delta_maintenances": "executor.index.delta_maintenances",
    "index_repairs": "executor.index.repairs",
    "documents_routed_out": "executor.scan.documents_routed_out",
    "scan_fallbacks": "executor.scan.fallbacks",
    "interpretive_spine_fallbacks": "executor.scan.interpretive_spine_fallbacks",
    "scan_node_materializations": "executor.scan.node_materializations",
}

OPTIMIZER_COUNTERS = {
    "plan_calls": "optimizer.plan.calls",
    "plan_cache_hits": "optimizer.plan_cache.hits",
    "plan_cache_misses": "optimizer.plan_cache.misses",
    "plan_cache_evictions": "optimizer.plan_cache.evictions",
    "plan_cache_flushes": "optimizer.plan_cache.flushes",
}

EVALUATOR_COUNTERS = {
    "full_evaluations": "evaluator.whatif.full_evaluations",
    "delta_evaluations": "evaluator.whatif.delta_evaluations",
    "query_costings": "evaluator.whatif.costings",
    "rows_preserved_on_refresh": "evaluator.whatif.rows_preserved",
    "memo_hits": "evaluator.memo.hits",
    "memo_misses": "evaluator.memo.misses",
}


def assert_counter_parity(component, attr_to_metric) -> None:
    """Assert each legacy counter attribute equals its registry metric."""
    for attr, metric in attr_to_metric.items():
        legacy = getattr(component, attr)
        registered = component.metrics.value(metric)
        assert legacy == registered, (
            f"{type(component).__name__}.{attr}={legacy!r} diverged from "
            f"registry metric {metric!r}={registered!r}")
