"""Tests of the incremental what-if evaluation engine.

The incremental engine (inverted relevance map + delta evaluation +
lazy-greedy search) must be *exactly* equivalent to the legacy full
re-evaluation (``use_incremental=False``): same configurations in the
same order, same benefits, same per-query breakdowns.  The randomized
test sweeps random candidate subsets, budgets, and all three search
algorithms to guard that equivalence; the remaining tests pin down the
invalidation contract (relevance map and plan cache keyed to the
database's ``data_signature()``).
"""

from __future__ import annotations

import random

import pytest

from _support import TINY_SITE_XML, build_varied_database
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.candidates import CandidateSet, enumerate_basic_candidates
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.enumeration import create_search
from repro.advisor.generalization import generalize_candidates
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.explain import evaluate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload


def _mixed_workload() -> Workload:
    workload = Workload(name="whatif")
    workload.add('for $i in doc("x")/site/regions/africa/item '
                 'where $i/quantity > 90 return $i/name', frequency=3.0)
    workload.add('for $i in doc("x")/site/regions/namerica/item '
                 'where $i/quantity > 95 return $i/name', frequency=2.0)
    workload.add('for $i in doc("x")/site/regions/asia/item '
                 'where $i/price > 480 return $i/name', frequency=2.0)
    # Multi-predicate query: exercises index-ANDing (the "volatile"
    # path of the lazy-greedy queue).
    workload.add('for $i in doc("x")/site/regions/europe/item '
                 'where $i/quantity > 90 and $i/price > 450 '
                 'return $i/name', frequency=2.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/@id = "p5" return $p/name', frequency=4.0)
    workload.add('for $p in doc("x")/site/people/person '
                 'where $p/profile/@income > 200000 return $p/name', frequency=1.0)
    workload.add('replace value of node /site/regions/africa/item/quantity '
                 'with "5"', frequency=5.0)
    return workload


@pytest.fixture(scope="module")
def whatif_setup(varied_database):
    queries = normalize_workload(_mixed_workload())
    basic = enumerate_basic_candidates(queries, varied_database)
    generalization = generalize_candidates(basic)
    return varied_database, queries, generalization


def _run_search(database, queries, candidates, algorithm, budget, incremental):
    parameters = AdvisorParameters(disk_budget_bytes=budget,
                                   search_algorithm=algorithm,
                                   use_incremental=incremental,
                                   enable_plan_cache=incremental)
    evaluator = ConfigurationEvaluator(database, queries, parameters)
    search = create_search(algorithm, evaluator, parameters)
    return search.search(candidates, None)


class TestRandomizedEquivalence:
    def test_incremental_matches_legacy_across_algorithms(self, whatif_setup):
        """Byte-identical configurations and benefits for random candidate
        subsets, random budgets, and all three algorithms."""
        database, queries, generalization = whatif_setup
        pool = list(generalization.candidates)
        evaluator = ConfigurationEvaluator(database, queries)
        full_size = evaluator.configuration_size_bytes(
            c.to_definition() for c in pool)
        rng = random.Random(20260729)
        for trial in range(8):
            count = rng.randint(3, len(pool))
            subset = CandidateSet(rng.sample(pool, count))
            budget = rng.choice([None, full_size * rng.uniform(0.05, 0.9)])
            for algorithm in SearchAlgorithm:
                legacy = _run_search(database, queries, subset, algorithm,
                                     budget, incremental=False)
                incremental = _run_search(database, queries, subset, algorithm,
                                          budget, incremental=True)
                context = (f"trial {trial}, {algorithm.value}, "
                           f"budget {budget}, {count} candidates")
                assert [d.key for d in legacy.configuration] == \
                    [d.key for d in incremental.configuration], context
                assert incremental.benefit.total_benefit == pytest.approx(
                    legacy.benefit.total_benefit), context
                assert incremental.benefit.total_size_bytes == pytest.approx(
                    legacy.benefit.total_size_bytes), context

    def test_delta_update_equals_full_evaluation(self, whatif_setup):
        """update() must return exactly what evaluate() would."""
        database, queries, generalization = whatif_setup
        definitions = [c.to_definition() for c in generalization.candidates]
        evaluator = ConfigurationEvaluator(database, queries)
        rng = random.Random(7)
        base = evaluator.evaluate(IndexConfiguration())
        chosen: list = []
        for _ in range(min(6, len(definitions))):
            definition = rng.choice(definitions)
            base = evaluator.update(base, add=[definition])
            chosen.append(definition)
            full = evaluator.evaluate(IndexConfiguration(chosen))
            assert base.total_benefit == pytest.approx(full.total_benefit)
            assert base.total_size_bytes == pytest.approx(full.total_size_bytes)
            by_id = {e.query_id: e for e in full.query_evaluations}
            for row in base.query_evaluations:
                assert row.cost_with_configuration == pytest.approx(
                    by_id[row.query_id].cost_with_configuration)
                assert row.used_index_keys == by_id[row.query_id].used_index_keys
        # And removal deltas walk back to the same states.
        while chosen:
            removed = chosen.pop()
            base = evaluator.update(base, remove=[removed])
            full = evaluator.evaluate(IndexConfiguration(chosen))
            assert base.total_benefit == pytest.approx(full.total_benefit)

    def test_marginal_benefit_matches_legacy(self, whatif_setup):
        database, queries, generalization = whatif_setup
        definitions = [c.to_definition() for c in generalization.candidates]
        fast = ConfigurationEvaluator(database, queries,
                                      AdvisorParameters(use_incremental=True))
        slow = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_incremental=False, enable_plan_cache=False))
        base_fast = fast.evaluate(IndexConfiguration(definitions[:2]))
        base_slow = slow.evaluate(IndexConfiguration(definitions[:2]))
        for definition in definitions[2:8]:
            assert fast.marginal_benefit(base_fast, definition) == pytest.approx(
                slow.marginal_benefit(base_slow, definition))


class TestRelevanceMap:
    def test_relevance_marks_only_affected_queries(self, whatif_setup):
        database, queries, _ = whatif_setup
        evaluator = ConfigurationEvaluator(database, queries)
        quantity = IndexDefinition.create("/site/regions/africa/item/quantity",
                                          ValueType.DOUBLE)
        affected = evaluator.relevant_queries(quantity)
        assert affected  # the africa quantity query and the update at least
        unrelated = IndexDefinition.create("/site/categories/category/name",
                                           ValueType.VARCHAR)
        assert evaluator.relevant_queries(unrelated) == frozenset()

    def test_relevance_map_survives_data_signature_change(self):
        """Relevance is pattern containment only -- data changes must not
        drop it under fine-grained maintenance; the legacy escape hatch
        keeps the PR 2 behaviour of rebuilding it from scratch."""
        database = build_varied_database(documents=12, name="invalidate")
        queries = normalize_workload(_mixed_workload())
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        evaluator.relevant_queries(index)
        old_signature = evaluator.data_signature
        relevance_before = evaluator.relevance_map
        assert relevance_before
        assert not evaluator.refresh()  # nothing changed yet

        database.collection("site").add_document(TINY_SITE_XML)
        assert database.data_signature() != old_signature
        assert evaluator.refresh()  # detects the change
        assert evaluator.data_signature == database.data_signature()
        assert evaluator.relevance_map == relevance_before  # data-independent
        # Evaluation after the change works against the new statistics
        # (the net benefit may be negative: the workload's update charges
        # maintenance against the tiny post-change database).
        result = evaluator.evaluate([index])
        assert len(result.query_evaluations) == len(queries)

        legacy = ConfigurationEvaluator(
            database, queries,
            AdvisorParameters(use_incremental_maintenance=False))
        legacy.relevant_queries(index)
        assert legacy.relevance_map
        database.collection("site").add_document(TINY_SITE_XML)
        assert legacy.refresh()
        assert legacy.relevance_map == {}  # dropped, repopulated lazily

    def test_update_discards_stale_base_rows_after_data_change(self):
        """A delta update against a base computed before a data change
        must not reuse any of the base's per-query rows."""
        database = build_varied_database(documents=12, name="staledelta")
        queries = normalize_workload(_mixed_workload())
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        base = evaluator.evaluate(IndexConfiguration())
        for _ in range(4):
            database.collection("site").add_document(TINY_SITE_XML)
        delta = evaluator.update(base, add=[index])
        full = evaluator.evaluate(IndexConfiguration([index]))
        assert delta.total_benefit == pytest.approx(full.total_benefit)
        by_id = {e.query_id: e for e in full.query_evaluations}
        for row in delta.query_evaluations:
            assert row.cost_without_indexes == pytest.approx(
                by_id[row.query_id].cost_without_indexes)
            assert row.cost_with_configuration == pytest.approx(
                by_id[row.query_id].cost_with_configuration)

    def test_evaluate_refreshes_automatically(self):
        database = build_varied_database(documents=12, name="autorefresh")
        queries = normalize_workload(_mixed_workload())
        evaluator = ConfigurationEvaluator(database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        evaluator.evaluate([index])
        old_signature = evaluator.data_signature
        database.collection("site").add_document(TINY_SITE_XML)
        evaluator.evaluate([index])  # public entry point refreshes
        assert evaluator.data_signature != old_signature
        assert evaluator.data_signature == database.data_signature()


class TestPlanCache:
    def test_repeated_whatif_calls_served_from_cache(self, whatif_setup):
        database, queries, generalization = whatif_setup
        definitions = [c.to_definition() for c in generalization.candidates][:3]
        optimizer = Optimizer(database)
        query = next(q for q in queries if not q.is_update)
        first = evaluate_indexes(query, database, definitions, optimizer=optimizer)
        calls_after_first = optimizer.plan_calls
        second = evaluate_indexes(query, database, definitions, optimizer=optimizer)
        assert optimizer.plan_calls == calls_after_first
        assert optimizer.plan_cache_hits >= 1
        assert second.estimated_cost == pytest.approx(first.estimated_cost)
        assert second.used_index_keys == first.used_index_keys

    def test_plan_cache_invalidates_on_data_change(self):
        database = build_varied_database(documents=12, name="plancache")
        queries = normalize_workload(_mixed_workload())
        definitions = [IndexDefinition.create(
            "/site/regions/africa/item/quantity", ValueType.DOUBLE)]
        optimizer = Optimizer(database)
        query = next(q for q in queries if not q.is_update)
        evaluate_indexes(query, database, definitions, optimizer=optimizer)
        calls = optimizer.plan_calls
        database.collection("site").add_document(TINY_SITE_XML)
        evaluate_indexes(query, database, definitions, optimizer=optimizer)
        assert optimizer.plan_calls > calls  # re-planned, not served stale

    def test_plan_cache_can_be_disabled(self, whatif_setup):
        database, queries, generalization = whatif_setup
        definitions = [c.to_definition() for c in generalization.candidates][:3]
        optimizer = Optimizer(database, enable_plan_cache=False)
        query = next(q for q in queries if not q.is_update)
        evaluate_indexes(query, database, definitions, optimizer=optimizer)
        calls = optimizer.plan_calls
        evaluate_indexes(query, database, definitions, optimizer=optimizer)
        assert optimizer.plan_calls == calls + 1
        assert optimizer.plan_cache_hits == 0


class TestCostingCounters:
    def test_delta_evaluation_costs_fewer_queries(self, whatif_setup):
        """The headline claim: the incremental engine issues far fewer
        per-query what-if costings than legacy full re-evaluation."""
        database, queries, generalization = whatif_setup
        counts = {}
        for incremental in (False, True):
            parameters = AdvisorParameters(use_incremental=incremental,
                                           enable_plan_cache=incremental)
            evaluator = ConfigurationEvaluator(database, queries, parameters)
            search = create_search(SearchAlgorithm.GREEDY_HEURISTIC,
                                   evaluator, parameters)
            search.search(generalization.candidates, None)
            counts[incremental] = evaluator.query_costings
        assert counts[True] < counts[False]
        assert counts[False] / max(counts[True], 1) >= 3.0
