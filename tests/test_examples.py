"""Tier-1 smoke coverage for the ``examples/`` scripts.

The examples are documentation that executes; before this test they
were not exercised by any tier-1 run, so API drift only surfaced when a
human happened to run them.  Each script is imported fresh with
``REPRO_EXAMPLE_SCALE`` shrunk to a tiny size and its ``main()`` run
end to end; the assertion is that it completes and prints the sections
a reader is promised.
"""

from __future__ import annotations

import importlib.util
import os
import sys

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")

#: Tiny but non-degenerate: big enough that every script's flow (index
#: recommendations included) still happens, small enough for tier 1.
SMOKE_SCALE = "0.05"


def _run_example(name: str, monkeypatch, capsys) -> str:
    """Import ``examples/<name>.py`` fresh at smoke scale and run it."""
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", SMOKE_SCALE)
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # A fresh import each run: the scripts read the env var at module
    # load, so a cached module would pin the first scale seen.
    sys.modules.pop(spec.name, None)
    spec.loader.exec_module(module)
    assert module.SCALE == float(SMOKE_SCALE)
    module.main()
    return capsys.readouterr().out


def test_quickstart_example(monkeypatch, capsys):
    out = _run_example("quickstart", monkeypatch, capsys)
    assert "recommended configuration" in out
    assert "CREATE INDEX" in out
    assert "estimated workload improvement" in out


def test_whatif_analysis_example(monkeypatch, capsys):
    out = _run_example("whatif_analysis", monkeypatch, capsys)
    assert "recommended configuration" in out
    assert "what-if" in out
    assert "overtrained configuration" in out


def test_tpox_update_aware_example(monkeypatch, capsys):
    out = _run_example("tpox_update_aware", monkeypatch, capsys)
    assert "Recommendation vs. update share" in out
    assert "update ratio" in out


def test_xmark_tuning_example(monkeypatch, capsys):
    out = _run_example("xmark_tuning", monkeypatch, capsys)
    for step in ("Step 1", "Step 2", "Step 3", "Step 4", "Step 5"):
        assert step in out
    assert "actual wall-clock speedup" in out
