"""Unit tests for the XML node model."""

from __future__ import annotations

import pytest

from repro.xmldb.errors import XmlNodeError
from repro.xmldb.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    NodeKind,
    TextNode,
    build_document,
    distinct_paths,
    iter_paths,
)


class TestTreeConstruction:
    def test_build_document_returns_doc_and_root(self):
        doc, root = build_document("site")
        assert doc.kind is NodeKind.DOCUMENT
        assert root.kind is NodeKind.ELEMENT
        assert doc.root_element is root
        assert root.parent is doc

    def test_append_child_sets_parent(self):
        root = ElementNode("a")
        child = root.append_child(ElementNode("b"))
        assert child.parent is root
        assert root.children == [child]

    def test_add_element_with_text_and_attributes(self):
        root = ElementNode("item")
        child = root.add_element("quantity", text="5", attributes={"unit": "kg"})
        assert child.name == "quantity"
        assert child.string_value() == "5"
        assert child.get_attribute("unit") == "kg"

    def test_append_child_rejects_self(self):
        node = ElementNode("a")
        with pytest.raises(XmlNodeError):
            node.append_child(node)

    def test_append_child_rejects_attribute_node(self):
        node = ElementNode("a")
        with pytest.raises(XmlNodeError):
            node.append_child(AttributeNode("id", "1"))

    def test_set_attribute_replaces_existing(self):
        node = ElementNode("a")
        node.set_attribute("id", "1")
        node.set_attribute("id", "2")
        assert node.get_attribute("id") == "2"
        assert len(node.attributes) == 1

    def test_get_missing_attribute_returns_none(self):
        assert ElementNode("a").get_attribute("nope") is None


class TestNavigation:
    def _sample(self):
        doc, root = build_document("site")
        regions = root.add_element("regions")
        africa = regions.add_element("africa")
        africa.add_element("item", text="x", attributes={"id": "i1"})
        africa.add_element("item", text="y", attributes={"id": "i2"})
        regions.add_element("asia")
        return doc, root, regions, africa

    def test_element_children_skips_text(self):
        _, root, regions, _ = self._sample()
        root.add_text("stray text")
        names = [c.name for c in root.element_children()]
        assert names == ["regions"]

    def test_child_elements_filters_by_name(self):
        _, _, _, africa = self._sample()
        assert len(africa.child_elements("item")) == 2
        assert africa.child_elements("missing") == []

    def test_first_child_element(self):
        _, _, regions, _ = self._sample()
        assert regions.first_child_element("asia").name == "asia"
        assert regions.first_child_element("europe") is None

    def test_descendant_elements_in_document_order(self):
        doc, *_ = self._sample()
        names = [e.name for e in doc.descendant_elements()]
        assert names == ["site", "regions", "africa", "item", "item", "asia"]

    def test_ancestors(self):
        _, root, regions, africa = self._sample()
        item = africa.child_elements("item")[0]
        ancestor_names = [a.name for a in item.ancestors() if a.kind is NodeKind.ELEMENT]
        assert ancestor_names == ["africa", "regions", "site"]

    def test_ancestors_include_self(self):
        _, _, _, africa = self._sample()
        chain = list(africa.ancestors(include_self=True))
        assert chain[0] is africa


class TestValuesAndPaths:
    def test_string_value_concatenates_descendant_text(self):
        root = ElementNode("a")
        root.add_element("b", text="hello ")
        root.add_element("c", text="world")
        assert root.string_value() == "hello world"

    def test_typed_value_normalizes_whitespace(self):
        node = ElementNode("a")
        node.add_text("  5  \n  apples ")
        assert node.typed_value() == "5 apples"

    def test_double_value_casts_or_none(self):
        numeric = ElementNode("n")
        numeric.add_text(" 42.5 ")
        assert numeric.double_value() == pytest.approx(42.5)
        textual = ElementNode("t")
        textual.add_text("hello")
        assert textual.double_value() is None
        empty = ElementNode("e")
        assert empty.double_value() is None

    def test_simple_path_for_elements_and_attributes(self):
        doc, root = build_document("site")
        item = root.add_element("regions").add_element("africa").add_element("item")
        attr = item.set_attribute("id", "i1")
        assert item.simple_path() == "/site/regions/africa/item"
        assert attr.simple_path() == "/site/regions/africa/item/@id"
        assert doc.simple_path() == "/"

    def test_simple_path_is_cached(self):
        doc, root = build_document("site")
        first = root.simple_path()
        assert root.simple_path() is first

    def test_text_node_shares_parent_path(self):
        doc, root = build_document("site")
        child = root.add_element("name", text="x")
        text = child.children[0]
        assert text.simple_path() == "/site/name"


class TestDocumentNode:
    def test_assign_node_ids_document_order(self):
        doc, root = build_document("site")
        a = root.add_element("a", text="1")
        b = root.add_element("b")
        b.set_attribute("id", "x")
        doc.assign_node_ids()
        assert doc.node_id == 0
        assert root.node_id < a.node_id < b.node_id
        assert b.attributes[0].node_id > b.node_id

    def test_total_nodes_counts_everything(self):
        doc, root = build_document("site")
        child = root.add_element("a", text="1", attributes={"id": "x"})
        # document + site + a + text + attribute
        assert doc.total_nodes() == 5

    def test_root_element_none_for_empty_document(self):
        assert DocumentNode().root_element is None


class TestPathHelpers:
    def test_iter_paths_yields_elements_and_attributes(self, tiny_document):
        paths = set(iter_paths(tiny_document))
        assert "/site/regions/africa/item" in paths
        assert "/site/regions/africa/item/@id" in paths
        assert "/site/people/person/profile/@income" in paths

    def test_distinct_paths_sorted_unique(self, tiny_document):
        paths = distinct_paths([tiny_document, tiny_document])
        assert paths == sorted(set(paths))
        assert "/site/people/person/name" in paths
