"""Tests for the unified telemetry plane (PR 10).

Three coordinated properties are pinned here:

* **Registry semantics** -- counters/gauges/fixed-bound histograms,
  instance -> parent -> global chaining (recordings propagate up,
  ``reset`` stays local), deterministic JSON/Prometheus exports with
  wall-derived metrics excluded by default.
* **Tracing is observe-only** -- results with and without a span tree
  are byte-identical (counts, documents examined, extracted values),
  the tree carries the documented span names, and tracing arms per
  call, per executor, or process-wide via ``REPRO_TRACE``.
* **Counter migration equivalence** -- every legacy ad-hoc counter
  attribute (``scan_fallbacks``, ``plan_calls``, ...) stays byte-equal
  to its registry metric across real workloads, including the legacy
  ``executor.counter = 0`` reset idiom.
"""

from __future__ import annotations

import json

import pytest

from _support import (
    EVALUATOR_COUNTERS,
    EXECUTOR_COUNTERS,
    OPTIMIZER_COUNTERS,
    assert_counter_parity,
)
from repro.advisor.benefit import ConfigurationEvaluator
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.telemetry import (
    CacheStatistics,
    CostAccounting,
    MetricsRegistry,
    Span,
    global_registry,
    reset_global_registry,
    span,
    tracing_armed,
)
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload

SELECTIVE = ('for $p in doc("x")/site/people/person '
             'where $p/@id = "p7" return $p/name')
RANGE = ('for $i in doc("x")/site/regions/africa/item '
         'where $i/quantity > 90 return $i/name')
EXTRACTING = ('for $i in doc("x")/site/regions/africa/item '
              'where $i/payment = "Creditcard" return $i/name')
ID_INDEX = IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR)


@pytest.fixture
def executor(varied_database):
    executor = QueryExecutor(varied_database)
    yield executor
    executor.drop_all_indexes()


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("a.b")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset_sets_local_value(self):
        counter = MetricsRegistry().counter("a.b")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0
        counter.reset(3)
        assert counter.value == 3


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g.x")
        gauge.set(2)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_upper_edges_are_inclusive(self):
        # Prometheus `le` semantics: observe(bound) lands in the bucket
        # whose edge it names, not the next one.
        histogram = MetricsRegistry().histogram("h.x", [1, 10])
        for value in (0.5, 1, 1.5, 10, 11):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(24.0)

    def test_bounds_must_be_increasing_and_nonempty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h.empty", [])
        with pytest.raises(ValueError):
            registry.histogram("h.bad", [5, 5])


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b", [1, 2])

    def test_histogram_rebinding_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h.x", [1, 2])
        with pytest.raises(ValueError):
            registry.histogram("h.x", [1, 3])
        # Same bounds: the existing metric comes back.
        assert registry.histogram("h.x", [1, 2]).bounds == (1.0, 2.0)

    @pytest.mark.parametrize("name", ["", "a..b", "a b", "a.b!", ".a"])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(name)

    def test_value_defaults_to_zero_and_rejects_histograms(self):
        registry = MetricsRegistry()
        assert registry.value("never.registered") == 0
        registry.histogram("h.x", [1])
        with pytest.raises(ValueError):
            registry.value("h.x")

    def test_recordings_propagate_to_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("c.x").inc(2)
        child.gauge("g.x").set(4)
        child.histogram("h.x", [1, 2]).observe(1.5)
        assert parent.value("c.x") == 2
        assert parent.value("g.x") == 4.0
        assert parent.get("h.x").count == 1

    def test_reset_is_local_parent_keeps_totals(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("c.x").inc(5)
        child.counter("c.x").reset()
        assert child.value("c.x") == 0
        assert parent.value("c.x") == 5

    def test_wall_metrics_excluded_from_default_exports(self):
        registry = MetricsRegistry()
        registry.counter("logical.count").inc()
        registry.histogram("wall.seconds", [0.1], wall=True).observe(0.05)
        assert set(registry.snapshot()) == {"logical.count"}
        assert set(registry.snapshot(include_wall=True)) == {
            "logical.count", "wall.seconds"}
        assert "wall_seconds" not in registry.to_prometheus()
        assert "wall_seconds" in registry.to_prometheus(include_wall=True)

    def test_to_json_is_deterministic_and_sorted(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.last").inc(3)
            registry.counter("a.first").inc(1)
            registry.histogram("m.middle", [1, 2]).observe(1)
            return registry.to_json()

        first, second = build(), build()
        assert first == second
        payload = json.loads(first)
        assert list(payload) == sorted(payload)
        assert payload["m.middle"]["buckets"] == [1, 0, 0]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("executor.queries.executed").inc(3)
        registry.histogram("h.x", [1, 10]).observe(1)
        text = registry.to_prometheus()
        assert "# TYPE executor_queries_executed counter" in text
        assert "executor_queries_executed 3" in text
        # Cumulative bucket counts with an explicit +Inf bucket.
        assert 'h_x_bucket{le="1.0"} 1' in text
        assert 'h_x_bucket{le="10.0"} 1' in text
        assert 'h_x_bucket{le="+Inf"} 1' in text
        assert "h_x_count 1" in text

    def test_global_registry_is_process_wide_root(self):
        reset_global_registry()
        child = MetricsRegistry(parent=global_registry())
        child.counter("test.global.chain").inc(2)
        assert global_registry().value("test.global.chain") == 2
        reset_global_registry()
        assert global_registry().value("test.global.chain") == 0


class TestCacheStatistics:
    def test_ratios(self):
        stats = CacheStatistics(plan_cache_hits=3, plan_cache_misses=1,
                                memo_hits=10, memo_misses=5)
        assert stats.plan_cache_ratio == pytest.approx(0.75)
        assert stats.memo_ratio == pytest.approx(10 / 15)

    def test_zero_totals_do_not_divide(self):
        assert CacheStatistics().plan_cache_ratio == 0.0
        assert CacheStatistics().memo_ratio == 0.0

    def test_describe(self):
        stats = CacheStatistics(plan_cache_hits=3, plan_cache_misses=1,
                                memo_hits=10, memo_misses=5)
        assert stats.describe() == (
            "plan cache 3/4 hits (75.0%), evaluator memo 10/15 hits (66.7%)")


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpan:
    def test_tree_building_and_walk(self):
        root = Span("query", query_id="q1")
        plan = root.child("plan", plan_shape="document-scan")
        root.child("scan")
        plan.annotate(plan_cache="miss")
        assert [node.name for node in root.walk()] == ["query", "plan", "scan"]
        assert root.find("plan") is plan
        assert root.find("missing") is None
        assert plan.attrs == {"plan_shape": "document-scan",
                              "plan_cache": "miss"}

    def test_find_all(self):
        root = Span("query")
        root.child("route")
        root.child("route")
        assert len(root.find_all("route")) == 2

    def test_render_indents_and_sorts_attrs(self):
        root = Span("query", query_id="q1")
        root.child("scan", b=2, a=1)
        rendered = root.render(include_wall=False)
        assert rendered.splitlines() == [
            "query  query_id='q1'",
            "  scan  a=1  b=2",
        ]

    def test_to_dict_can_drop_wall_times(self):
        root = Span("query")
        root.elapsed_seconds = 0.25
        as_dict = root.to_dict()
        assert as_dict["elapsed_seconds"] == 0.25
        assert "elapsed_seconds" not in root.to_dict(include_wall=False)

    def test_span_contextmanager_noops_without_parent(self):
        with span(None, "plan") as node:
            assert node is None

    def test_span_contextmanager_records_duration_on_raise(self):
        root = Span("query")
        with pytest.raises(RuntimeError):
            with span(root, "plan") as node:
                raise RuntimeError("replanned")
        assert root.children == [node]
        assert node.elapsed_seconds >= 0.0


class TestTracingArmed:
    def test_env_arms_and_disarms(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_armed()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracing_armed()
        monkeypatch.setenv("REPRO_TRACE", "")
        assert not tracing_armed()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_armed()


# ----------------------------------------------------------------------
# Cost accounting
# ----------------------------------------------------------------------
def _sample(i: int, shape: str = "document-scan") -> dict:
    return dict(query_id=f"q{i}", plan_shape=shape, predicted_cost=10.0,
                measured_seconds=0.002, documents_examined=120,
                index_entries_scanned=0)


class TestCostAccounting:
    def test_capacity_keeps_oldest_and_counts_dropped(self):
        accounting = CostAccounting(capacity=2)
        for i in range(4):
            accounting.record(**_sample(i))
        assert len(accounting) == 2
        assert [s.query_id for s in accounting.samples] == ["q0", "q1"]
        assert accounting.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CostAccounting(capacity=0)

    def test_by_plan_shape_aggregates(self):
        accounting = CostAccounting()
        accounting.record(**_sample(0))
        accounting.record(**_sample(1))
        accounting.record(**_sample(2, shape="index-plan[1]"))
        shapes = accounting.by_plan_shape()
        assert shapes["document-scan"]["samples"] == 2
        assert shapes["document-scan"]["predicted_cost_total"] == pytest.approx(20.0)
        assert shapes["document-scan"]["seconds_per_cost_unit"] == \
            pytest.approx(0.004 / 20.0)
        assert shapes["index-plan[1]"]["samples"] == 1

    def test_snapshot_drops_wall_times_by_default(self):
        accounting = CostAccounting()
        accounting.record(**_sample(0))
        deterministic = accounting.snapshot()
        assert deterministic["samples"] == 1
        entry = deterministic["by_plan_shape"]["document-scan"]
        assert "measured_seconds_total" not in entry
        wall = accounting.snapshot(include_wall=True)
        assert wall["by_plan_shape"]["document-scan"][
            "measured_seconds_total"] == pytest.approx(0.002)

    def test_error_series_pairs_predicted_and_measured(self):
        accounting = CostAccounting()
        accounting.record(**_sample(0))
        assert accounting.error_series() == [
            ("q0", "document-scan", 10.0, 0.002)]


# ----------------------------------------------------------------------
# Executor tracing: observe-only span trees and cost pairing
# ----------------------------------------------------------------------
class TestExecutorTracing:
    def test_untraced_by_default(self, monkeypatch, varied_database):
        # Build a fresh executor with the arming variable absent so the
        # genuine default is exercised even when the whole suite runs
        # under REPRO_TRACE=1 (as CI's telemetry job does).
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        executor = QueryExecutor(varied_database)
        assert executor.execute(SELECTIVE).trace is None
        assert len(executor.cost_accounting.samples) == 0

    def test_traced_scan_has_documented_span_names(self, executor):
        result = executor.execute(SELECTIVE, trace=True)
        trace = result.trace
        assert trace is not None and trace.name == "query"
        names = [node.name for node in trace.walk()]
        for expected in ("parse", "compile", "plan", "route", "scan"):
            assert expected in names
        assert trace.attrs["result_count"] == result.result_count
        assert trace.attrs["documents_examined"] == result.documents_examined
        scan = trace.find("scan")
        assert scan.attrs["documents_examined"] == result.documents_examined

    def test_plan_span_attribution(self, executor):
        first = executor.execute(SELECTIVE, trace=True).trace.find("plan")
        assert first.attrs["plan_cache"] == "miss"
        assert first.attrs["plan_shape"] == "document-scan"
        assert first.attrs["predicted_cost"] > 0
        second = executor.execute(SELECTIVE, trace=True).trace.find("plan")
        assert second.attrs["plan_cache"] == "hit"

    def test_traced_index_plan_has_probe_and_residual_spans(self, executor):
        executor.create_indexes([ID_INDEX])
        result = executor.execute(SELECTIVE, trace=True)
        assert result.used_index_plan
        probe = result.trace.find("index-probe")
        assert probe is not None
        assert probe.attrs["indexes"] == [ID_INDEX.name]
        assert probe.attrs["entries_scanned"] == result.index_entries_scanned
        assert result.trace.find("residual") is not None

    def test_extract_span_counts_value_stream(self, executor):
        result = executor.execute(EXTRACTING, trace=True, extract_values=True)
        extract = result.trace.find("extract")
        assert extract.attrs["extracted_values"] == len(result.extracted_values)

    def test_executor_default_and_per_call_override(self, varied_database):
        executor = QueryExecutor(varied_database, trace=True)
        assert executor.execute(SELECTIVE).trace is not None
        assert executor.execute(SELECTIVE, trace=False).trace is None

    def test_env_arms_executor_default(self, varied_database, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        armed = QueryExecutor(varied_database)
        assert armed.trace_by_default
        monkeypatch.setenv("REPRO_TRACE", "0")
        disarmed = QueryExecutor(varied_database)
        assert not disarmed.trace_by_default

    def test_traced_results_byte_identical_to_untraced(self, varied_database):
        untraced = QueryExecutor(varied_database, trace=False)
        traced = QueryExecutor(varied_database, trace=True)
        for statement in (SELECTIVE, RANGE, EXTRACTING):
            plain = untraced.execute(statement, extract_values=True)
            spanned = traced.execute(statement, extract_values=True)
            assert plain.result_count == spanned.result_count
            assert plain.documents_examined == spanned.documents_examined
            assert plain.extracted_values == spanned.extracted_values

    def test_cost_accounting_pairs_only_traced_planned_queries(self, executor):
        executor.execute(SELECTIVE, trace=False)
        assert len(executor.cost_accounting.samples) == 0
        result = executor.execute(SELECTIVE, trace=True)
        samples = executor.cost_accounting.samples
        assert len(samples) == 1
        sample = samples[0]
        assert sample.plan_shape == "document-scan"
        assert sample.predicted_cost == \
            result.trace.find("plan").attrs["predicted_cost"]
        assert sample.documents_examined == result.documents_examined
        assert sample.measured_seconds > 0

    def test_queries_traced_counter(self, executor):
        executor.execute(SELECTIVE, trace=False)
        executor.execute(SELECTIVE, trace=True)
        assert executor.metrics.value("executor.queries.executed") == 2
        assert executor.metrics.value("executor.queries.traced") == 1


# ----------------------------------------------------------------------
# Counter-migration equivalence (legacy attrs == registry metrics)
# ----------------------------------------------------------------------
class TestCounterMigration:
    def test_executor_parity_across_workload(self, executor):
        executor.create_indexes([ID_INDEX])
        for statement in (SELECTIVE, RANGE, EXTRACTING):
            executor.execute(statement, extract_values=True)
        assert_counter_parity(executor, EXECUTOR_COUNTERS)
        assert_counter_parity(executor.optimizer, OPTIMIZER_COUNTERS)

    def test_legacy_reset_idiom_stays_byte_equal(self, executor):
        executor.execute(RANGE)
        assert executor.scan_node_materializations >= 0
        executor.scan_node_materializations = 0
        executor.scan_fallbacks = 0
        assert executor.metrics.value("executor.scan.node_materializations") == 0
        assert executor.metrics.value("executor.scan.fallbacks") == 0
        assert_counter_parity(executor, EXECUTOR_COUNTERS)

    def test_instance_reset_preserves_parent_totals(self, varied_database):
        reset_global_registry()
        executor = QueryExecutor(varied_database)
        executor.execute(SELECTIVE)
        executed = global_registry().value("executor.queries.executed")
        assert executed == 1
        # The legacy zeroing idiom resets the instance window only.
        executor._m_queries_executed.reset()
        assert executor.metrics.value("executor.queries.executed") == 0
        assert global_registry().value("executor.queries.executed") == executed

    def test_evaluator_parity(self, varied_database):
        workload = Workload(name="telemetry-parity")
        workload.add(RANGE, frequency=2.0)
        workload.add(SELECTIVE, frequency=1.0)
        queries = normalize_workload(workload)
        evaluator = ConfigurationEvaluator(varied_database, queries)
        index = IndexDefinition.create("/site/regions/africa/item/quantity",
                                       ValueType.DOUBLE)
        evaluator.evaluate(IndexConfiguration())
        evaluator.evaluate(IndexConfiguration((index,)))
        evaluator.evaluate(IndexConfiguration((index,)))  # memo hits
        assert evaluator.memo_hits > 0
        assert_counter_parity(evaluator, EVALUATOR_COUNTERS)
        assert_counter_parity(evaluator.optimizer, OPTIMIZER_COUNTERS)

    def test_component_chain_rolls_up_to_caller_registry(self, varied_database):
        hub = MetricsRegistry()
        executor = QueryExecutor(varied_database, registry=hub)
        executor.execute(SELECTIVE)
        assert hub.value("executor.queries.executed") == 1
        assert hub.value("optimizer.plan.calls") == \
            executor.optimizer.plan_calls
