"""Tests for workload-level execution measurement
(:mod:`repro.executor.measurement`).

The online tuning monitor builds on the executor's measured cost
proxies, so the measurement semantics are locked in here: which runs
:func:`measure_workload` / :func:`measure_scan_modes` perform, what the
aggregates count, that updates are filtered out, and that the catalog is
always left as it was found.
"""

from __future__ import annotations

import pytest

from repro.executor.measurement import measure_scan_modes, measure_workload
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.xquery.model import ValueType, Workload
from repro.xquery.normalizer import normalize_workload


@pytest.fixture()
def site_workload():
    workload = Workload(name="measure")
    workload.add('for $i in doc("site.xml")/site/regions/africa/item '
                 'where $i/quantity > 5 return $i/name', frequency=3.0)
    workload.add('for $p in doc("site.xml")/site/people/person '
                 'where $p/profile/age > 60 return $p/name')
    return workload


@pytest.fixture()
def varied_workload():
    """A selective workload against the varied database, where an index
    plan genuinely beats the scan."""
    workload = Workload(name="measure-varied")
    workload.add('for $i in doc("site.xml")/site/regions/africa/item '
                 'where $i/quantity > 95 return $i/name', frequency=3.0)
    workload.add('for $p in doc("site.xml")/site/people/person '
                 'where $p/profile/age > 60 return $p/name')
    return workload


@pytest.fixture()
def site_configuration():
    return IndexConfiguration([
        IndexDefinition.create("/site/regions/africa/item/quantity",
                               ValueType.DOUBLE),
    ])


def test_measure_workload_baseline_only(tiny_database, site_workload):
    """Without a configuration only the no-indexes run happens."""
    measurements = measure_workload(tiny_database, site_workload)
    assert set(measurements) == {"no-indexes"}
    baseline = measurements["no-indexes"]
    assert baseline.label == "no-indexes"
    assert baseline.query_count == len(site_workload)
    # A scan examines every document per query; no index is touched.
    assert baseline.documents_examined == \
        len(site_workload) * sum(len(c) for c in tiny_database.collections)
    assert baseline.index_entries_scanned == 0
    assert baseline.queries_using_indexes == 0


def test_measure_workload_with_configuration(varied_database, varied_workload,
                                             site_configuration):
    measurements = measure_workload(varied_database, varied_workload,
                                    site_configuration)
    assert set(measurements) == {"no-indexes", "recommended"}
    baseline, indexed = measurements["no-indexes"], measurements["recommended"]
    # Result identity between the runs, per query and in order.
    assert [r.query_id for r in baseline.per_query] == \
        [r.query_id for r in indexed.per_query]
    for base_row, indexed_row in zip(baseline.per_query, indexed.per_query):
        assert base_row.result_count == indexed_row.result_count
    # The indexed run actually used the configuration for the covered
    # query, and did strictly less document work.
    assert indexed.queries_using_indexes == 1
    assert indexed.index_entries_scanned > 0
    assert indexed.documents_examined < baseline.documents_examined
    # Aggregates are the sums of the per-query rows.
    assert indexed.documents_examined == \
        sum(r.documents_examined for r in indexed.per_query)
    assert indexed.index_entries_scanned == \
        sum(r.index_entries_scanned for r in indexed.per_query)


def test_measure_workload_leaves_catalog_clean(varied_database,
                                               varied_workload,
                                               site_configuration):
    """Repeated measurements must start from a clean slate: no physical
    index definitions survive the call."""
    assert varied_database.catalog.physical_indexes == []
    measure_workload(varied_database, varied_workload, site_configuration)
    assert varied_database.catalog.physical_indexes == []
    # And a second run is unaffected by the first.
    again = measure_workload(varied_database, varied_workload,
                             site_configuration)
    assert again["recommended"].queries_using_indexes == 1


def test_measure_workload_filters_updates(tiny_database, site_workload):
    site_workload.add("INSERT INTO site VALUES "
                      "('<site><regions/></site>')")
    measurements = measure_workload(tiny_database, site_workload)
    assert measurements["no-indexes"].query_count == 2


def test_measure_workload_accepts_normalized_queries(tiny_database,
                                                     site_workload):
    queries = normalize_workload(site_workload)
    from_workload = measure_workload(tiny_database, site_workload)
    from_queries = measure_workload(tiny_database, queries)
    assert [r.result_count for r in from_workload["no-indexes"].per_query] \
        == [r.result_count for r in from_queries["no-indexes"].per_query]


def test_measure_scan_modes_equivalent_counts(tiny_database, site_workload):
    """The interpretive and summary-backed scan engines must agree on
    every per-query result count; neither touches an index."""
    measurements = measure_scan_modes(tiny_database, site_workload)
    assert set(measurements) == {"scan-interpretive", "scan-summary"}
    interpretive = measurements["scan-interpretive"]
    summary = measurements["scan-summary"]
    assert interpretive.query_count == summary.query_count == 2
    for interp_row, summary_row in zip(interpretive.per_query,
                                       summary.per_query):
        assert interp_row.result_count == summary_row.result_count
        assert not interp_row.used_index_plan
        assert not summary_row.used_index_plan
    assert interpretive.index_entries_scanned == 0
    assert summary.index_entries_scanned == 0


def test_measurement_describe_mentions_the_label(tiny_database, site_workload):
    measurements = measure_workload(tiny_database, site_workload)
    description = measurements["no-indexes"].describe()
    assert description.startswith("no-indexes:")
    assert "2 queries" in description
