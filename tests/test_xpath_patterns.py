"""Unit tests for index patterns: parsing, matching, containment, generalization."""

from __future__ import annotations

import pytest

from repro.xpath.errors import XPathParseError
from repro.xpath.patterns import (
    UNIVERSAL_ATTRIBUTE_PATTERN,
    UNIVERSAL_ELEMENT_PATTERN,
    PathPattern,
    common_prefix_length,
    generalize_pair,
    generalize_prefix,
    generalize_tail,
    pattern_contains,
    split_simple_path,
)


class TestParsingAndRendering:
    @pytest.mark.parametrize("text", [
        "/a", "/a/b/c", "//a", "/a//b", "/a/*/c", "//*", "//@*",
        "/site/regions/*/item/quantity", "/a/b/@id", "//item/@id",
    ])
    def test_round_trip(self, text):
        assert PathPattern.parse(text).to_text() == text

    def test_unrooted_pattern_gets_rooted(self):
        assert PathPattern.parse("a/b").to_text() == "/a/b"

    def test_steps_and_flags(self):
        pattern = PathPattern.parse("/site//item/@id")
        assert pattern.length == 3
        assert not pattern.steps[0].descendant
        assert pattern.steps[1].descendant
        assert pattern.last_step.is_attribute
        assert pattern.indexes_attribute
        assert pattern.has_descendant_step

    @pytest.mark.parametrize("text", ["", "   ", "/a[b]", "/a(b)", "/a//", "//", "/a/b/"])
    def test_invalid_patterns_raise(self, text):
        with pytest.raises(XPathParseError):
            PathPattern.parse(text)

    def test_patterns_are_hashable_and_equal_by_value(self):
        a = PathPattern.parse("/a/b")
        b = PathPattern.parse("/a/b")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSplitSimplePath:
    def test_basic(self):
        assert split_simple_path("/a/b/@c") == ["a", "b", "@c"]

    def test_root(self):
        assert split_simple_path("/") == []
        assert split_simple_path("") == []


class TestMatching:
    @pytest.mark.parametrize("pattern,path,expected", [
        ("/a/b", "/a/b", True),
        ("/a/b", "/a/b/c", False),
        ("/a/b", "/a", False),
        ("/a/*/c", "/a/b/c", True),
        ("/a/*/c", "/a/b/d", False),
        ("//c", "/a/b/c", True),
        ("//c", "/c", True),
        ("//c", "/a/c/b", False),
        ("/a//c", "/a/x/y/c", True),
        ("/a//c", "/b/x/c", False),
        ("//*", "/a/b/c", True),
        ("//*", "/a/b/@id", False),
        ("//@*", "/a/b/@id", True),
        ("//@id", "/a/b/@id", True),
        ("//@id", "/a/b/@other", False),
        ("/a/b/@id", "/a/b/@id", True),
        ("/a/*", "/a/@id", False),
        ("/a/@*", "/a/@id", True),
        ("/site/regions/*/item/quantity", "/site/regions/africa/item/quantity", True),
        ("/site/regions/*/item/quantity", "/site/regions/africa/item/price", False),
        ("/site//item//date", "/site/regions/africa/item/mailbox/mail/date", True),
    ])
    def test_matches(self, pattern, path, expected):
        assert PathPattern.parse(pattern).matches(path) is expected

    def test_matching_paths_filter(self):
        pattern = PathPattern.parse("/a/*/c")
        paths = ["/a/b/c", "/a/x/c", "/a/b/d", "/z/b/c"]
        assert pattern.matching_paths(paths) == ["/a/b/c", "/a/x/c"]


class TestContainment:
    @pytest.mark.parametrize("general,specific,expected", [
        ("/a/b", "/a/b", True),
        ("/a/*", "/a/b", True),
        ("/a/b", "/a/*", False),
        ("//b", "/a/b", True),
        ("/a/b", "//b", False),
        ("//*", "/a/b/c", True),
        ("//*", "//b", True),
        ("//*", "//@id", False),
        ("//@*", "//@id", True),
        ("/a//c", "/a/b/c", True),
        ("/a/b/c", "/a//c", False),
        ("/site/regions/*/item/quantity", "/site/regions/africa/item/quantity", True),
        ("/site/regions/africa/item/quantity", "/site/regions/*/item/quantity", False),
        ("/site/regions/*/item/*", "/site/regions/*/item/quantity", True),
        ("/site//item", "/site/regions/*/item", True),
        ("/site/regions/*/item", "/site//item", False),
        ("/a/*/c", "/a//c", False),          # // can skip several levels
        ("/a//c", "/a/*/c", True),
        ("//a//b", "//a/b", True),
        ("//a/b", "//a//b", False),
        ("/a", "/b", False),
        ("/a/*", "/a/@id", False),
        ("/a/@*", "/a/@id", True),
    ])
    def test_pattern_contains(self, general, specific, expected):
        assert pattern_contains(PathPattern.parse(general),
                                PathPattern.parse(specific)) is expected

    def test_containment_is_reflexive(self):
        for text in ["/a/b", "//a", "/a/*/c", "//*"]:
            pattern = PathPattern.parse(text)
            assert pattern.contains(pattern)

    def test_equivalence(self):
        assert PathPattern.parse("/a/b").equivalent(PathPattern.parse("/a/b"))
        assert not PathPattern.parse("/a/*").equivalent(PathPattern.parse("/a/b"))

    def test_universal_patterns(self):
        assert UNIVERSAL_ELEMENT_PATTERN.contains(PathPattern.parse("/any/depth/path"))
        assert UNIVERSAL_ATTRIBUTE_PATTERN.contains(PathPattern.parse("/any/path/@attr"))
        assert not UNIVERSAL_ELEMENT_PATTERN.contains(PathPattern.parse("/a/@attr"))


class TestGeneralization:
    def test_paper_example_first_step(self):
        first = PathPattern.parse("/regions/namerica/item/quantity")
        second = PathPattern.parse("/regions/africa/item/quantity")
        result = generalize_pair(first, second)
        assert result is not None
        assert result.to_text() == "/regions/*/item/quantity"

    def test_paper_example_second_step(self):
        generalized = PathPattern.parse("/regions/*/item/quantity")
        third = PathPattern.parse("/regions/samerica/item/price")
        result = generalize_pair(generalized, third)
        assert result is not None
        assert result.to_text() == "/regions/*/item/*"

    def test_generalized_pattern_contains_sources(self):
        first = PathPattern.parse("/regions/namerica/item/quantity")
        second = PathPattern.parse("/regions/africa/item/quantity")
        result = generalize_pair(first, second)
        assert result.contains(first) and result.contains(second)

    def test_no_generalization_for_identical_patterns(self):
        pattern = PathPattern.parse("/a/b/c")
        assert generalize_pair(pattern, pattern) is None

    def test_no_generalization_for_different_lengths(self):
        assert generalize_pair(PathPattern.parse("/a/b"),
                               PathPattern.parse("/a/b/c")) is None

    def test_no_generalization_across_axes(self):
        assert generalize_pair(PathPattern.parse("/a/b"),
                               PathPattern.parse("/a//b")) is None

    def test_no_generalization_mixing_element_and_attribute(self):
        assert generalize_pair(PathPattern.parse("/a/b"),
                               PathPattern.parse("/a/@b")) is None

    def test_no_result_when_nothing_new(self):
        # Second pattern already contained in the first at the same arity.
        assert generalize_pair(PathPattern.parse("/a/*"),
                               PathPattern.parse("/a/b")) is None

    def test_attribute_wildcard_generalization(self):
        result = generalize_pair(PathPattern.parse("/a/b/@id"),
                                 PathPattern.parse("/a/b/@key"))
        assert result.to_text() == "/a/b/@*"

    def test_generalize_tail(self):
        assert generalize_tail(PathPattern.parse("/a/b/c")).to_text() == "/a/b/*"
        assert generalize_tail(PathPattern.parse("/a/b/*")) is None
        assert generalize_tail(PathPattern.parse("/a/b/@id")).to_text() == "/a/b/@*"

    def test_generalize_prefix(self):
        result = generalize_prefix(PathPattern.parse("/site/people/person/name"),
                                   PathPattern.parse("/site/people/person/profile/age"))
        assert result.to_text() == "/site/people/person//*"

    def test_generalize_prefix_requires_divergence(self):
        assert generalize_prefix(PathPattern.parse("/a/b"),
                                 PathPattern.parse("/a/b/c")) is None
        assert generalize_prefix(PathPattern.parse("/a/b"),
                                 PathPattern.parse("/x/y")) is None

    def test_common_prefix_length(self):
        assert common_prefix_length(PathPattern.parse("/a/b/c"),
                                    PathPattern.parse("/a/b/d")) == 2
        assert common_prefix_length(PathPattern.parse("/a"),
                                    PathPattern.parse("/b")) == 0


class TestPatternHelpers:
    def test_with_wildcard_at(self):
        pattern = PathPattern.parse("/a/b/c")
        assert pattern.with_wildcard_at(1).to_text() == "/a/*/c"
        with pytest.raises(Exception):
            pattern.with_wildcard_at(9)

    def test_prefix_and_append(self):
        pattern = PathPattern.parse("/a/b/c")
        assert pattern.prefix(2).to_text() == "/a/b"
        assert pattern.prefix(2).append_step("*", descendant=True).to_text() == "/a/b//*"

    def test_generality_score_orders_sensibly(self):
        specific = PathPattern.parse("/site/regions/africa/item/quantity")
        wildcard = PathPattern.parse("/site/regions/*/item/quantity")
        universal = PathPattern.parse("//*")
        assert specific.generality_score() < wildcard.generality_score()
        assert wildcard.generality_score() < universal.generality_score()

    def test_wildcard_count(self):
        assert PathPattern.parse("/a/*/b/*").wildcard_count == 2
