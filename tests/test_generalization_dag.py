"""Unit tests for candidate generalization and the generalization DAG."""

from __future__ import annotations

import pytest

from repro.advisor.candidates import CandidateIndex, CandidateSet
from repro.advisor.config import AdvisorParameters
from repro.advisor.dag import GeneralizationDag
from repro.advisor.generalization import generalize_candidates
from repro.xpath.patterns import PathPattern
from repro.xquery.model import ValueType


def _basic(pattern, value_type=ValueType.DOUBLE, queries=()):
    return CandidateIndex(pattern=PathPattern.parse(pattern), value_type=value_type,
                          source="basic", benefiting_queries=set(queries))


@pytest.fixture
def paper_candidates():
    """The running example of Section 2.2."""
    return CandidateSet([
        _basic("/regions/namerica/item/quantity", queries={"q1"}),
        _basic("/regions/africa/item/quantity", queries={"q2"}),
        _basic("/regions/samerica/item/price", queries={"q3"}),
    ])


class TestGeneralizationRules:
    def test_paper_example_patterns_generated(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        patterns = {c.pattern.to_text() for c in result.candidates}
        assert "/regions/*/item/quantity" in patterns
        assert "/regions/*/item/*" in patterns

    def test_generalized_candidates_marked_and_counted(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        assert result.basic_count == 3
        assert result.generalized_count == len(result.candidates) - 3
        generalized = result.candidates.get(("/regions/*/item/quantity", "DOUBLE"))
        assert generalized.is_generalized

    def test_query_attribution_propagates_to_general_candidates(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        star = result.candidates.get(("/regions/*/item/*", "DOUBLE"))
        assert {"q1", "q2", "q3"} <= star.benefiting_queries

    def test_value_types_not_mixed(self):
        candidates = CandidateSet([
            _basic("/a/b/c", ValueType.DOUBLE),
            _basic("/a/x/c", ValueType.VARCHAR),
        ])
        result = generalize_candidates(candidates)
        assert result.candidates.get(("/a/*/c", "DOUBLE")) is None
        assert result.candidates.get(("/a/*/c", "VARCHAR")) is None

    def test_zero_rounds_keeps_basic_only(self, paper_candidates):
        result = generalize_candidates(paper_candidates,
                                       AdvisorParameters(generalization_rounds=0))
        assert len(result.candidates) == 3
        assert result.rounds_used == 0

    def test_fixpoint_reached_before_round_limit(self, paper_candidates):
        few = generalize_candidates(paper_candidates,
                                    AdvisorParameters(generalization_rounds=3))
        many = generalize_candidates(paper_candidates,
                                     AdvisorParameters(generalization_rounds=10))
        assert {c.key for c in few.candidates} == {c.key for c in many.candidates}

    def test_max_candidates_cap(self, paper_candidates):
        result = generalize_candidates(paper_candidates,
                                       AdvisorParameters(max_candidates=4))
        assert len(result.candidates) <= 4

    def test_prefix_generalization_toggle(self):
        candidates = CandidateSet([
            _basic("/site/people/person/name", ValueType.VARCHAR),
            _basic("/site/people/person/address/city", ValueType.VARCHAR),
        ])
        with_prefix = generalize_candidates(
            candidates, AdvisorParameters(enable_prefix_generalization=True))
        without_prefix = generalize_candidates(
            candidates, AdvisorParameters(enable_prefix_generalization=False))
        assert with_prefix.candidates.get(("/site/people/person//*", "VARCHAR")) is not None
        assert without_prefix.candidates.get(("/site/people/person//*", "VARCHAR")) is None

    def test_describe(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        assert "generalization" in result.describe()


class TestGeneralizationDag:
    def test_parents_are_direct_generalizations(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        dag = result.dag
        specific = result.candidates.get(("/regions/africa/item/quantity", "DOUBLE"))
        parent_patterns = {p.pattern.to_text() for p in dag.parents_of(specific)}
        assert "/regions/*/item/quantity" in parent_patterns
        # /regions/*/item/* is an ancestor but NOT a direct parent.
        assert "/regions/*/item/*" not in parent_patterns

    def test_children_inverse_of_parents(self, paper_candidates):
        dag = generalize_candidates(paper_candidates).dag
        for candidate in dag.candidates:
            for parent in dag.parents_of(candidate):
                child_keys = {c.key for c in dag.children_of(parent)}
                assert candidate.key in child_keys

    def test_roots_have_no_parents_and_cover_all(self, paper_candidates):
        result = generalize_candidates(paper_candidates)
        dag = result.dag
        roots = dag.roots
        assert roots
        for root in roots:
            assert dag.parents_of(root) == []
        # Every candidate is a descendant of (or is) some root.
        covered = {root.key for root in roots}
        for root in roots:
            covered.update(c.key for c in dag.descendants_of(root))
        assert covered == {c.key for c in result.candidates}

    def test_leaves_are_most_specific(self, paper_candidates):
        dag = generalize_candidates(paper_candidates).dag
        leaf_patterns = {c.pattern.to_text() for c in dag.leaves}
        assert "/regions/africa/item/quantity" in leaf_patterns
        assert "/regions/*/item/*" not in leaf_patterns

    def test_depth_at_least_two_for_generalized_set(self, paper_candidates):
        dag = generalize_candidates(paper_candidates).dag
        assert dag.depth() >= 2

    def test_edge_and_node_counts(self, paper_candidates):
        dag = generalize_candidates(paper_candidates).dag
        assert dag.node_count == len(dag.candidates)
        assert dag.edge_count >= dag.node_count - len(dag.roots)

    def test_render_contains_roots_and_indentation(self, paper_candidates):
        dag = generalize_candidates(paper_candidates).dag
        text = dag.render()
        assert "generalization DAG" in text
        assert "/regions/*/item/*" in text

    def test_dag_over_basic_only_is_flat(self):
        candidates = CandidateSet([_basic("/a/b"), _basic("/c/d")])
        dag = GeneralizationDag(candidates)
        assert dag.depth() == 1
        assert len(dag.roots) == 2
        assert dag.edge_count == 0

    def test_same_pattern_different_types_are_unrelated(self):
        candidates = CandidateSet([
            _basic("/a/*", ValueType.DOUBLE),
            _basic("/a/b", ValueType.VARCHAR),
        ])
        dag = GeneralizationDag(candidates)
        assert len(dag.roots) == 2
