"""Unit tests for the XQuery (FLWOR) and SQL/XML front-end parsers."""

from __future__ import annotations

import pytest

from repro.xquery.errors import QueryParseError
from repro.xquery.sqlxml_parser import looks_like_sqlxml, parse_sqlxml
from repro.xquery.xquery_parser import parse_xquery, strip_doc_function


class TestStripDocFunction:
    @pytest.mark.parametrize("text,expected", [
        ('doc("xmark.xml")/site/regions', "/site/regions"),
        ("doc('x.xml')//item", "//item"),
        ('collection("orders")/FIXML/Order', "/FIXML/Order"),
        ('db2-fn:xmlcolumn("T.DOC")/Customer', "/Customer"),
        ("/already/plain", "/already/plain"),
        ('doc("only.xml")', "/"),
    ])
    def test_stripping(self, text, expected):
        assert strip_doc_function(text) == expected


class TestXQueryParsing:
    def test_simple_flwor(self):
        ast = parse_xquery(
            'for $i in doc("x")/site/regions/africa/item '
            'where $i/quantity > 5 return $i/name')
        assert len(ast.bindings) == 1
        binding = ast.bindings[0]
        assert binding.variable == "i"
        assert binding.kind == "for"
        assert binding.source.to_xpath() == "/site/regions/africa/item"
        assert ast.where is not None
        assert len(ast.return_paths) == 1
        assert ast.return_paths[0].to_xpath() == "$i/name"

    def test_multiple_for_bindings(self):
        ast = parse_xquery(
            'for $a in doc("x")/site/open_auctions/open_auction, '
            '$p in doc("x")/site/people/person '
            'where $a/seller/@person = "p1" return $a/current')
        assert [b.variable for b in ast.bindings] == ["a", "p"]

    def test_let_binding(self):
        ast = parse_xquery(
            'for $i in doc("x")/site/regions/africa/item '
            'let $q := $i/quantity '
            'where $q > 5 return $i/name')
        kinds = [b.kind for b in ast.bindings]
        assert kinds == ["for", "let"]
        assert ast.bindings[1].source.variable == "i"

    def test_order_by_clause(self):
        ast = parse_xquery(
            'for $i in doc("x")//item order by $i/name descending return $i/name')
        assert len(ast.order_by) == 1
        assert ast.order_by[0].to_xpath() == "$i/name"

    def test_return_with_element_constructor(self):
        ast = parse_xquery(
            'for $i in doc("x")//item where $i/quantity > 5 '
            'return <result>{$i/name}{$i/price}</result>')
        rendered = {p.to_xpath() for p in ast.return_paths}
        assert "$i/name" in rendered and "$i/price" in rendered

    def test_binding_source_with_predicate(self):
        ast = parse_xquery(
            'for $p in doc("x")/site/people/person[profile/age > 30] return $p/name')
        assert ast.bindings[0].source.has_predicates()

    def test_plain_path_query(self):
        ast = parse_xquery('doc("x.xml")/site/regions/africa/item/name')
        assert ast.body_path is not None
        assert not ast.bindings
        assert ast.body_path.to_xpath() == "/site/regions/africa/item/name"

    def test_where_with_conjunction(self):
        ast = parse_xquery(
            'for $i in doc("x")//item '
            'where $i/quantity > 5 and $i/payment = "Cash" return $i')
        assert ast.where is not None

    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "for $i in return $i",
        "for $i doc('x')/a return $i",           # missing 'in'
        'for $i in doc("x")/a where $i/b > 1',   # missing return
        "let $x = /a return $x",                  # '=' instead of ':='
    ])
    def test_malformed_queries_raise(self, text):
        with pytest.raises(QueryParseError):
            parse_xquery(text)


class TestSqlXmlParsing:
    def test_xmlexists_extraction(self):
        ast = parse_sqlxml(
            'SELECT id FROM orders WHERE XMLEXISTS('
            '\'$d/FIXML/Order[@Side = "2"]\' PASSING orders.doc AS "d")')
        assert len(ast.expressions) == 1
        expression = ast.expressions[0]
        assert expression.is_predicate
        assert expression.passing_variable == "d"
        assert expression.xpath_text.startswith("$d/FIXML/Order")

    def test_xmlquery_extraction(self):
        ast = parse_sqlxml(
            "SELECT XMLQUERY('$d/Security/Price/LastTrade' PASSING doc AS \"d\") "
            "FROM security")
        assert len(ast.expressions) == 1
        assert not ast.expressions[0].is_predicate

    def test_multiple_embedded_expressions(self):
        ast = parse_sqlxml(
            "SELECT XMLQUERY('$d/Customer/Name' PASSING doc AS \"d\") FROM custacc "
            "WHERE XMLEXISTS('$d/Customer[@id = \"7\"]' PASSING doc AS \"d\") "
            "AND XMLEXISTS('$d/Customer[PremiumCustomer = \"true\"]' PASSING doc AS \"d\")")
        predicates = [e for e in ast.expressions if e.is_predicate]
        extractions = [e for e in ast.expressions if not e.is_predicate]
        assert len(predicates) == 2 and len(extractions) == 1

    def test_update_statement_flag(self):
        ast = parse_sqlxml(
            "INSERT INTO orders VALUES (XMLPARSE(DOCUMENT '<FIXML/>'))")
        assert ast.is_update

    def test_missing_xpath_literal_raises(self):
        with pytest.raises(QueryParseError):
            parse_sqlxml("SELECT 1 FROM t WHERE XMLEXISTS(doc)")

    def test_select_without_xml_functions_raises(self):
        with pytest.raises(QueryParseError):
            parse_sqlxml("SELECT a FROM t WHERE b = 1")

    def test_unbalanced_parentheses_raise(self):
        with pytest.raises(QueryParseError):
            parse_sqlxml("SELECT 1 FROM t WHERE XMLEXISTS('$d/a' PASSING doc AS \"d\"")

    @pytest.mark.parametrize("text,expected", [
        ("SELECT 1 FROM t WHERE XMLEXISTS('$d/a' PASSING d AS \"d\")", True),
        ("for $i in doc('x')/a return $i", False),
        ("/site/people/person", False),
    ])
    def test_looks_like_sqlxml(self, text, expected):
        assert looks_like_sqlxml(text) is expected
