"""Unit tests for collections, the database, and the catalog."""

from __future__ import annotations

import pytest

from repro.index.definition import IndexDefinition
from repro.storage.catalog import Catalog, CatalogError
from repro.storage.document_store import StorageError, XmlCollection, XmlDatabase
from repro.xmldb.parser import parse_document
from repro.xquery.model import ValueType


class TestXmlCollection:
    def test_add_document_from_text_and_node(self):
        collection = XmlCollection("c")
        collection.add_document("<a><b>1</b></a>")
        collection.add_document(parse_document("<a><b>2</b></a>"))
        assert len(collection) == 2
        assert collection.document(0).doc_id == 0
        assert collection.document(1).doc_id == 1

    def test_add_document_rejects_wrong_type(self):
        with pytest.raises(StorageError):
            XmlCollection("c").add_document(42)  # type: ignore[arg-type]

    def test_remove_document_reassigns_ids(self):
        collection = XmlCollection("c")
        collection.add_documents(["<a/>", "<b/>", "<c/>"])
        collection.remove_document(0)
        assert len(collection) == 2
        assert [d.doc_id for d in collection] == [0, 1]

    def test_remove_missing_document_raises(self):
        with pytest.raises(StorageError):
            XmlCollection("c").remove_document(3)

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_non_positive_delta_log_capacity(self, capacity):
        with pytest.raises(ValueError) as excinfo:
            XmlCollection("c", delta_log_capacity=capacity)
        assert str(excinfo.value) \
            == f"delta_log_capacity must be positive, got {capacity}"

    def test_statistics_cached_and_invalidated(self):
        collection = XmlCollection("c")
        collection.add_document("<a><b>1</b></a>")
        first = collection.statistics
        assert collection.statistics is first
        collection.add_document("<a><b>2</b></a>")
        assert collection.statistics is not first
        assert collection.statistics.document_count == 2


class TestXmlDatabase:
    def test_create_collection_idempotent(self):
        database = XmlDatabase("db")
        first = database.create_collection("orders")
        second = database.create_collection("orders")
        assert first is second
        assert database.collection_names == ["orders"]

    @pytest.mark.parametrize("capacity", [0, -7])
    def test_rejects_non_positive_delta_log_capacity(self, capacity):
        with pytest.raises(ValueError) as excinfo:
            XmlDatabase("db", delta_log_capacity=capacity)
        assert str(excinfo.value) \
            == f"delta_log_capacity must be positive, got {capacity}"

    def test_delta_log_capacity_forwarded_to_collections(self):
        database = XmlDatabase("db", delta_log_capacity=3)
        collection = database.create_collection("orders")
        assert collection.delta_log_capacity == 3

    def test_unknown_collection_raises(self):
        with pytest.raises(StorageError):
            XmlDatabase("db").collection("missing")

    def test_add_document_creates_collection(self):
        database = XmlDatabase("db")
        database.add_document("orders", "<FIXML/>")
        assert len(database.collection("orders")) == 1

    def test_merged_statistics_across_collections(self):
        database = XmlDatabase("db")
        database.add_document("a", "<root><x>1</x></root>")
        database.add_document("b", "<other><y>2</y></other>")
        stats = database.statistics
        assert stats.document_count == 2
        assert stats.stats_for_path("/root/x") is not None
        assert stats.stats_for_path("/other/y") is not None

    def test_runstats_recollects(self, tiny_database):
        before = tiny_database.statistics
        tiny_database.add_document("site", "<site><regions/></site>")
        after = tiny_database.runstats()
        assert after.document_count == before.document_count + 1

    def test_all_documents(self, tiny_database):
        assert len(tiny_database.all_documents()) == 3

    def test_describe_mentions_counts(self, tiny_database):
        text = tiny_database.describe()
        assert "3 documents" in text


class TestCatalog:
    def _definition(self, pattern="/a/b", name=None, value_type=ValueType.VARCHAR):
        return IndexDefinition.create(pattern, value_type, name=name)

    def test_add_and_lookup_physical_index(self):
        catalog = Catalog()
        definition = catalog.add_index(self._definition(name="idx1"))
        assert catalog.has_index("idx1")
        assert catalog.index("idx1") is definition
        assert catalog.physical_indexes == [definition]

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.add_index(self._definition(name="idx1"))
        with pytest.raises(CatalogError):
            catalog.add_index(self._definition("/c/d", name="idx1"))

    def test_virtual_index_must_use_dedicated_method(self):
        catalog = Catalog()
        virtual = self._definition(name="v1").as_virtual()
        with pytest.raises(CatalogError):
            catalog.add_index(virtual)
        catalog.add_virtual_index(virtual)
        assert catalog.index("v1").is_virtual

    def test_drop_index(self):
        catalog = Catalog()
        catalog.add_index(self._definition(name="idx1"))
        catalog.drop_index("idx1")
        assert not catalog.has_index("idx1")
        with pytest.raises(CatalogError):
            catalog.drop_index("idx1")

    def test_all_indexes_lists_physical_then_virtual(self):
        catalog = Catalog()
        catalog.add_index(self._definition(name="p1"))
        catalog.add_virtual_index(self._definition("/v", name="v1"))
        names = [index.name for index in catalog.all_indexes]
        assert names == ["p1", "v1"]
        assert len(catalog) == 2

    def test_clear_virtual_indexes(self):
        catalog = Catalog()
        catalog.add_virtual_index(self._definition(name="v1"))
        catalog.clear_virtual_indexes()
        assert catalog.virtual_indexes == []


class TestVirtualConfiguration:
    def test_installs_and_restores(self):
        catalog = Catalog()
        physical = IndexDefinition.create("/a/b", name="keepme")
        catalog.add_index(physical)
        virtual = [IndexDefinition.create("/x/y"), IndexDefinition.create("/z")]
        with catalog.virtual_configuration(virtual) as active:
            assert len(active.virtual_indexes) == 2
            assert all(index.is_virtual for index in active.virtual_indexes)
            assert physical in active.physical_indexes
        assert catalog.virtual_indexes == []
        assert catalog.physical_indexes == [physical]

    def test_hide_physical_indexes(self):
        catalog = Catalog()
        catalog.add_index(IndexDefinition.create("/a/b", name="phys"))
        with catalog.virtual_configuration([IndexDefinition.create("/x")],
                                           include_physical=False) as active:
            assert active.physical_indexes == []
        assert len(catalog.physical_indexes) == 1

    def test_name_clashes_get_renamed(self):
        catalog = Catalog()
        catalog.add_index(IndexDefinition.create("/a/b", name="same"))
        clash = IndexDefinition.create("/c/d", name="same")
        with catalog.virtual_configuration([clash]) as active:
            virtual_names = {index.name for index in active.virtual_indexes}
            assert "same" not in virtual_names
            assert len(virtual_names) == 1

    def test_restores_previous_virtual_indexes(self):
        catalog = Catalog()
        catalog.add_virtual_index(IndexDefinition.create("/pre", name="pre"))
        with catalog.virtual_configuration([IndexDefinition.create("/x")]):
            assert not catalog.has_index("pre")
        assert catalog.has_index("pre")

    def test_exception_inside_block_still_restores(self):
        catalog = Catalog()
        with pytest.raises(RuntimeError):
            with catalog.virtual_configuration([IndexDefinition.create("/x")]):
                raise RuntimeError("boom")
        assert catalog.virtual_indexes == []
