"""Cross-module integration tests: the whole demo flow on real benchmarks.

These tests walk the same path as the paper's demonstration (Section 3):
enumerate candidates for a benchmark workload, recommend a configuration
under a budget, analyze it against the no-index and overtrained
configurations, check the value of generalization on unseen queries, and
finally create the indexes and actually execute the workload.
"""

from __future__ import annotations

import pytest

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.executor.measurement import measure_workload
from repro.optimizer.explain import enumerate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.workloads.tpox import tpox_workload
from repro.workloads.xmark import xmark_unseen_queries
from repro.xquery.normalizer import normalize_workload


@pytest.fixture(scope="module")
def xmark_recommendation(xmark_database, xmark_workload):
    advisor = XmlIndexAdvisor(xmark_database,
                              AdvisorParameters(disk_budget_bytes=96 * 1024))
    return advisor.recommend(xmark_workload)


class TestXmarkEndToEnd:
    def test_enumerate_mode_finds_candidates_for_most_queries(self, xmark_database,
                                                              xmark_workload):
        optimizer = Optimizer(xmark_database)
        queries = [q for q in normalize_workload(xmark_workload) if not q.is_update]
        with_candidates = 0
        for query in queries:
            result = enumerate_indexes(query, xmark_database, optimizer)
            if result.candidates:
                with_candidates += 1
        assert with_candidates >= 0.8 * len(queries)

    def test_recommendation_improves_workload(self, xmark_recommendation):
        assert xmark_recommendation.total_benefit > 0
        assert xmark_recommendation.improvement_percent() > 10.0
        assert xmark_recommendation.total_size_bytes <= 96 * 1024 + 1e-6

    def test_generalized_candidates_exist(self, xmark_recommendation):
        assert len(xmark_recommendation.candidates.generalized_candidates) > 0
        assert xmark_recommendation.dag.depth() >= 2

    def test_analysis_recommended_close_to_overtrained(self, xmark_database,
                                                       xmark_recommendation):
        analysis = RecommendationAnalysis(xmark_database, xmark_recommendation)
        summary = analysis.summary()
        assert summary["improvement_recommended_pct"] > 0
        assert summary["improvement_recommended_pct"] <= \
            summary["improvement_overtrained_pct"] + 1e-6
        # The recommendation should capture a substantial share of the
        # overtrained bound (the paper's point is that a budgeted config
        # gets close to the maximum).
        assert summary["improvement_recommended_pct"] >= \
            0.5 * summary["improvement_overtrained_pct"]

    def test_topdown_generalization_helps_unseen_queries(self, xmark_database,
                                                         xmark_workload):
        budget = 64 * 1024.0
        top_down = XmlIndexAdvisor(
            xmark_database, AdvisorParameters(disk_budget_bytes=budget,
                                              search_algorithm=SearchAlgorithm.TOP_DOWN)
        ).recommend(xmark_workload)
        analysis = RecommendationAnalysis(xmark_database, top_down)
        unseen_rows = analysis.evaluate_additional_queries(xmark_unseen_queries())
        helped = [row for row in unseen_rows if row.speedup_recommended > 1.01]
        assert helped, "a generalized configuration should help unseen queries"

    def test_execution_confirms_estimated_benefit(self, xmark_database,
                                                  xmark_recommendation):
        measurements = measure_workload(xmark_database, xmark_recommendation.queries,
                                        xmark_recommendation.configuration)
        baseline = measurements["no-indexes"]
        indexed = measurements["recommended"]
        assert indexed.queries_using_indexes > 0
        assert indexed.documents_examined <= baseline.documents_examined
        for base_row, indexed_row in zip(baseline.per_query, indexed.per_query):
            assert base_row.result_count == indexed_row.result_count


class TestTpoxEndToEnd:
    def test_update_ratio_sweep_shrinks_benefit(self, tpox_database):
        benefits = []
        for update_ratio in (0.0, 0.5, 0.9):
            advisor = XmlIndexAdvisor(tpox_database,
                                      AdvisorParameters(disk_budget_bytes=64 * 1024))
            recommendation = advisor.recommend(tpox_workload(update_ratio=update_ratio))
            benefits.append(recommendation.total_benefit)
        assert benefits[0] > benefits[1] >= benefits[2] >= 0.0

    def test_sqlxml_queries_get_recommendations(self, tpox_database):
        advisor = XmlIndexAdvisor(tpox_database,
                                  AdvisorParameters(disk_budget_bytes=64 * 1024))
        recommendation = advisor.recommend(tpox_workload(update_ratio=0.0))
        patterns = {d.pattern.to_text() for d in recommendation.configuration}
        assert patterns, "TPoX workload should produce a recommendation"
        # Order-by-id is the most frequent lookup; its path (or a pattern
        # containing it) must be covered.
        from repro.xpath.patterns import PathPattern, pattern_contains

        order_id = PathPattern.parse("/FIXML/Order/@ID")
        assert any(pattern_contains(PathPattern.parse(p), order_id) for p in patterns)

    def test_budget_sweep_monotone_benefit(self, tpox_database):
        workload = tpox_workload(update_ratio=0.0)
        benefits = []
        for budget_kb in (4, 16, 256):
            advisor = XmlIndexAdvisor(
                tpox_database, AdvisorParameters(disk_budget_bytes=budget_kb * 1024.0))
            benefits.append(advisor.recommend(workload).total_benefit)
        assert benefits[0] <= benefits[1] <= benefits[2]
