"""Tests for the contract analyzer (``repro.analysis``) and its CLI gate.

The seeded fixture files under ``tests/fixtures/contracts/`` each carry
deliberate violations for one checker; the tests pin the exact
(checker, line) set every fixture produces, then assert the live source
tree lints clean -- the same invariant CI enforces through
``xml-index-advisor lint``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, default_source_root
from repro.tools.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "contracts"


def _diagnose(name: str, tests_dir: Path):
    context = analyze_paths(paths=[FIXTURES / f"{name}.py"],
                            tests_dir=tests_dir)
    return context.diagnostics


def _checker_lines(diagnostics):
    return {(d.checker, d.line) for d in diagnostics}


@pytest.fixture
def empty_tests_dir(tmp_path):
    """An empty test corpus, so fixture escape hatches count as untested."""
    corpus = tmp_path / "no-tests"
    corpus.mkdir()
    return corpus


class TestSnapshotChecker:
    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_snapshot", empty_tests_dir)
        assert _checker_lines(diagnostics) == {
            ("snapshot-immutability", 23),  # write in a non-builder method
            ("snapshot-immutability", 32),  # attribute write
            ("snapshot-immutability", 33),  # container mutation
            ("snapshot-immutability", 34),  # mutator call outside build phase
            ("snapshot-immutability", 35),  # attribute delete
            ("snapshot-immutability", 40),  # augmented write via annotation
        }

    def test_memo_builder_and_suppressed_writes_allowed(self, empty_tests_dir):
        diagnostics = _diagnose("bad_snapshot", empty_tests_dir)
        flagged = {d.line for d in diagnostics}
        # The memo write (24), builder-body writes (19, 46) and the
        # `# contract: allow[...]` suppressed write (52) stay silent.
        assert flagged.isdisjoint({19, 24, 46, 52})


class TestCacheChecker:
    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_cache", empty_tests_dir)
        assert _checker_lines(diagnostics) == {
            ("cache-invalidation", 31),  # unrevalidated public read
            ("cache-invalidation", 37),  # reached through indirect_bad()
            ("cache-invalidation", 46),  # push memo touched by a stranger
        }

    def test_messages_carry_entry_point(self, empty_tests_dir):
        diagnostics = _diagnose("bad_cache", empty_tests_dir)
        by_line = {d.line: d.message for d in diagnostics}
        assert "indirect_bad()" in by_line[37]
        assert "stray_writer()" in by_line[46]


class TestHatchChecker:
    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_hatch", empty_tests_dir)
        messages = sorted(d.message for d in diagnostics)
        assert len(diagnostics) == 5
        assert sum("never branched" in m for m in messages) == 1
        assert sum("only guards dead code" in m for m in messages) == 1
        # With an empty corpus all three fixture flags are untested.
        assert sum("not referenced by any test" in m for m in messages) == 3

    def test_diagnostics_anchor_to_declarations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_hatch", empty_tests_dir)
        assert {d.line for d in diagnostics} == {10, 11, 12}


class TestDeterminismChecker:
    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_determinism", empty_tests_dir)
        assert _checker_lines(diagnostics) == {
            ("determinism", 19),  # time.time()
            ("determinism", 23),  # datetime.now()
            ("determinism", 27),  # random.choice()
            ("determinism", 32),  # for-loop over a set
            ("determinism", 35),  # list() over a set
        }

    def test_sorted_and_seeded_random_allowed(self, empty_tests_dir):
        diagnostics = _diagnose("bad_determinism", empty_tests_dir)
        # clean() at the bottom of the fixture: sorted() iteration and a
        # seeded random.Random draw no diagnostics.
        assert all(d.line < 38 for d in diagnostics)


class TestFaultCoverageChecker:
    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = _diagnose("bad_faults", empty_tests_dir)
        assert _checker_lines(diagnostics) == {
            ("fault-coverage", 11),  # registered site never consulted
            ("fault-coverage", 20),  # catalog mutation with no fault point
            ("fault-coverage", 23),  # consult of an unregistered site
        }

    def test_covered_mutation_is_silent(self, empty_tests_dir):
        diagnostics = _diagnose("bad_faults", empty_tests_dir)
        # covered_mutation pairs its add_index with a fault point (17),
        # and the wired site's declaration (10) is consulted.
        assert {d.line for d in diagnostics}.isdisjoint({10, 16, 17})


class TestTelemetryChecker:
    """The fixture is a package: ``bad_telemetry/`` declares its own
    observe-only plane and audited clock module so both the telemetry
    checker and the wall-clock confinement pass engage on it alone."""

    def _diagnose_package(self, tests_dir):
        context = analyze_paths(paths=[FIXTURES / "bad_telemetry"],
                                tests_dir=tests_dir)
        return context.diagnostics

    def test_seeded_violations(self, empty_tests_dir):
        diagnostics = self._diagnose_package(empty_tests_dir)
        assert _checker_lines(diagnostics) == {
            ("telemetry", 13),    # plane.py: governed import in the plane
            ("telemetry", 34),    # engine.py: data-dependent histogram bounds
            ("telemetry", 38),    # engine.py: governed mutator in recording arg
            ("telemetry", 42),    # engine.py: pass-through telemetry write
            ("telemetry", 43),    # engine.py: augmented pass-through write
            ("determinism", 47),  # engine.py: time.* outside the clock module
        }

    def test_fixture_registrations_extracted(self, empty_tests_dir):
        context = analyze_paths(paths=[FIXTURES / "bad_telemetry"],
                                tests_dir=empty_tests_dir)
        assert "bad_telemetry.plane" in context.observe_only_packages
        assert "bad_telemetry.clock" in context.wall_clock_modules

    def test_clean_section_and_clock_module_silent(self, empty_tests_dir):
        diagnostics = self._diagnose_package(empty_tests_dir)
        # clean() in engine.py (literal bounds, module-constant bounds,
        # pure recording args, reads routed through the audited clock)
        # and the whole declared clock module stay silent.
        assert all(d.line < 50 for d in diagnostics)
        assert all(not d.path.endswith("clock.py") for d in diagnostics)

    def test_messages_name_the_contract(self, empty_tests_dir):
        by_line = {d.line: d.message
                   for d in self._diagnose_package(empty_tests_dir)}
        assert "observe-only package bad_telemetry.plane" in by_line[13]
        assert "literal number sequence" in by_line[34]
        assert "governed mutator refresh()" in by_line[38]
        assert "record through inc()/observe()/set()" in by_line[42]
        assert "wall-clock module" in by_line[47]


class TestCleanFixture:
    def test_correct_usage_is_silent(self, empty_tests_dir):
        assert _diagnose("clean", empty_tests_dir) == []


class TestLiveTree:
    def test_source_tree_lints_clean(self):
        context = analyze_paths()
        rendered = "\n".join(d.render() for d in context.diagnostics)
        assert context.diagnostics == [], rendered

    def test_live_registrations_present(self):
        context = analyze_paths()
        assert "DatabaseStatistics" in context.snapshots
        assert "QueryPlan" in context.snapshots
        hatch_names = {hatch.name for hatch in context.hatches}
        assert hatch_names == {
            "use_incremental", "use_incremental_maintenance",
            "use_collection_costing", "use_path_summary",
            "use_collection_routing", "use_columnar",
            "use_vectorized_predicates",
        }
        assert "repro.tuning" in context.deterministic_packages
        assert "index.build" in context.sites
        assert "migration.commit" in context.sites
        assert "repro.telemetry" in context.observe_only_packages
        assert "repro.telemetry.clock" in context.wall_clock_modules

    def test_default_source_root_is_package(self):
        assert default_source_root().name == "repro"


class TestCli:
    def test_lint_exits_zero_on_live_tree(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_lint_exits_nonzero_on_fixtures(self, capsys, empty_tests_dir):
        code = cli_main(["lint", "--path", str(FIXTURES),
                         "--tests-dir", str(empty_tests_dir)])
        assert code == 1
        out = capsys.readouterr().out
        for checker in ("snapshot-immutability", "cache-invalidation",
                        "escape-hatch", "determinism", "fault-coverage",
                        "telemetry"):
            assert checker in out

    def test_lint_json_format(self, capsys, empty_tests_dir):
        code = cli_main(["lint", "--format", "json",
                         "--path", str(FIXTURES / "bad_cache.py"),
                         "--tests-dir", str(empty_tests_dir)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == 3
        assert payload["files_checked"] == 1
        checkers = {d["checker"] for d in payload["diagnostics"]}
        assert checkers == {"cache-invalidation"}
