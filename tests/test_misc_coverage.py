"""Additional coverage: parameter objects, describe() helpers, edge cases."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.index.definition import IndexDefinition
from repro.index.matching import index_matches_predicate
from repro.advisor.enumeration import SearchStep
from repro.optimizer.cost_model import CostParameters
from repro.storage.pages import (
    PAGE_SIZE_BYTES,
    bytes_to_pages,
    index_entry_bytes,
    index_size_bytes,
    pages_to_bytes,
)
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.model import PathPredicate, ValueType


class TestVersionAndPublicApi:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestPages:
    def test_bytes_to_pages_rounding(self):
        assert bytes_to_pages(0) == 0
        assert bytes_to_pages(1) == 1
        assert bytes_to_pages(PAGE_SIZE_BYTES) == 1
        assert bytes_to_pages(PAGE_SIZE_BYTES + 1) == 2

    def test_pages_to_bytes_inverse(self):
        assert pages_to_bytes(bytes_to_pages(10000)) >= 10000

    def test_index_size_accounts_for_fill_factor(self):
        raw = 100 * index_entry_bytes(8.0)
        assert index_size_bytes(100, 8.0) > raw
        assert index_size_bytes(0, 8.0) == 0.0


class TestAdvisorParameters:
    def test_defaults_are_valid(self):
        parameters = AdvisorParameters()
        parameters.validate()
        assert parameters.search_algorithm is SearchAlgorithm.GREEDY_HEURISTIC
        assert parameters.disk_budget_pages is None

    def test_budget_pages_conversion(self):
        parameters = AdvisorParameters(disk_budget_bytes=8 * PAGE_SIZE_BYTES)
        assert parameters.disk_budget_pages == pytest.approx(8.0)

    def test_describe_mentions_budget_and_algorithm(self):
        parameters = AdvisorParameters(disk_budget_bytes=64 * 1024,
                                       search_algorithm=SearchAlgorithm.TOP_DOWN)
        text = parameters.describe()
        assert "64 KiB" in text and "top-down" in text
        unlimited = AdvisorParameters().describe()
        assert "unlimited" in unlimited

    def test_invalid_max_candidates(self):
        with pytest.raises(ValueError):
            AdvisorParameters(max_candidates=0).validate()

    def test_cost_parameters_frozen(self):
        parameters = CostParameters()
        with pytest.raises(Exception):
            parameters.sequential_page_cost = 9.0  # type: ignore[misc]


class TestDescribeHelpers:
    def test_index_match_describe(self):
        index = IndexDefinition.create("/a/*/c", ValueType.VARCHAR)
        predicate = PathPredicate(pattern=PathPattern.parse("/a/b/c"),
                                  op=BinaryOp.EQ, value="x")
        match = index_matches_predicate(index, predicate)
        assert "matches" in match.describe()

    def test_search_step_describe(self):
        assert SearchStep("add", "/a/b", "why").describe() == "add: /a/b (why)"
        assert SearchStep("drop", "/a/b").describe() == "drop: /a/b"

    def test_index_definition_describe(self):
        definition = IndexDefinition.create("/a/b", ValueType.DOUBLE, is_virtual=True)
        assert "virtual" in definition.describe()


class TestPredicateEdgeCases:
    def test_range_predicate_on_string_stays_varchar(self):
        from repro.xquery.normalizer import normalize_statement

        query = normalize_statement(
            'for $p in doc("x")/site/people/person where $p/name > "M" return $p')
        predicate = [p for p in query.predicates if p.op is not None][0]
        assert predicate.value_type is ValueType.VARCHAR

    def test_or_predicates_both_collected(self):
        from repro.xquery.normalizer import normalize_statement

        query = normalize_statement(
            'for $i in doc("x")//item where $i/quantity > 9 or $i/price > 400 return $i')
        patterns = {p.pattern.to_text() for p in query.predicates if p.op is not None}
        assert patterns == {"//item/quantity", "//item/price"}

    def test_join_style_comparison_yields_structural_predicates(self):
        from repro.xquery.normalizer import normalize_statement

        query = normalize_statement(
            'for $a in doc("x")/site/open_auctions/open_auction, '
            '$p in doc("x")/site/people/person '
            'where $a/seller/@person = $p/@id return $p/name')
        patterns = {p.pattern.to_text() for p in query.predicates}
        assert "/site/open_auctions/open_auction/seller/@person" in patterns
        assert "/site/people/person/@id" in patterns
