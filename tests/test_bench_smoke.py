"""Benchmark smoke checks: env-capped perf regression guards for tier 1.

The real experiment benchmarks (``benchmarks/bench_e*.py``) run at
scales that take tens of seconds.  These smoke checks exercise the same
measurement paths at tiny, environment-overridable sizes so a perf
regression in the structural path-summary subsystem fails the ordinary
test run within a couple of seconds.

Sizes are capped by environment variables:

``REPRO_SMOKE_XMARK_SCALE``
    XMark database scale for the smoke run (default ``0.05``).
``REPRO_SMOKE_MIN_SPEEDUP``
    Minimum accepted scan-vs-summary speedup (default ``1.5``; the full
    benchmarks assert >= 5x at their larger scales, the smoke floor is
    deliberately conservative because tiny runs on loaded or
    instrumented CI are noisy -- a genuine subsystem regression drops
    the ratio to ~1x or below, which even the soft floor catches).
``REPRO_SMOKE_MIN_WHATIF_RATIO``
    Minimum accepted ratio of legacy-to-incremental per-query what-if
    costings in the advisor search smoke check (default ``5``).  Unlike
    the timing floors this one is deterministic -- it counts work, not
    seconds -- so a drop means the incremental engine stopped saving
    evaluations.
``REPRO_SMOKE_MIN_MAINT_RATIO``
    Minimum accepted speedup of delta-propagation maintenance over the
    full-rebuild path on document add (default ``2``; the E6 benchmark
    asserts >= 5x at its larger scale -- the smoke floor is conservative
    because tiny timed runs are noisy, but a broken delta path drops
    the ratio to ~1x, which the floor catches).
``REPRO_SMOKE_MIN_ROUTING_RATIO``
    Minimum accepted ratio for collection-scoped routing (default
    ``2``; the E7 benchmark asserts >= 5x at its larger scale), applied
    to both the routed-vs-unrouted scan wall-clock on the co-resident
    XMark+TPoX database and the deterministic what-if re-costing count
    after a single-collection document add.
``REPRO_SMOKE_MIN_COLUMNAR_RATIO``
    Minimum accepted columnar-over-interpretive scan ratio on the
    descendant-heavy ``//`` workload (default ``2``; the E13 benchmark
    asserts >= 5x at its larger scale).  The exactness half of the
    check is deterministic: byte-identical results and zero
    interpretive spine fallbacks on the columnar side.
``REPRO_SMOKE_MIN_VECTORIZED_RATIO``
    Minimum accepted vectorized-over-object-hop scan ratio on the
    predicate-heavy XMark+TPoX workload (default ``2``; the E14
    benchmark asserts >= 5x at its larger scale).  The exactness half
    of the check is deterministic: byte-identical results and zero
    ``XmlNode`` materializations on the vectorized side.
``REPRO_SMOKE_MIN_ONLINE_COMPRESSION``
    Minimum accepted captured-templates-per-compressed-cluster ratio in
    the online tuning loop's flood phase at 10x volume (default ``2``;
    the E10 benchmark asserts >= 4x at its larger shapes).  Like the
    what-if ratio this is deterministic -- it counts templates, not
    seconds -- so a drop means the workload compressor stopped bounding
    the advisor input.

Deselect with ``-m "not bench_smoke"`` if an environment is too noisy
for any timing assertion.
"""

from __future__ import annotations

import os

import pytest

from repro.executor.measurement import measure_scan_modes, measure_workload
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)

pytestmark = pytest.mark.bench_smoke


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


SMOKE_SCALE = _env_float("REPRO_SMOKE_XMARK_SCALE", 0.05)
MIN_SPEEDUP = _env_float("REPRO_SMOKE_MIN_SPEEDUP", 1.5)
MIN_WHATIF_RATIO = _env_float("REPRO_SMOKE_MIN_WHATIF_RATIO", 5.0)
MIN_MAINT_RATIO = _env_float("REPRO_SMOKE_MIN_MAINT_RATIO", 2.0)
MIN_ROUTING_RATIO = _env_float("REPRO_SMOKE_MIN_ROUTING_RATIO", 2.0)
MIN_ONLINE_COMPRESSION = _env_float("REPRO_SMOKE_MIN_ONLINE_COMPRESSION", 2.0)
MIN_COLUMNAR_RATIO = _env_float("REPRO_SMOKE_MIN_COLUMNAR_RATIO", 2.0)
MIN_VECTORIZED_RATIO = _env_float("REPRO_SMOKE_MIN_VECTORIZED_RATIO", 2.0)


@pytest.fixture(scope="module")
def smoke_db():
    return generate_xmark_database(XMarkConfig(scale=SMOKE_SCALE, seed=42))


@pytest.fixture(scope="module")
def smoke_workload():
    return xmark_query_workload(name="smoke-train")


def test_smoke_summary_scan_faster_and_equivalent(smoke_db, smoke_workload):
    """The structural-summary scan must beat the interpretive scan and
    return identical per-query result counts (E5b at smoke scale)."""
    best_speedup = 0.0
    for _ in range(3):  # best-of-3 damps scheduler noise on tiny runs
        measurements = measure_scan_modes(smoke_db, smoke_workload)
        interpretive = measurements["scan-interpretive"]
        summary = measurements["scan-summary"]
        for interp_row, summary_row in zip(interpretive.per_query,
                                           summary.per_query):
            assert interp_row.result_count == summary_row.result_count
        if summary.total_seconds > 0:
            best_speedup = max(best_speedup,
                               interpretive.total_seconds / summary.total_seconds)
        else:
            best_speedup = float("inf")
    assert best_speedup >= MIN_SPEEDUP, (
        f"structural-summary scan speedup regressed: best-of-3 "
        f"{best_speedup:.2f}x < {MIN_SPEEDUP:.1f}x at scale {SMOKE_SCALE}")


def test_smoke_index_measurement_consistent(smoke_db, smoke_workload):
    """measure_workload still agrees between scan and summary-backed
    residual evaluation at smoke scale (E5 shape, no recommendation)."""
    from repro.index.definition import IndexConfiguration, IndexDefinition
    from repro.xquery.model import ValueType

    configuration = IndexConfiguration([
        IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
        IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE),
    ])
    measurements = measure_workload(smoke_db, smoke_workload, configuration)
    baseline = measurements["no-indexes"]
    indexed = measurements["recommended"]
    assert indexed.queries_using_indexes >= 1
    for base_row, indexed_row in zip(baseline.per_query, indexed.per_query):
        assert base_row.result_count == indexed_row.result_count
    assert smoke_db.catalog.physical_indexes == []


def test_smoke_incremental_search_equivalent_and_cheaper(smoke_db, smoke_workload):
    """The incremental what-if engine must recommend *identical*
    configurations to the legacy full re-evaluation while issuing at
    least ``MIN_WHATIF_RATIO``x fewer per-query what-if costings (E3 at
    smoke scale; the count is deterministic, unlike the timing floors)."""
    from repro.tools.whatif_compare import compare_search_modes

    sweep = compare_search_modes(smoke_db, smoke_workload,
                                 budget_fractions=(0.5,))
    for row in sweep.rows:
        assert row.identical, (row.algorithm, row.budget_fraction)
    assert sweep.costings_ratio >= MIN_WHATIF_RATIO, (
        f"incremental advisor search regressed: "
        f"{sweep.totals['legacy']['costings']} legacy vs "
        f"{sweep.totals['incremental']['costings']} incremental what-if "
        f"costings ({sweep.costings_ratio:.1f}x < {MIN_WHATIF_RATIO:.1f}x) "
        f"at scale {SMOKE_SCALE}")


def test_smoke_routing_faster_and_exact():
    """Collection-scoped routing must beat the unrouted escape hatch on
    the co-resident XMark+TPoX database -- scan wall-clock (best-of-3,
    timed) and what-if re-costings after a single-collection document
    add (deterministic count) -- while keeping scan results, delta
    benefits and cached-advisor recommendations byte-identical (E7 at
    smoke scale)."""
    from repro.tools.routing_compare import compare_routing_modes

    best_scan_ratio = 0.0
    comparison = None
    for _ in range(3):  # best-of-3 damps scheduler noise on tiny runs
        comparison = compare_routing_modes(scale=SMOKE_SCALE)
        assert comparison.identical_results, (
            "structural routing changed scan results")
        assert comparison.benefits_identical, (
            "routed delta benefits diverged from a fresh evaluation")
        assert comparison.configurations_identical, (
            "cached advisor stack recommended differently than a fresh one")
        assert comparison.cross_recostings == 0, (
            "a single-collection add re-costed queries routed elsewhere")
        best_scan_ratio = max(best_scan_ratio, comparison.scan_ratio)
    assert best_scan_ratio >= MIN_ROUTING_RATIO, (
        f"routed scan speedup regressed: best-of-3 {best_scan_ratio:.2f}x "
        f"< {MIN_ROUTING_RATIO:.1f}x at scale {SMOKE_SCALE}")
    assert comparison.recosting_ratio >= MIN_ROUTING_RATIO, (
        f"routed re-costing savings regressed: "
        f"{comparison.recostings_unrouted} legacy vs "
        f"{comparison.recostings_routed} routed re-costings "
        f"({comparison.recosting_ratio:.1f}x < {MIN_ROUTING_RATIO:.1f}x)")


def test_smoke_columnar_scan_faster_and_exact():
    """The columnar pre/post axis engine must beat the interpretive
    escape hatch on the descendant-heavy ``//`` workload while keeping
    per-query results byte-identical and recording zero interpretive
    spine fallbacks on the columnar side (E13 at smoke scale)."""
    from repro.tools.columnar_compare import compare_columnar_modes

    best_scan_ratio = 0.0
    for _ in range(3):  # best-of-3 damps scheduler noise on tiny runs
        comparison = compare_columnar_modes(scale=SMOKE_SCALE)
        assert comparison.identical_results, (
            "columnar evaluation changed descendant-query results")
        assert comparison.sizing_consistent, (
            "ColumnarStore.nbytes diverged from statistics.columnar_bytes")
        assert comparison.columnar_fallbacks == 0, (
            "a descendant-heavy query left the columnar axis engine")
        assert comparison.interpretive_fallbacks > 0, (
            "the escape hatch did not exercise the interpretive residuals")
        best_scan_ratio = max(best_scan_ratio, comparison.scan_ratio)
    assert best_scan_ratio >= MIN_COLUMNAR_RATIO, (
        f"columnar scan speedup regressed: best-of-3 "
        f"{best_scan_ratio:.2f}x < {MIN_COLUMNAR_RATIO:.1f}x "
        f"at scale {SMOKE_SCALE}")


def test_smoke_vectorized_faster_and_exact():
    """The set-at-a-time predicate engine must beat the object-hop
    escape hatch on the predicate-heavy XMark+TPoX workload while
    keeping results and extracted values byte-identical and recording
    zero ``XmlNode`` materializations on the vectorized side (E14 at
    smoke scale)."""
    from repro.tools.vectorized_compare import compare_vectorized_modes

    best_scan_ratio = 0.0
    for _ in range(3):  # best-of-3 damps scheduler noise on tiny runs
        comparison = compare_vectorized_modes(scale=SMOKE_SCALE)
        assert comparison.identical_results, (
            "vectorized evaluation changed predicate-query results")
        assert comparison.sizing_consistent, (
            "ColumnarStore.nbytes diverged from statistics.columnar_bytes")
        assert comparison.vectorized_materializations == 0, (
            "the vectorized scan path materialized XmlNode lists")
        assert comparison.hatch_materializations > 0, (
            "the escape hatch did not exercise the object hop")
        best_scan_ratio = max(best_scan_ratio, comparison.scan_ratio)
    assert best_scan_ratio >= MIN_VECTORIZED_RATIO, (
        f"vectorized scan speedup regressed: best-of-3 "
        f"{best_scan_ratio:.2f}x < {MIN_VECTORIZED_RATIO:.1f}x "
        f"at scale {SMOKE_SCALE}")


def test_smoke_online_loop_converges_and_bounded():
    """The online tuning loop must converge byte-identically to the
    offline advisor on a stationary workload, detect and migrate
    through an injected shift, and keep the compressed advisor input
    at or below the cluster cap as captured volume grows 10x (E10 at
    smoke scale; every flag and count is deterministic)."""
    from repro.tools.online_compare import compare_online_offline

    comparison = compare_online_offline(scale=SMOKE_SCALE)
    assert comparison.stationary_identical, (
        "online loop configuration diverged from the offline advisor "
        f"on a stationary workload: online {sorted(comparison.online_keys)} "
        f"vs offline {sorted(comparison.offline_keys)}")
    assert comparison.stationary_stable, (
        "the loop re-tuned on a stationary workload (oscillation)")
    assert comparison.index_plans_after_migration > 0, (
        "no query used an index plan after the online migration")
    assert comparison.drift_detected and comparison.migrated_with_drops, (
        "the injected workload shift was not detected/migrated "
        f"(drift score {comparison.drift_score:.3f})")
    assert comparison.reconverged_identical, (
        "the loop did not re-converge to the offline advisor's "
        "configuration after the shift")
    assert comparison.compression_bounded, (
        f"compressed advisor input exceeded the cluster cap: "
        f"{comparison.compressed_size_1x}/{comparison.compressed_size_10x} "
        f"clusters vs cap {comparison.flood_cluster_cap}")
    assert comparison.compression_ratio >= MIN_ONLINE_COMPRESSION, (
        f"online compression regressed: {comparison.captured_templates_10x} "
        f"captured templates -> {comparison.compressed_size_10x} clusters "
        f"({comparison.compression_ratio:.1f}x < {MIN_ONLINE_COMPRESSION}x)")
    # The shared aggregate predicate: catches any flag added to the
    # protocol that the per-flag asserts above do not know about yet.
    assert comparison.converged


def test_smoke_incremental_maintenance_faster_and_identical():
    """Delta-propagation maintenance on document add must beat the
    full-rebuild path while keeping the summary, statistics and index
    entries byte-identical (E6 maintenance at smoke scale)."""
    from repro.tools.maintenance_compare import compare_maintenance_modes

    best_ratio = 0.0
    for _ in range(3):  # best-of-3 damps scheduler noise on tiny runs
        comparison = compare_maintenance_modes(scale=SMOKE_SCALE)
        assert comparison.identical, (
            "incremental maintenance diverged from the full rebuild")
        best_ratio = max(best_ratio, comparison.ratio)
    assert best_ratio >= MIN_MAINT_RATIO, (
        f"incremental maintenance regressed: best-of-3 {best_ratio:.2f}x "
        f"< {MIN_MAINT_RATIO:.1f}x at scale {SMOKE_SCALE}")
