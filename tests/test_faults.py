"""Failure containment (PR 7): the deterministic fault-injection
harness, crash-safe migrations, degraded-mode execution, and the chaos
equivalence keystone.

The harness tests exercise :mod:`repro.faults` in isolation; the
containment tests drive the real tuning/executor/index/storage seams
under scripted fault plans and assert that every failure is contained
-- rolled back, retried, degraded or quarantined -- without ever
changing query results or leaving the catalog inconsistent.
"""

from __future__ import annotations

import random

import pytest

from _support import (
    EXECUTOR_COUNTERS,
    assert_counter_parity,
    build_varied_database,
)

from repro.executor.executor import QueryExecutor
from repro.faults import (
    INDEX_BUILD,
    INDEX_DELTA_APPLY,
    INDEX_DROP,
    JOURNAL_REPLAY,
    MIGRATION_COMMIT,
    SNAPSHOT_PUBLISH,
    STATS_REBUILD,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TransientFaultError,
    active_injector,
    fault_point,
    guarded_fault_point,
    inject,
    plan_from_env,
    registered_sites,
)
from repro.index.definition import IndexDefinition
from repro.tuning.controller import TuningController, TuningPolicy
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_statement, normalize_workload

SCALE = 0.04
BUDGET = 96 * 1024.0

ALL_SITES = (INDEX_BUILD, INDEX_DROP, INDEX_DELTA_APPLY, JOURNAL_REPLAY,
             STATS_REBUILD, SNAPSHOT_PUBLISH, MIGRATION_COMMIT)


@pytest.fixture(scope="module")
def train_queries():
    return normalize_workload(xmark_query_workload(name="faults-train"))


def _fresh_xmark():
    return generate_xmark_database(XMarkConfig(scale=SCALE, seed=11))


def _controller(database, **policy_overrides):
    defaults = dict(disk_budget_bytes=BUDGET, decay=0.5,
                    min_weight_fraction=0.02,
                    retry_backoff_steps=1, retry_backoff_cap=2,
                    max_build_attempts=5)
    defaults.update(policy_overrides)
    executor = QueryExecutor(database)
    return TuningController(database, executor=executor,
                            policy=TuningPolicy(**defaults))


# ----------------------------------------------------------------------
# Harness units
# ----------------------------------------------------------------------
class TestHarness:
    def test_every_seam_site_is_registered(self):
        assert set(ALL_SITES) <= set(registered_sites())

    def test_plan_rejects_unregistered_site(self):
        with pytest.raises(ValueError, match="unregistered site"):
            FaultPlan(rules=(FaultRule(site="no.such.site", hits=(1,)),))

    def test_rule_rejects_bad_hits(self):
        with pytest.raises(ValueError):
            FaultRule(site=INDEX_BUILD, hits=(0,))
        with pytest.raises(ValueError):
            FaultRule(site=INDEX_BUILD, every=-1)

    def test_smoke_plan_rejects_degenerate_period(self):
        with pytest.raises(ValueError, match="period"):
            FaultPlan.smoke(period=1)

    def test_injector_counts_hits_and_fires_on_schedule(self):
        injector = FaultInjector(
            FaultPlan.fail_hit(INDEX_BUILD, hit=2, transient=True))
        injector.consult(INDEX_BUILD)  # hit 1: passes
        with pytest.raises(FaultError) as excinfo:
            injector.consult(INDEX_BUILD)  # hit 2: fires (transient)
        assert isinstance(excinfo.value, TransientFaultError)
        injector.consult(INDEX_BUILD)  # hit 3: passes again
        assert injector.hit_count(INDEX_BUILD) == 3
        assert [f.describe() for f in injector.injected] \
            == ["index.build@2 (transient)"]

    def test_fail_hit_defaults_to_persistent(self):
        injector = FaultInjector(FaultPlan.fail_hit(INDEX_DROP))
        with pytest.raises(FaultError) as excinfo:
            injector.consult(INDEX_DROP)
        assert not isinstance(excinfo.value, TransientFaultError)

    def test_fault_point_is_noop_when_disarmed(self, monkeypatch):
        # Force the disarmed state even when the suite itself runs under
        # an ambient REPRO_FAULTS plan (the CI fault-smoke job).
        import repro.faults as faults_module
        monkeypatch.setattr(faults_module, "_ACTIVE", None)
        assert active_injector() is None
        fault_point(INDEX_BUILD)  # must not raise, must not count

    def test_inject_nests_and_restores(self):
        ambient = active_injector()  # smoke injector under REPRO_FAULTS
        outer = FaultPlan.fail_hit(INDEX_BUILD, hit=99)
        inner = FaultPlan.fail_hit(INDEX_DROP, hit=99)
        with inject(outer) as first:
            assert active_injector() is first
            with inject(inner) as second:
                assert active_injector() is second
            assert active_injector() is first
        assert active_injector() is ambient

    def test_guarded_absorbs_transient_and_counts_it(self):
        plan = FaultPlan.fail_hit(STATS_REBUILD, hit=1, transient=True)
        with inject(plan) as injector:
            guarded_fault_point(STATS_REBUILD)  # retry lands on hit 2
        assert injector.absorbed == {STATS_REBUILD: 1}
        assert injector.absorbed_total == 1

    def test_guarded_propagates_persistent(self):
        with inject(FaultPlan.fail_hit(STATS_REBUILD, hit=1)):
            with pytest.raises(FaultError):
                guarded_fault_point(STATS_REBUILD)

    def test_guarded_gives_up_on_sustained_transients(self):
        plan = FaultPlan(rules=(FaultRule(site=STATS_REBUILD, every=1),))
        with inject(plan):
            with pytest.raises(TransientFaultError):
                guarded_fault_point(STATS_REBUILD, max_retries=2)

    def test_plan_from_env_parsing(self):
        assert plan_from_env("") is None
        assert plan_from_env("0") is None
        smoke = plan_from_env("smoke")
        assert {rule.site for rule in smoke.rules} == set(registered_sites())
        plan = plan_from_env("index.build:2:persistent,stats.rebuild:1")
        assert plan.rules[0].site == INDEX_BUILD
        assert plan.rules[0].hits == (2,)
        assert not plan.rules[0].transient
        assert plan.rules[1].transient
        with pytest.raises(ValueError, match="expected"):
            plan_from_env("index.build")

    def test_smoke_plan_is_invisible_to_a_full_protocol(self, train_queries):
        """The keystone property of ``REPRO_FAULTS=smoke``: every seam
        absorbs the transient faults, so a complete observe/advise/
        migrate protocol behaves exactly as without them."""
        clean = _controller(_fresh_xmark())
        clean.observe(train_queries, rounds=3)
        clean_event = clean.run_cycle()

        noisy = _controller(_fresh_xmark())
        with inject(FaultPlan.smoke(period=7)) as injector:
            noisy.observe(train_queries, rounds=3)
            noisy_event = noisy.run_cycle()
        assert injector.injected, "the smoke plan never fired"
        assert all(f.transient for f in injector.injected)
        assert noisy_event.action == clean_event.action == "migrated"
        assert noisy.live_configuration_keys == clean.live_configuration_keys


# ----------------------------------------------------------------------
# Crash-safe migrations
# ----------------------------------------------------------------------
class TestCrashSafeMigration:
    def test_persistent_build_fault_rolls_back_whole_plan(self,
                                                          train_queries):
        controller = _controller(_fresh_xmark())
        catalog = controller.database.catalog
        controller.observe(train_queries, rounds=3)
        with inject(FaultPlan.fail_hit(INDEX_BUILD, hit=1,
                                       transient=False)):
            event = controller.run_cycle()
        assert event.action == "rolled-back"
        assert not event.applied
        assert event.error and "injected fault" in event.error
        # The catalog holds the pre-plan configuration: nothing built,
        # nothing dropped, every owed build parked durably.
        assert catalog.physical_indexes == []
        assert catalog.pending_builds
        assert catalog.consistency_errors() == []
        assert controller.rollbacks == 1
        assert controller.build_failures == 1
        report = event.robustness
        assert report is not None and report.rollbacks == 1

    def test_rolled_back_plan_retries_after_backoff_and_converges(
            self, train_queries):
        clean = _controller(_fresh_xmark())
        clean.observe(train_queries, rounds=3)
        assert clean.run_cycle().action == "migrated"

        controller = _controller(_fresh_xmark())
        catalog = controller.database.catalog
        with inject(FaultPlan.fail_hit(INDEX_BUILD, hit=1,
                                       transient=False)):
            controller.observe(train_queries, rounds=3)
            assert controller.run_cycle().action == "rolled-back"
            for _ in range(6):
                controller.observe(train_queries, rounds=1)
                event = controller.run_cycle()
                if event.applied and not catalog.pending_builds:
                    break
        assert controller.live_configuration_keys \
            == clean.live_configuration_keys
        assert catalog.pending_builds == []
        assert catalog.quarantined_keys == []
        assert catalog.consistency_errors() == []

    def test_backoff_defers_retry_until_steps_pass(self, train_queries):
        controller = _controller(_fresh_xmark(), retry_backoff_steps=4,
                                 retry_backoff_cap=32)
        with inject(FaultPlan.fail_hit(INDEX_BUILD, hit=1,
                                       transient=False)):
            controller.observe(train_queries, rounds=3)
            assert controller.run_cycle().action == "rolled-back"
        catalog = controller.database.catalog
        records = [catalog.build_failure(pending.key)
                   for pending in catalog.pending_builds]
        records = [record for record in records if record is not None]
        assert len(records) == 1
        record = records[0]
        assert record.attempts == 1
        assert record.next_retry_step > controller.monitor.step
        # The immediately-following resume defers the failed key.
        controller.observe(train_queries, rounds=1)
        event = controller.run_cycle()
        assert event.action == "resumed"
        deferred_keys = {step.definition.key for step in event.plan.deferred}
        assert record.key in deferred_keys

    def test_repeated_failures_quarantine_and_advise_excludes(
            self, train_queries):
        controller = _controller(_fresh_xmark(), max_build_attempts=1)
        catalog = controller.database.catalog
        with inject(FaultPlan.fail_hit(INDEX_BUILD, hit=1,
                                       transient=False)):
            controller.observe(train_queries, rounds=3)
            event = controller.run_cycle()
        assert event.action == "rolled-back"
        assert catalog.quarantined_keys, "first failure must quarantine " \
            "under max_build_attempts=1"
        poisoned = set(catalog.quarantined_keys)
        # Re-advising never recommends a quarantined definition again...
        recommendation = controller.advise()
        advised = {d.key for d in recommendation.configuration}
        assert not advised & poisoned
        # ...and the migration planner would skip it even if it did.
        plan = controller.plan_migration(recommendation)
        planned = {step.definition.key
                   for step in plan.builds + plan.deferred}
        assert not planned & poisoned
        assert catalog.consistency_errors() == []
        # The quarantine shows up in the robustness report.
        assert controller.robustness_report().quarantined

    def test_commit_fault_restores_dropped_indexes(self, train_queries):
        database = _fresh_xmark()
        controller = _controller(database)
        catalog = database.catalog
        controller.observe(train_queries, rounds=3)
        assert controller.run_cycle().action == "migrated"
        before = controller.live_configuration_keys
        assert before

        # Force a plan with drops: an obsolete index over a subtree the
        # training workload never queries, so re-advising drops it.
        stale = IndexDefinition.create("/site/categories/category/name",
                                       ValueType.VARCHAR)
        structure = controller.executor.build_index_structure(stale)
        controller.executor.install_index(stale, structure)
        controller.observe(train_queries, rounds=2)
        controller.policy.drift_threshold = 0.0
        with inject(FaultPlan.fail_hit(MIGRATION_COMMIT, hit=1,
                                       transient=False)):
            event = controller.run_cycle()
        assert event.action == "rolled-back"
        # The stale index survived: the commit fault hit before any
        # drop, and whatever was removed was restored.
        assert catalog.has_index(stale.name)
        assert controller.live_configuration_keys == before | {stale.key}
        assert catalog.consistency_errors() == []

    def test_resume_pending_survives_controller_restart(self,
                                                        train_queries):
        database = _fresh_xmark()
        first = _controller(database, build_budget_bytes=2048.0)
        catalog = database.catalog
        first.observe(train_queries, rounds=3)
        event = first.run_cycle()
        assert event.action == "migrated"
        assert event.plan.deferred
        target = event.plan.target_keys
        assert catalog.pending_builds

        # A brand-new controller (fresh executor, fresh monitor -- a
        # restarted process) picks the owed builds up from the catalog.
        second = _controller(database, build_budget_bytes=2048.0)
        assert second._pending  # read from the catalog, not memory
        for _ in range(50):
            if second.live_configuration_keys == target:
                break
            second.observe(train_queries, rounds=1)
            event = second.run_cycle()
            assert event.action == "resumed"
            assert catalog.consistency_errors() == []
        assert second.live_configuration_keys == target
        assert catalog.pending_builds == []

    def test_resume_is_idempotent_when_builds_already_stand(self,
                                                            train_queries):
        """Restart idempotency: pending records whose definitions are
        already physical are cleared, not re-built."""
        database = _fresh_xmark()
        controller = _controller(database)
        controller.observe(train_queries, rounds=3)
        assert controller.run_cycle().action == "migrated"
        # Simulate a crash after install but before the pending-set
        # cleanup: re-record every live definition as owed.
        from repro.storage.catalog import PendingBuild
        database.catalog.record_pending_builds(
            PendingBuild(definition=d, size_bytes=1.0, reason="crash")
            for d in database.catalog.physical_indexes)
        restarted = _controller(database)
        restarted.observe(train_queries, rounds=1)
        event = restarted.run_cycle()
        assert event.action != "rolled-back"
        assert database.catalog.pending_builds == []
        assert database.catalog.consistency_errors() == []


# ----------------------------------------------------------------------
# Degraded-mode execution
# ----------------------------------------------------------------------
class _PoisonIndex:
    """Stands in for a physical index whose probes raise."""

    def __init__(self, definition):
        self.definition = definition

    def lookup_equal(self, value):
        raise RuntimeError("poisoned probe")

    def lookup_range(self, op, value):
        raise RuntimeError("poisoned probe")

    def scan(self):
        raise RuntimeError("poisoned probe")


#: A document whose person id matches ``_SELECTIVE``'s predicate: adding
#: it to the degraded-mode database raises the query's count by one.
_EXTRA_MATCH_XML = ('<site><people><person id="p7"><name>Late Arrival</name>'
                    '</person></people></site>')


class TestDegradedMode:
    def _indexed_database(self):
        database = build_varied_database(documents=40, name="degraded")
        executor = QueryExecutor(database)
        definition = IndexDefinition.create("/site/people/person/@id",
                                            ValueType.VARCHAR)
        executor.create_indexes([definition])
        query = normalize_statement(
            'for $p in doc("x")/site/people/person '
            'where $p/@id = "p7" return $p/name', query_id="degraded-q1")
        return database, executor, definition, query

    def test_raising_probe_degrades_index_and_falls_back_to_scan(self):
        database, executor, definition, query = self._indexed_database()
        baseline = executor.execute(query)
        assert baseline.used_index_plan

        key = definition.as_physical().key
        name = definition.as_physical().name
        executor._indexes[key] = _PoisonIndex(executor._indexes[key].definition)
        degraded = executor.execute(query)
        # Results provably unchanged, served by the summary-scan path.
        assert degraded.result_count == baseline.result_count
        assert not degraded.used_index_plan
        assert not database.catalog.index_usable(name)
        assert executor.scan_fallbacks == 1
        assert any("unusable" in event for event in executor.fallback_events)
        # Subsequent queries plan without the unusable index (no repeat
        # probe-and-fail loop).
        again = executor.execute(query)
        assert again.result_count == baseline.result_count
        assert executor.scan_fallbacks == 1

    def test_repair_rebuilds_unusable_index(self):
        database, executor, definition, query = self._indexed_database()
        baseline = executor.execute(query)
        key = definition.as_physical().key
        name = definition.as_physical().name
        executor._indexes[key] = _PoisonIndex(executor._indexes[key].definition)
        executor.execute(query)
        assert not database.catalog.index_usable(name)

        repaired = executor.repair_indexes()
        assert name in repaired
        assert database.catalog.index_usable(name)
        assert executor.index_repairs == 1
        healed = executor.execute(query)
        assert healed.used_index_plan
        assert healed.result_count == baseline.result_count
        assert database.catalog.consistency_errors() == []

    def test_journal_replay_fault_falls_back_to_rebuild(self):
        database, executor, definition, query = self._indexed_database()
        baseline = executor.execute(query)
        database.collection("site").add_document(_EXTRA_MATCH_XML)
        with inject(FaultPlan.fail_hit(JOURNAL_REPLAY, hit=1,
                                       transient=False)):
            result = executor.execute(query)
        # One more match than baseline (the added doc), served by a
        # freshly rebuilt index -- never a stale or broken structure.
        assert result.result_count == baseline.result_count + 1
        assert result.used_index_plan
        assert any("journal replay failed" in event
                   for event in executor.fallback_events)
        name = definition.as_physical().name
        assert database.catalog.index_usable(name)

    def test_delta_apply_fault_rebuilds_that_index(self):
        database, executor, definition, query = self._indexed_database()
        baseline = executor.execute(query)
        database.collection("site").add_document(_EXTRA_MATCH_XML)
        plan = FaultPlan(rules=(FaultRule(site=INDEX_DELTA_APPLY, every=1,
                                          transient=False),))
        with inject(plan):
            result = executor.execute(query)
        assert result.result_count == baseline.result_count + 1
        assert result.used_index_plan
        assert executor.index_rebuilds >= 1
        assert any("delta maintenance" in event
                   for event in executor.fallback_events)

    def test_optimizer_fault_falls_back_to_full_scan(self):
        database, executor, definition, query = self._indexed_database()
        baseline = executor.execute(query)
        plan = FaultPlan(rules=(FaultRule(site=STATS_REBUILD, every=1,
                                          transient=False),))
        database.collection("site").invalidate_statistics()
        with inject(plan):
            result = executor.execute(query)
        assert result.result_count == baseline.result_count
        assert not result.used_index_plan
        assert executor.scan_fallbacks >= 1
        # PR 10: fallback accounting survives the counter migration.
        assert_counter_parity(executor, EXECUTOR_COUNTERS)


# ----------------------------------------------------------------------
# Chaos equivalence keystone
# ----------------------------------------------------------------------
EXTRA_XMARK_DOC = (
    "<site><regions><asia><item id='chaos1'>"
    "<location>Japan</location><quantity>3</quantity>"
    "<price>77.0</price><name>chaos teapot</name>"
    "<payment>Creditcard</payment></item></asia></regions>"
    "<people><person id='chaosp'><name>Chaos Person</name>"
    "<creditcard>9999 9999</creditcard>"
    "<address><city>Kyoto</city><country>Japan</country></address>"
    "<profile income='51000.0'><age>41</age></profile></person>"
    "</people></site>")

CYCLES = 6
ADD_AT_CYCLE = 2


def _chaos_plan(seed: int) -> FaultPlan:
    """Randomized-but-deterministic: transient noise at every site plus
    one single-shot persistent fault per site, hits drawn from the
    seeded generator."""
    rng = random.Random(seed)
    rules = []
    for site in sorted(ALL_SITES):
        rules.append(FaultRule(site=site, every=rng.randint(5, 9)))
        rules.append(FaultRule(site=site, hits=(rng.randint(1, 4),),
                               transient=False,
                               message=f"chaos[{seed}] {site}"))
    return FaultPlan(rules=tuple(rules))


def _run_protocol(plan, train_queries):
    """The shared workload+migration protocol: observe, cycle, add a
    document mid-stream, settle; returns the controller (converged)."""
    database = _fresh_xmark()
    controller = _controller(database)
    catalog = database.catalog

    class _Disarmed:
        def __enter__(self):
            return None

        def __exit__(self, *exc):
            return None

    with (inject(plan) if plan is not None else _Disarmed()) as injector:
        controller.observe(train_queries, rounds=2)
        for cycle in range(CYCLES):
            if cycle == ADD_AT_CYCLE:
                database.collection("xmark").add_document(EXTRA_XMARK_DOC)
            controller.observe(train_queries, rounds=1)
            controller.run_cycle()
            # The invariant that must hold after EVERY step, mid-fault
            # included: the catalog is never in an inconsistent state.
            assert catalog.consistency_errors() == []
        # Settle: drain pending builds, heal degraded indexes, and keep
        # cycling until drift is quiescent (a chaos run that lost cycles
        # to aborts/rollbacks may still owe the final migration).
        for _ in range(12):
            event = controller.events[-1] if controller.events else None
            if not catalog.pending_builds and not catalog.unusable_indexes \
                    and not catalog.quarantined_keys and event is not None \
                    and event.action in ("idle", "no-change"):
                break
            controller.observe(train_queries, rounds=1)
            controller.run_cycle()
            assert catalog.consistency_errors() == []
    assert catalog.pending_builds == []
    assert catalog.unusable_indexes == {}
    assert catalog.quarantined_keys == []
    return controller, injector


def _final_state(controller, train_queries):
    """Everything that must be byte-identical across runs: the applied
    configuration, each index's full entry list, and query results."""
    executor = controller.executor
    keys = tuple(sorted(controller.live_configuration_keys))
    entries = {}
    for definition in controller.database.catalog.physical_indexes:
        structure = executor._indexes.get(definition.key)
        assert structure is not None, \
            f"index {definition.name!r} not materialized after settle"
        entries[definition.key] = tuple(
            (e.key, e.collection, e.doc_id, e.node_id)
            for e in structure.entries)
    results = {q.query_id: executor.execute(q).result_count
               for q in train_queries if not q.is_update}
    return keys, entries, results


@pytest.mark.parametrize("seed", [3, 17])
def test_chaos_equivalence_converges_byte_identically(seed, train_queries):
    """Keystone: randomized fault plans covering every site -- transient
    noise everywhere plus one persistent fault per site -- must leave
    the system byte-identical to the fault-free run: same applied
    configuration, same index entry lists, same query results, and a
    consistent catalog after every single step."""
    clean, _ = _run_protocol(None, train_queries)
    chaos, injector = _run_protocol(_chaos_plan(seed), train_queries)

    clean_keys, clean_entries, clean_results = _final_state(clean,
                                                            train_queries)
    chaos_keys, chaos_entries, chaos_results = _final_state(chaos,
                                                            train_queries)
    assert chaos_keys == clean_keys
    assert chaos_entries == clean_entries
    assert chaos_results == clean_results
    # The chaos run actually went through fire: faults were injected
    # and contained, not silently skipped.
    assert injector is not None and injector.injected
