"""E7: the value of candidate generalization for future, unseen workloads.

Section 2.2's motivation: query-specific candidates only serve the exact
training queries; generalized candidates (``/regions/*/item/quantity``)
also serve "other similar queries that are inquiring about item
quantities in different regions".  This benchmark compares, on a held-out
set of query variations, the benefit of:

* the configuration recommended from *basic candidates only*
  (generalization disabled), and
* the configuration recommended from the *generalized* candidate set
  (top-down search, which prefers general indexes).

Also ablates the generalization fixpoint depth (one round vs. default).
Expected shape: both do similarly well on the training workload, but the
generalized configuration wins clearly on the unseen queries.
"""

from __future__ import annotations

from conftest import print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.tools.report import render_table

BUDGET_BYTES = 192 * 1024.0


def _recommend(database, workload, rounds, algorithm):
    parameters = AdvisorParameters(disk_budget_bytes=BUDGET_BYTES,
                                   generalization_rounds=rounds,
                                   search_algorithm=algorithm)
    return XmlIndexAdvisor(database, parameters).recommend(workload)


def _unseen_improvement(database, recommendation, unseen):
    analysis = RecommendationAnalysis(database, recommendation)
    rows = analysis.evaluate_additional_queries(unseen)
    total_before = sum(r.cost_no_indexes for r in rows)
    total_after = sum(r.cost_recommended for r in rows)
    helped = sum(1 for r in rows if r.speedup_recommended > 1.01)
    improvement = 100.0 * (total_before - total_after) / total_before if total_before else 0.0
    return improvement, helped, len(rows)


def test_e7_generalization_for_unseen_workloads(benchmark, xmark_db, xmark_train,
                                                xmark_unseen):
    def _compare():
        basic_only = _recommend(xmark_db, xmark_train, rounds=0,
                                algorithm=SearchAlgorithm.GREEDY_HEURISTIC)
        one_round = _recommend(xmark_db, xmark_train, rounds=1,
                               algorithm=SearchAlgorithm.TOP_DOWN)
        generalized = _recommend(xmark_db, xmark_train, rounds=3,
                                 algorithm=SearchAlgorithm.TOP_DOWN)
        return basic_only, one_round, generalized

    basic_only, one_round, generalized = benchmark.pedantic(_compare, rounds=1,
                                                            iterations=1)
    rows = []
    for label, recommendation in (("basic-only (0 rounds, greedy-heuristic)", basic_only),
                                  ("generalized (1 round, top-down)", one_round),
                                  ("generalized (3 rounds, top-down)", generalized)):
        training_improvement = recommendation.improvement_percent()
        unseen_improvement, helped, total = _unseen_improvement(
            xmark_db, recommendation, xmark_unseen)
        rows.append([label, len(recommendation.configuration),
                     f"{training_improvement:.1f}", f"{unseen_improvement:.1f}",
                     f"{helped}/{total}"])
    table = render_table(
        ["candidate set / search", "#indexes", "training improvement %",
         "unseen improvement %", "unseen queries helped"], rows)
    print_section("E7 - generalized candidates and unseen workloads", table)

    basic_unseen, _, _ = _unseen_improvement(xmark_db, basic_only, xmark_unseen)
    generalized_unseen, helped, total = _unseen_improvement(xmark_db, generalized,
                                                            xmark_unseen)
    # Shape: generalization wins on the unseen workload.
    assert generalized_unseen > basic_unseen + 1.0
    assert helped >= total // 2
