"""E1 (Figure 2): basic candidate recommendation via Enumerate Indexes mode.

Reproduces the first demo panel: for every workload query, the XPath
patterns the optimizer enumerates as basic candidate indexes, plus the
query's estimated cost with no indexes and with the universal ``//*``
virtual index.  The benchmark measures the cost of one Enumerate Indexes
pass over the whole workload (this is the advisor's first phase).
"""

from __future__ import annotations

from conftest import print_section

from repro.optimizer.explain import enumerate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.tools.report import enumerate_report
from repro.xquery.normalizer import normalize_workload


def _enumerate_all(database, workload):
    optimizer = Optimizer(database)
    queries = [q for q in normalize_workload(workload) if not q.is_update]
    return [enumerate_indexes(query, database, optimizer) for query in queries]


def test_e1_enumerate_xmark(benchmark, xmark_db, xmark_train):
    results = benchmark.pedantic(_enumerate_all, args=(xmark_db, xmark_train),
                                 rounds=3, iterations=1)
    total_candidates = sum(len(r.candidates) for r in results)
    queries_with_candidates = sum(1 for r in results if r.candidates)
    print_section(
        "E1 / Figure 2 - basic candidate recommendation (XMark workload)",
        enumerate_report(results)
        + f"\n\nqueries: {len(results)}, queries with candidates: "
          f"{queries_with_candidates}, total basic candidates: {total_candidates}")
    assert queries_with_candidates >= 0.8 * len(results)
    assert total_candidates >= len(results)


def test_e1_enumerate_tpox(benchmark, tpox_db, tpox_mixed):
    results = benchmark.pedantic(_enumerate_all, args=(tpox_db, tpox_mixed),
                                 rounds=3, iterations=1)
    total_candidates = sum(len(r.candidates) for r in results)
    print_section(
        "E1 / Figure 2 - basic candidate recommendation (TPoX workload)",
        enumerate_report(results)
        + f"\n\nqueries: {len(results)}, total basic candidates: {total_candidates}")
    assert total_candidates > 0
