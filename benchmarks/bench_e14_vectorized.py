"""E14 (vectorized): set-at-a-time value predicates vs. the per-object
hop on a predicate-heavy XMark+TPoX workload.

Before PR 9, every value predicate cost one ``XmlNode`` list
materialization per document plus a typed compare per node
(`_document_matches` -> `_predicate_holds` -> `_compare_node`), even
though the columnar store already held every node's normalized value.
The vectorized engine answers each predicate with two bisects over the
path's value-sorted projection and intersects the per-predicate
document sets, serving extraction values straight from the values
column:

* **scan wall-clock** -- the predicate-heavy workload (quantity/price
  ranges, attribute comparisons, string equality, conjunctions over
  XMark and all three TPoX collections) executed with value extraction
  by a vectorized executor (``use_vectorized_predicates=True``, the
  default) and by the escape hatch
  (``use_vectorized_predicates=False``, object-hop compares).  Both
  sides keep the columnar axis engine on, so the ratio isolates
  predicate evaluation.  Expected: ~5-8x at the default benchmark
  scale; asserted floor 5x (2x in smoke mode).
* **exactness** -- per-query result counts, documents examined and
  extracted value streams byte-identical between the modes; the
  vectorized side runs with **zero** ``XmlNode`` materializations (the
  acceptance criterion: predicates and extraction never leave the
  columns) while the escape hatch materializes per (query, document).
* **sizing** -- ``ColumnarStore.nbytes`` (now including the projection
  permutation and numeric slots) equal to the statistics-derived
  ``columnar_bytes`` for every co-resident collection.

Shape: ``repro.tools.vectorized_compare.compare_vectorized_modes``
(shared with the tier-1 ``bench_smoke`` guard and the perf recorder),
run at the benchmark scale.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.report import render_table
from repro.tools.vectorized_compare import compare_vectorized_modes

#: Minimum accepted vectorized-over-object-hop scan ratio: the
#: acceptance floor at benchmark scale, conservative in smoke mode
#: where tiny timed runs are noisy.
MIN_VECTORIZED_RATIO = 2.0 if BENCH_SMOKE else 5.0


def test_e14_vectorized_speedup_and_exactness(benchmark):
    comparison = benchmark.pedantic(
        compare_vectorized_modes, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["docs", "vectorized s", "hatch s", "scan x",
         "vec mat", "hatch mat", "rows"],
        [[comparison.documents,
          f"{comparison.vectorized_seconds:.4f}",
          f"{comparison.hatch_seconds:.4f}",
          f"{comparison.scan_ratio:.1f}x",
          comparison.vectorized_materializations,
          comparison.hatch_materializations,
          comparison.result_rows]])
    print_section(
        "E14 vectorized - set-at-a-time predicates vs object hop "
        f"(XMark scale {XMARK_SCALE})", table)

    assert comparison.identical_results, (
        "vectorized evaluation changed predicate-query results")
    assert comparison.sizing_consistent, (
        "ColumnarStore.nbytes diverged from statistics.columnar_bytes")
    # The acceptance criterion: the vectorized path never materializes
    # XmlNode lists, and the escape hatch genuinely exercises the
    # object hop being compared.
    assert comparison.vectorized_materializations == 0
    assert comparison.hatch_materializations > 0
    assert comparison.scan_ratio >= MIN_VECTORIZED_RATIO, (
        f"vectorized scan speedup regressed: {comparison.scan_ratio:.2f}x "
        f"< {MIN_VECTORIZED_RATIO:.1f}x at scale {XMARK_SCALE}")
