"""E13 (columnar): pre/post axis-engine scans vs. the interpretive
fallback on descendant-heavy ``//`` navigation.

Before PR 8, summary-unsafe ``//`` shapes (a descendant step that may
match its own context, ``//*`` tails) could not be answered by the path
summary's loose matching and dropped to a per-document
:class:`~repro.xpath.evaluator.XPathEvaluator` walk.  The columnar
pre/post encoding answers exactly those shapes from sorted columns with
descendant-or-self semantics, so the descendant-heavy workload now runs
structurally:

* **scan wall-clock** -- the descendant workload (``/site//*`` and
  friends) executed by a columnar executor (``use_columnar=True``, the
  default) and by the escape hatch (``use_columnar=False``, interpreter
  residuals).  Expected: ~5-7x at the default benchmark scale; asserted
  floor 5x (2x in smoke mode).
* **exactness** -- per-query result counts and extracted node-id
  streams byte-identical between the modes; the columnar side runs
  with **zero** interpretive spine fallbacks (the acceptance criterion:
  descendant-heavy queries never leave the axis engine) while the
  escape hatch records one fallback per (query, document) residual.
* **sizing** -- ``ColumnarStore.nbytes`` equal to the
  statistics-derived ``DatabaseStatistics.columnar_bytes`` the
  advisor's size reports and the tuning controller's build budget use.

Shape: ``repro.tools.columnar_compare.compare_columnar_modes`` (shared
with the tier-1 ``bench_smoke`` guard and the perf recorder), run at
the benchmark scale.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.columnar_compare import compare_columnar_modes
from repro.tools.report import render_table

#: Minimum accepted columnar-over-interpretive scan ratio: the
#: acceptance floor at benchmark scale, conservative in smoke mode
#: where tiny timed runs are noisy.
MIN_COLUMNAR_RATIO = 2.0 if BENCH_SMOKE else 5.0


def test_e13_columnar_speedup_and_exactness(benchmark):
    comparison = benchmark.pedantic(
        compare_columnar_modes, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["docs", "nodes", "columnar s", "interp s", "scan x",
         "col fb", "interp fb", "rows"],
        [[comparison.documents, comparison.node_count,
          f"{comparison.columnar_seconds:.4f}",
          f"{comparison.interpretive_seconds:.4f}",
          f"{comparison.scan_ratio:.1f}x",
          comparison.columnar_fallbacks, comparison.interpretive_fallbacks,
          comparison.result_rows]])
    print_section(
        "E13 columnar - pre/post axis engine vs interpretive fallback "
        f"(XMark scale {XMARK_SCALE})", table)

    assert comparison.identical_results, (
        "columnar evaluation changed descendant-query results")
    assert comparison.sizing_consistent, (
        "ColumnarStore.nbytes diverged from statistics.columnar_bytes")
    # The acceptance criterion: descendant-heavy queries never fall back
    # to the interpreter on the columnar path, and the escape hatch
    # genuinely exercises the interpretive residuals being compared.
    assert comparison.columnar_fallbacks == 0
    assert comparison.interpretive_fallbacks > 0
    assert comparison.scan_ratio >= MIN_COLUMNAR_RATIO, (
        f"columnar scan speedup regressed: {comparison.scan_ratio:.2f}x "
        f"< {MIN_COLUMNAR_RATIO:.1f}x at scale {XMARK_SCALE}")
