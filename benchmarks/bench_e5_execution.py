"""E5 (demo final step): create the recommended indexes and execute.

"Finally, the tool allows the user to review the final recommended index
configuration and to create it.  The actual execution time taken by the
queries can then be displayed."  This benchmark creates the recommended
indexes as physical structures and runs the workload twice -- without and
with them -- reporting wall-clock time, documents examined, and index
entries touched.

Expected shape: the indexed run touches far fewer documents and is faster,
and both runs return identical results.
"""

from __future__ import annotations

from conftest import MIN_SUMMARY_SPEEDUP, print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.executor.measurement import measure_scan_modes, measure_workload
from repro.tools.report import render_table


def _recommend(database, workload):
    advisor = XmlIndexAdvisor(database,
                              AdvisorParameters(disk_budget_bytes=192 * 1024))
    return advisor.recommend(workload)


def test_e5_actual_execution(benchmark, xmark_db, xmark_train):
    recommendation = _recommend(xmark_db, xmark_train)

    def _run():
        return measure_workload(xmark_db, recommendation.queries,
                                recommendation.configuration)

    measurements = benchmark.pedantic(_run, rounds=3, iterations=1)
    baseline = measurements["no-indexes"]
    indexed = measurements["recommended"]
    speedup = (baseline.total_seconds / indexed.total_seconds
               if indexed.total_seconds > 0 else float("inf"))
    table = render_table(
        ["run", "wall time (ms)", "docs examined", "index entries", "queries using indexes"],
        [[baseline.label, f"{baseline.total_seconds * 1000:.1f}",
          baseline.documents_examined, baseline.index_entries_scanned,
          baseline.queries_using_indexes],
         [indexed.label, f"{indexed.total_seconds * 1000:.1f}",
          indexed.documents_examined, indexed.index_entries_scanned,
          indexed.queries_using_indexes]])
    per_query = render_table(
        ["query", "scan docs", "indexed docs", "results equal"],
        [[b.query_id, b.documents_examined, i.documents_examined,
          "yes" if b.result_count == i.result_count else "NO"]
         for b, i in zip(baseline.per_query, indexed.per_query)])
    print_section(
        "E5 - actual execution with the recommended indexes",
        recommendation.describe() + "\n\n" + table
        + f"\n\nactual wall-clock speedup: {speedup:.2f}x\n\n" + per_query)

    assert indexed.queries_using_indexes > 0
    assert indexed.documents_examined < baseline.documents_examined
    for base_row, indexed_row in zip(baseline.per_query, indexed.per_query):
        assert base_row.result_count == indexed_row.result_count


def test_e5_scan_vs_structural_summary(benchmark, xmark_db, xmark_train):
    """Document scans answered from the structural path summary vs. the
    legacy per-document XPath interpreter (no indexes in either run)."""

    def _run():
        return measure_scan_modes(xmark_db, xmark_train)

    measurements = benchmark.pedantic(_run, rounds=3, iterations=1)
    interpretive = measurements["scan-interpretive"]
    summary = measurements["scan-summary"]
    speedup = (interpretive.total_seconds / summary.total_seconds
               if summary.total_seconds > 0 else float("inf"))
    table = render_table(
        ["scan engine", "wall time (ms)", "docs examined"],
        [[interpretive.label, f"{interpretive.total_seconds * 1000:.1f}",
          interpretive.documents_examined],
         [summary.label, f"{summary.total_seconds * 1000:.1f}",
          summary.documents_examined]])
    print_section(
        "E5b - document scan vs structural path summary",
        table + f"\n\nstructural-summary scan speedup: {speedup:.2f}x")

    # Identical result counts query by query, and a large speedup: the
    # summary answers path lookups with dictionary probes instead of
    # re-walking every node tree once per location step.
    for interp_row, summary_row in zip(interpretive.per_query, summary.per_query):
        assert interp_row.result_count == summary_row.result_count
    assert interpretive.documents_examined == summary.documents_examined
    assert speedup >= MIN_SUMMARY_SPEEDUP
