"""E12 (fault recovery): tuning through injected faults vs fault-free.

The PR 7 failure-containment layer is exercised end to end on an XMark
database (``repro.tools.recovery_compare.compare_recovery_modes``,
shared with the perf recorder):

* **clean run** -- the tuning controller converges on the training
  workload with the fault harness disarmed; the tuning phase is
  wall-timed and every query's result count recorded.
* **faulted run** -- the same protocol under a deterministic fault
  plan: transient faults at every seam plus one persistent failure of
  the first physical index build.  The staged build dies, the plan
  rolls back, the parked builds resume after a bounded backoff, and
  the loop must converge to the *same* configuration with identical
  query results.
* **degraded mode** -- one live index is marked unusable; the
  summary-scan fallback must return result counts identical to the
  clean run, and the repair path must rebuild the index afterwards.

The headline number is the recovery overhead ratio (faulted tuning
wall time over clean), asserted below ``MAX_RECOVERY_OVERHEAD``.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.recovery_compare import compare_recovery_modes
from repro.tools.report import render_table

#: Maximum accepted faulted-over-clean tuning wall-time ratio.  Roomy
#: on purpose: the faulted run re-stages every rolled-back build, so a
#: small multiple is expected; an order of magnitude is a regression.
MAX_RECOVERY_OVERHEAD = 10.0 if BENCH_SMOKE else 6.0


def test_e12_recovery_overhead_and_fallback_correctness(benchmark):
    comparison = benchmark.pedantic(
        compare_recovery_modes, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["clean s", "faulted s", "overhead", "faults", "absorbed",
         "rollbacks", "converged", "results", "fallback", "repaired"],
        [[f"{comparison.clean_seconds:.4f}",
          f"{comparison.faulted_seconds:.4f}",
          f"{comparison.overhead_ratio:.2f}x",
          comparison.faults_injected,
          comparison.transients_absorbed,
          comparison.rollbacks,
          "ok" if comparison.converged else "FAIL",
          "ok" if comparison.results_identical else "FAIL",
          "ok" if comparison.fallback_identical else "FAIL",
          "ok" if comparison.repaired else "FAIL"]])
    print_section(
        f"E12 fault recovery - containment overhead (XMark scale "
        f"{XMARK_SCALE})", table)

    assert comparison.faults_injected > 0, (
        "the fault plan injected nothing; the harness is not wired")
    assert comparison.rollbacks >= 1, (
        "the persistent build fault did not force a migration rollback")
    assert comparison.converged, (
        "the faulted run did not converge to the clean configuration "
        "with a consistent catalog")
    assert comparison.results_identical, (
        "query results diverged between the clean and faulted runs")
    assert comparison.fallback_identical, (
        "the degraded-mode summary-scan fallback changed query results")
    assert comparison.repaired, (
        "the repair path failed to rebuild the degraded index")
    assert comparison.overhead_ratio <= MAX_RECOVERY_OVERHEAD, (
        f"recovery overhead {comparison.overhead_ratio:.2f}x exceeds the "
        f"ceiling {MAX_RECOVERY_OVERHEAD}x")
