"""E9: advisor scalability with workload size and database size.

The paper's motivation ("increasingly complex queries over increasingly
large ... XML databases") implies the advisor itself must stay cheap.
This benchmark measures end-to-end recommendation time as (a) the number
of workload statements grows and (b) the database scale grows, and prints
the series.  Expected shape: time grows roughly linearly in the workload
size and sub-linearly-to-linearly in the database size (statistics are
collected once; candidate counts depend on the workload, not the data).
"""

from __future__ import annotations

import time

from conftest import BENCH_SMOKE, MIN_SUMMARY_SPEEDUP, print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.executor.measurement import measure_scan_modes
from repro.tools.report import render_table
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.xmark import XMarkConfig, generate_xmark_database

WORKLOAD_SIZES = (5, 10) if BENCH_SMOKE else (5, 10, 20, 40)
DATABASE_SCALES = (0.05, 0.1) if BENCH_SMOKE else (0.05, 0.1, 0.25)
BUDGET_BYTES = 128 * 1024.0


def _advise(database, workload):
    advisor = XmlIndexAdvisor(database,
                              AdvisorParameters(disk_budget_bytes=BUDGET_BYTES))
    return advisor.recommend(workload)


def test_e9_workload_size_scaling(benchmark, xmark_db):
    generator = SyntheticWorkloadGenerator(xmark_db, seed=17)
    workloads = {size: generator.generate(size, predicates_per_query=2,
                                          name=f"synthetic-{size}")
                 for size in WORKLOAD_SIZES}

    def _sweep():
        rows = []
        for size, workload in workloads.items():
            start = time.perf_counter()
            recommendation = _advise(xmark_db, workload)
            elapsed = time.perf_counter() - start
            rows.append({"queries": size, "seconds": elapsed,
                         "candidates": len(recommendation.candidates),
                         "indexes": len(recommendation.configuration)})
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["workload queries", "advisor time (s)", "candidates", "recommended indexes"],
        [[r["queries"], f"{r['seconds']:.3f}", r["candidates"], r["indexes"]]
         for r in rows])
    print_section("E9a - advisor time vs. workload size", table)
    # Candidate count grows with the workload; runtime stays tractable.
    assert rows[-1]["candidates"] >= rows[0]["candidates"]
    assert all(r["seconds"] < 60.0 for r in rows)


def test_e9_database_scale_scaling(benchmark, xmark_train):
    databases = {scale: generate_xmark_database(XMarkConfig(scale=scale, seed=42))
                 for scale in DATABASE_SCALES}

    def _sweep():
        rows = []
        for scale, database in databases.items():
            start = time.perf_counter()
            recommendation = _advise(database, xmark_train)
            elapsed = time.perf_counter() - start
            rows.append({"scale": scale,
                         "documents": database.statistics.document_count,
                         "elements": database.statistics.total_element_count,
                         "seconds": elapsed,
                         "improvement_pct": recommendation.improvement_percent()})
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["scale", "documents", "elements", "advisor time (s)", "improvement %"],
        [[f"{r['scale']:.2f}", r["documents"], r["elements"], f"{r['seconds']:.3f}",
          f"{r['improvement_pct']:.1f}"] for r in rows])
    print_section("E9b - advisor time vs. database scale", table)
    assert all(r["seconds"] < 60.0 for r in rows)
    # Bigger databases benefit at least as much from indexing (scans cost more).
    assert rows[-1]["improvement_pct"] >= rows[0]["improvement_pct"] - 5.0


def test_e9_summary_speedup_scaling(benchmark, xmark_train):
    """Structural-summary scan speedup as the database scale grows.

    The interpretive scan re-walks every node tree once per location
    step, so its cost grows with total nodes; the summary answers the
    same lookups from per-path dictionaries.  Expected shape: the
    speedup holds (or grows) as the database gets bigger.
    """
    databases = {scale: generate_xmark_database(XMarkConfig(scale=scale, seed=42))
                 for scale in DATABASE_SCALES}

    def _sweep():
        rows = []
        for scale, database in databases.items():
            measurements = measure_scan_modes(database, xmark_train)
            interpretive = measurements["scan-interpretive"]
            summary = measurements["scan-summary"]
            rows.append({
                "scale": scale,
                "documents": database.statistics.document_count,
                "interpretive_ms": interpretive.total_seconds * 1000,
                "summary_ms": summary.total_seconds * 1000,
                "speedup": (interpretive.total_seconds / summary.total_seconds
                            if summary.total_seconds > 0 else float("inf")),
                "equal": all(a.result_count == b.result_count
                             for a, b in zip(interpretive.per_query,
                                             summary.per_query)),
            })
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["scale", "documents", "interpretive (ms)", "summary (ms)", "speedup"],
        [[f"{r['scale']:.2f}", r["documents"], f"{r['interpretive_ms']:.1f}",
          f"{r['summary_ms']:.1f}", f"{r['speedup']:.2f}x"] for r in rows])
    print_section("E9c - structural-summary scan speedup vs. database scale", table)
    assert all(r["equal"] for r in rows)
    # At the largest scale the structural summary must be a clear win.
    assert rows[-1]["speedup"] >= MIN_SUMMARY_SPEEDUP
