"""E10 (online tuning): the autonomous loop vs the offline advisor.

The PR 5 control plane is exercised end to end on an XMark database
(``repro.tools.online_compare.compare_online_offline``, shared with the
tier-1 ``bench_smoke`` guard and the perf recorder):

* **stationary convergence** -- a monitored executor serves the XMark
  training workload; after one tuning cycle the loop's applied
  configuration must be byte-identical (index key sets) to an offline
  advisor run on the same queries, and a further stationary cycle must
  report no drift (no oscillation).
* **shift re-convergence** -- traffic switches to the held-out queries;
  the controller must detect the drift, migrate (dropping now-useless
  indexes), and hold a configuration byte-identical to the offline
  advisor run on the shifted workload once the superseded traffic has
  decayed below the prune floor.
* **bounded compression** -- an ad-hoc template flood at 1x and 10x
  volume: the compressed advisor input must stay at or below the
  configured cluster cap at both volumes (counts, so deterministic);
  asserted floor ``MIN_ONLINE_COMPRESSION`` captured templates per
  compressed cluster at 10x.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.online_compare import compare_online_offline
from repro.tools.report import render_table

#: Minimum accepted captured-templates-per-cluster ratio at 10x volume
#: (deterministic: it counts templates, not seconds).
MIN_ONLINE_COMPRESSION = 2.0 if BENCH_SMOKE else 4.0


def test_e10_online_loop_convergence_and_bounded_input(benchmark):
    comparison = benchmark.pedantic(
        compare_online_offline, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["stationary", "stable", "index plans", "drift", "drops",
         "reconverged", "captured 1x/10x", "compressed 1x/10x", "ratio"],
        [["ok" if comparison.stationary_identical else "FAIL",
          "ok" if comparison.stationary_stable else "FAIL",
          comparison.index_plans_after_migration,
          f"{comparison.drift_score:.2f}",
          "ok" if comparison.migrated_with_drops else "FAIL",
          "ok" if comparison.reconverged_identical else "FAIL",
          f"{comparison.captured_templates_1x}/{comparison.captured_templates_10x}",
          f"{comparison.compressed_size_1x}/{comparison.compressed_size_10x}",
          f"{comparison.compression_ratio:.1f}x"]])
    print_section(
        f"E10 online tuning - autonomous loop (XMark scale {XMARK_SCALE})",
        table)

    assert comparison.stationary_identical, (
        "online loop configuration diverged from the offline advisor on "
        f"a stationary workload: online {sorted(comparison.online_keys)} "
        f"vs offline {sorted(comparison.offline_keys)}")
    assert comparison.stationary_stable, (
        "the loop re-tuned on a stationary workload (oscillation)")
    assert comparison.index_plans_after_migration > 0, (
        "no query used an index plan after the online migration")
    assert comparison.drift_detected, (
        "the injected workload shift was not detected")
    assert comparison.migrated_with_drops, (
        "the post-shift migration dropped no stale index")
    assert comparison.reconverged_identical, (
        "the loop did not re-converge to the offline advisor's "
        "configuration after the shift")
    assert comparison.compression_bounded, (
        f"compressed advisor input exceeded the cluster cap: "
        f"{comparison.compressed_size_1x}/{comparison.compressed_size_10x} "
        f"clusters vs cap {comparison.flood_cluster_cap}")
    assert comparison.compression_ratio >= MIN_ONLINE_COMPRESSION, (
        f"online compression regressed: {comparison.captured_templates_10x} "
        f"captured templates -> {comparison.compressed_size_10x} clusters "
        f"({comparison.compression_ratio:.1f}x < {MIN_ONLINE_COMPRESSION}x)")
    # The shared aggregate predicate: catches any flag added to the
    # protocol that the per-flag asserts above do not know about yet.
    assert comparison.converged
