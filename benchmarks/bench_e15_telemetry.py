"""E15 (telemetry): tracing overhead and observe-only equivalence on
the predicate-heavy XMark+TPoX workload.

PR 10 attached a telemetry plane to the executor: every execution
records registry metrics (counters are never optional), and a *traced*
execution additionally builds the per-query span tree (parse ->
compile -> plan -> route -> scan/index-probe -> residual -> extract)
and pairs the plan's predicted cost with the measured wall time.  The
plane is observe-only by contract, so the benchmark pins two facts:

* **equivalence** -- per-query result counts, documents examined and
  extracted value streams byte-identical between a traced and an
  untraced executor sharing the database (tracing must never change
  what a query returns);
* **overhead** -- traced wall-clock over untraced wall-clock, best of
  ``repeats`` per mode, gated at 1.15x (the same ceiling CI's
  ``REPRO_SMOKE_MAX_TELEMETRY_OVERHEAD`` enforces): span trees are a
  handful of small objects per query, not a second execution.

Shape: ``repro.tools.telemetry_compare.compare_telemetry_modes``
(shared with the perf recorder's E15 series), run at the benchmark
scale.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.report import render_table
from repro.tools.telemetry_compare import compare_telemetry_modes

#: Maximum accepted traced-over-untraced wall-clock ratio.  Smoke mode
#: runs tiny timed regions where the fixed per-query tracing cost is a
#: larger fraction of noisy sub-millisecond totals, so it gets slack.
MAX_TELEMETRY_OVERHEAD = 1.35 if BENCH_SMOKE else 1.15


def test_e15_telemetry_overhead_and_equivalence(benchmark):
    comparison = benchmark.pedantic(
        compare_telemetry_modes,
        kwargs={"scale": XMARK_SCALE, "repeats": 5},
        rounds=1, iterations=1)

    table = render_table(
        ["docs", "untraced s", "traced s", "overhead",
         "spans", "cost samples", "rows"],
        [[comparison.documents,
          f"{comparison.untraced_seconds:.4f}",
          f"{comparison.traced_seconds:.4f}",
          f"{comparison.overhead_ratio:.2f}x",
          comparison.spans_recorded,
          comparison.cost_samples,
          comparison.result_rows]])
    print_section(
        "E15 telemetry - traced vs untraced execution "
        f"(XMark scale {XMARK_SCALE})", table)

    assert comparison.identical_results, (
        "tracing changed query results; the telemetry plane must be "
        "observe-only")
    # Every query produced a span tree and every planned query paired
    # its predicted cost with a measurement.  The traced executor runs
    # the workload once to warm up and once per repeat, and its cost
    # accounting accumulates, so the sample count is a whole multiple
    # of the workload size.
    assert comparison.spans_recorded >= comparison.queries_total
    assert comparison.cost_samples >= comparison.queries_total
    assert comparison.cost_samples % comparison.queries_total == 0
    assert comparison.overhead_ratio <= MAX_TELEMETRY_OVERHEAD, (
        f"tracing overhead regressed: {comparison.overhead_ratio:.2f}x "
        f"> {MAX_TELEMETRY_OVERHEAD:.2f}x at scale {XMARK_SCALE}")
