"""E2 (Figure 3): estimating the benefit of an index configuration.

Reproduces the second demo panel: given a query and a hypothetical index
configuration, the Evaluate Indexes mode reports the estimated cost under
that configuration.  The printed table compares, for each XMark workload
query, the no-index cost against the cost under a hand-picked
configuration (the same kind of what-if question the demo GUI answers),
and verifies the expected shape: costs never increase and the queries the
configuration targets improve substantially.
"""

from __future__ import annotations

from conftest import print_section

from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.explain import evaluate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.tools.report import render_table
from repro.xquery.model import ValueType
from repro.xquery.normalizer import normalize_workload

#: The hand-picked configuration the demo scenario evaluates: generalized
#: region/item indexes plus a person-id index.
DEMO_CONFIGURATION = IndexConfiguration([
    IndexDefinition.create("/site/regions/*/item/quantity", ValueType.DOUBLE),
    IndexDefinition.create("/site/regions/*/item/price", ValueType.DOUBLE),
    IndexDefinition.create("/site/people/person/@id", ValueType.VARCHAR),
    IndexDefinition.create("/site/people/person/profile/@income", ValueType.DOUBLE),
], name="demo-configuration")


def _evaluate_workload(database, workload, configuration):
    optimizer = Optimizer(database)
    queries = [q for q in normalize_workload(workload) if not q.is_update]
    rows = []
    for query in queries:
        baseline = optimizer.optimize(query, candidate_indexes=[]).total_cost
        result = evaluate_indexes(query, database, configuration, optimizer=optimizer)
        rows.append((query.query_id, baseline, result.estimated_cost,
                     ", ".join(i.pattern.to_text() for i in result.used_indexes) or "-"))
    return rows


def test_e2_evaluate_configuration(benchmark, xmark_db, xmark_train):
    rows = benchmark.pedantic(_evaluate_workload,
                              args=(xmark_db, xmark_train, DEMO_CONFIGURATION),
                              rounds=3, iterations=1)
    table = render_table(
        ["query", "cost (no idx)", "cost (config)", "indexes used"],
        [[qid, f"{base:.1f}", f"{cost:.1f}", used] for qid, base, cost, used in rows])
    improved = [r for r in rows if r[2] < r[1] * 0.99]
    print_section(
        "E2 / Figure 3 - estimated cost under a hypothetical configuration",
        table + f"\n\nqueries improved by the configuration: {len(improved)}/{len(rows)}")
    # Shape: no query gets worse; the targeted queries improve noticeably.
    assert all(cost <= base + 1e-6 for _, base, cost, _ in rows)
    assert len(improved) >= 4
