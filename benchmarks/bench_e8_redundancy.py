"""E8: the index redundancy problem and the greedy heuristics.

Section 2.3: "Greedy search relies only on the benefit and size of
candidate indexes ... so it can select general indexes that can be used
for path expressions that are already covered by other indexes in the
configuration.  This can result in some indexes chosen by the advisor
never being used by the optimizer."

This benchmark quantifies that: for a sweep of tight disk budgets, it
reports how many recommended indexes are never used by any query plan and
how much of the budget they waste, for plain greedy vs. greedy with the
redundancy heuristics.  Expected shape: plain greedy wastes space on
unused indexes at some budgets; the heuristic variant never does and its
benefit is at least as high.
"""

from __future__ import annotations

from conftest import print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.enumeration import create_search
from repro.index.definition import IndexConfiguration
from repro.tools.report import render_table

BUDGET_FRACTIONS = (0.15, 0.3, 0.5, 0.75)


def _run(database, workload):
    advisor = XmlIndexAdvisor(database, AdvisorParameters())
    queries = advisor.normalize(workload)
    basic = advisor.enumerate_candidates(queries)
    generalization = advisor.generalize(basic)
    evaluator = ConfigurationEvaluator(database, queries)
    overtrained_size = evaluator.configuration_size_bytes(
        IndexConfiguration([c.to_definition() for c in basic]))
    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = overtrained_size * fraction
        for algorithm in (SearchAlgorithm.GREEDY, SearchAlgorithm.GREEDY_HEURISTIC):
            parameters = AdvisorParameters(disk_budget_bytes=budget,
                                           search_algorithm=algorithm)
            result = create_search(algorithm, evaluator, parameters).search(
                generalization.candidates, generalization.dag)
            unused = result.benefit.unused_indexes
            wasted = sum(result.benefit.index_sizes.get(i.key, 0.0) for i in unused)
            rows.append({
                "fraction": fraction,
                "algorithm": algorithm.value,
                "indexes": len(result.configuration),
                "unused": len(unused),
                "wasted_kb": wasted / 1024.0,
                "benefit": result.benefit.total_benefit,
            })
    return rows


def test_e8_redundant_index_detection(benchmark, xmark_db, xmark_train):
    rows = benchmark.pedantic(_run, args=(xmark_db, xmark_train), rounds=1, iterations=1)
    table = render_table(
        ["budget (xovertrained)", "algorithm", "#indexes", "unused", "wasted KiB", "benefit"],
        [[f"{r['fraction']:.2f}", r["algorithm"], r["indexes"], r["unused"],
          f"{r['wasted_kb']:.1f}", f"{r['benefit']:.1f}"] for r in rows])
    print_section("E8 - redundant indexes: plain greedy vs. greedy with heuristics", table)

    heuristic_rows = [r for r in rows if r["algorithm"] == "greedy-heuristic"]
    greedy_rows = [r for r in rows if r["algorithm"] == "greedy"]
    # The heuristic search never recommends an index no plan uses.
    assert all(r["unused"] == 0 for r in heuristic_rows)
    # And it never loses to plain greedy in benefit at the same budget.
    for greedy_row, heuristic_row in zip(greedy_rows, heuristic_rows):
        assert heuristic_row["benefit"] >= greedy_row["benefit"] - 1e-6
