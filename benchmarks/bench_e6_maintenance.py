"""E6 (maintenance): delta-propagation vs. teardown-and-rebuild on
document add.

The paper's advisor targets evolving databases; this experiment
measures what PR 3's maintenance layer buys when documents arrive: the
wall-clock to keep a loaded XMark collection's derived state current
(path summary + statistics synopsis + one configured physical index)
through per-document deltas versus the legacy full rebuild, and asserts
that the two paths end in byte-identical state.

Shape: ``repro.tools.maintenance_compare.compare_maintenance_modes``
(shared with the tier-1 ``bench_smoke`` guard and the perf recorder),
run at the benchmark scale.  Expected: the incremental path wins by an
order of magnitude at scale 0.25 (each add touches one document's nodes
instead of every node in the collection); the assertion floor is 5x
(2x in smoke mode, where tiny timed runs are noisy).
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.maintenance_compare import compare_maintenance_modes
from repro.tools.report import render_table

#: Minimum accepted incremental-over-rebuild maintenance speedup: the
#: acceptance floor at benchmark scale, conservative in smoke mode.
MIN_MAINT_RATIO = 2.0 if BENCH_SMOKE else 5.0


def test_e6_incremental_maintenance_speedup(benchmark):
    comparison = benchmark.pedantic(
        compare_maintenance_modes, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["base docs", "docs added", "incremental s", "rebuild s",
         "speedup", "identical"],
        [[comparison.base_documents, comparison.documents_added,
          f"{comparison.incremental_seconds:.4f}",
          f"{comparison.rebuild_seconds:.4f}",
          f"{comparison.ratio:.1f}x", comparison.identical]])
    print_section(
        "E6 maintenance - incremental document add vs. full rebuild "
        f"(XMark scale {XMARK_SCALE})", table)

    assert comparison.identical, (
        "delta-maintained summary/statistics/index diverged from rebuild")
    assert comparison.ratio >= MIN_MAINT_RATIO, (
        f"incremental maintenance speedup regressed: {comparison.ratio:.2f}x "
        f"< {MIN_MAINT_RATIO:.1f}x at scale {XMARK_SCALE}")


def test_e6_maintenance_scales_with_collection_size(benchmark):
    """The rebuild path degrades with collection size while the
    incremental path tracks the *document* size: the speedup must grow
    (weakly) with scale."""
    scales = (0.05, 0.1) if BENCH_SMOKE else (0.05, 0.25)

    def _sweep():
        return [(scale, compare_maintenance_modes(scale=scale,
                                                  documents_to_add=4))
                for scale in scales]

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["scale", "base docs", "incremental s", "rebuild s", "speedup"],
        [[scale, comparison.base_documents,
          f"{comparison.incremental_seconds:.4f}",
          f"{comparison.rebuild_seconds:.4f}",
          f"{comparison.ratio:.1f}x"] for scale, comparison in rows])
    print_section("E6 maintenance - speedup vs. collection scale", table)

    for _scale, comparison in rows:
        assert comparison.identical
    # Weak monotonicity with generous slack: timed ratios jitter, but a
    # flat-or-falling trend at 4x slack means the incremental path has
    # stopped being O(document) in collection size.
    first, last = rows[0][1].ratio, rows[-1][1].ratio
    assert last >= first / 4.0
