"""E6: update-cost awareness ("taking into account the cost of updating
the index on data modification").

Sweeps the update ratio of the TPoX-style workload and reports, per
ratio, the recommended configuration's size, index count, and net
estimated benefit.  Expected shape: as the update share grows, index
maintenance eats into the benefit and the advisor recommends fewer /
smaller indexes, down to none for overwhelmingly write-heavy workloads.
"""

from __future__ import annotations

from conftest import print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.tools.report import render_table
from repro.workloads.tpox import tpox_workload

UPDATE_RATIOS = (0.0, 0.3, 0.6, 0.9)
BUDGET_BYTES = 96 * 1024.0


def _sweep(database):
    rows = []
    for ratio in UPDATE_RATIOS:
        workload = tpox_workload(update_ratio=ratio)
        advisor = XmlIndexAdvisor(database,
                                  AdvisorParameters(disk_budget_bytes=BUDGET_BYTES))
        recommendation = advisor.recommend(workload)
        rows.append({
            "update_ratio": ratio,
            "indexes": len(recommendation.configuration),
            "size_kb": recommendation.total_size_bytes / 1024.0,
            "benefit": recommendation.total_benefit,
            "improvement_pct": recommendation.improvement_percent(),
        })
    return rows


def test_e6_update_ratio_sweep(benchmark, tpox_db):
    rows = benchmark.pedantic(_sweep, args=(tpox_db,), rounds=1, iterations=1)
    table = render_table(
        ["update ratio", "#indexes", "size KiB", "net benefit", "improvement %"],
        [[f"{r['update_ratio']:.1f}", r["indexes"], f"{r['size_kb']:.1f}",
          f"{r['benefit']:.1f}", f"{r['improvement_pct']:.1f}"] for r in rows])
    print_section("E6 - net benefit vs. workload update ratio (TPoX)", table)

    benefits = [r["benefit"] for r in rows]
    # Read-only gets the largest benefit; benefit decreases monotonically
    # with the update share.
    assert all(b1 >= b2 - 1e-6 for b1, b2 in zip(benefits, benefits[1:]))
    assert benefits[0] > benefits[-1]
    # And the advisor never recommends a configuration with negative net benefit.
    assert all(b >= -1e-6 for b in benefits)


def test_e6_update_aware_vs_blind(benchmark, tpox_db):
    """Ablation: charge vs. ignore update cost for an update-heavy workload.

    An update-blind advisor recommends indexes whose maintenance cost
    exceeds their query benefit; the update-aware advisor does not.
    """
    workload = tpox_workload(update_ratio=0.8)

    def _compare():
        aware = XmlIndexAdvisor(
            tpox_db, AdvisorParameters(disk_budget_bytes=BUDGET_BYTES,
                                       account_for_updates=True)).recommend(workload)
        blind = XmlIndexAdvisor(
            tpox_db, AdvisorParameters(disk_budget_bytes=BUDGET_BYTES,
                                       account_for_updates=False)).recommend(workload)
        # Re-evaluate the blind recommendation *with* update cost to expose
        # its real (net) benefit.
        from repro.advisor.benefit import ConfigurationEvaluator

        evaluator = ConfigurationEvaluator(tpox_db, aware.queries,
                                           AdvisorParameters(account_for_updates=True))
        blind_net = evaluator.evaluate(blind.configuration).total_benefit
        return aware, blind, blind_net

    aware, blind, blind_net = benchmark.pedantic(_compare, rounds=1, iterations=1)
    body = (f"update-aware recommendation: {len(aware.configuration)} indexes, "
            f"net benefit {aware.total_benefit:.1f}\n"
            f"update-blind recommendation: {len(blind.configuration)} indexes, "
            f"net benefit when update cost is charged: {blind_net:.1f}")
    print_section("E6 ablation - update-aware vs. update-blind advisor", body)
    assert aware.total_benefit >= blind_net - 1e-6
