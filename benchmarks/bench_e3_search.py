"""E3 (Figure 4): searching the space of candidate indexes.

Reproduces the third demo panel: the generalization DAG built from the
workload's basic candidates, and how the three search algorithms traverse
it under different disk budgets.  The printed series is, per budget (as a
fraction of the overtrained configuration's size), the estimated benefit
and configuration size chosen by plain greedy, greedy with heuristics,
and top-down search, plus an ablation that disables index-interaction-
aware (whole-configuration) evaluation.

Expected shape (per the paper): greedy-with-heuristics dominates plain
greedy at tight budgets; top-down produces the most general
configurations; benefit grows with budget and saturates at the
overtrained bound.
"""

from __future__ import annotations

from conftest import print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.enumeration import create_search
from repro.index.definition import IndexConfiguration
from repro.tools.report import render_table
from repro.tools.whatif_compare import compare_search_modes
from repro.xquery.normalizer import normalize_workload

BUDGET_FRACTIONS = (0.1, 0.25, 0.5, 1.0)

#: The incremental engine must cut per-query what-if costings by at
#: least this factor over the whole E3 budget sweep.
MIN_WHATIF_RATIO = 5.0


def _prepare(database, workload):
    advisor = XmlIndexAdvisor(database, AdvisorParameters())
    queries = advisor.normalize(workload)
    basic = advisor.enumerate_candidates(queries)
    generalization = advisor.generalize(basic)
    evaluator = ConfigurationEvaluator(database, queries)
    overtrained = IndexConfiguration(
        [c.to_definition() for c in basic], name="overtrained")
    overtrained_size = evaluator.configuration_size_bytes(overtrained)
    return generalization, evaluator, overtrained_size


def _run_searches(generalization, evaluator, overtrained_size):
    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = overtrained_size * fraction
        for algorithm in SearchAlgorithm:
            parameters = AdvisorParameters(disk_budget_bytes=budget,
                                           search_algorithm=algorithm)
            search = create_search(algorithm, evaluator, parameters)
            result = search.search(generalization.candidates, generalization.dag)
            rows.append({
                "budget_fraction": fraction,
                "algorithm": algorithm.value,
                "indexes": len(result.configuration),
                "size_kb": result.size_bytes / 1024.0,
                "benefit": result.benefit.total_benefit,
                "unused": len(result.benefit.unused_indexes),
            })
    return rows


def test_e3_generalization_dag_and_search(benchmark, xmark_db, xmark_train):
    generalization, evaluator, overtrained_size = _prepare(xmark_db, xmark_train)
    rows = benchmark.pedantic(_run_searches,
                              args=(generalization, evaluator, overtrained_size),
                              rounds=1, iterations=1)
    dag = generalization.dag
    header = (f"basic candidates: {generalization.basic_count}, "
              f"expanded candidates: {len(generalization.candidates)}, "
              f"DAG nodes: {dag.node_count}, edges: {dag.edge_count}, "
              f"depth: {dag.depth()}, roots: {len(dag.roots)}\n"
              f"overtrained configuration size: {overtrained_size / 1024:.1f} KiB\n")
    table = render_table(
        ["budget (xovertrained)", "algorithm", "#indexes", "size KiB", "benefit", "unused"],
        [[f"{r['budget_fraction']:.2f}", r["algorithm"], r["indexes"],
          f"{r['size_kb']:.1f}", f"{r['benefit']:.1f}", r["unused"]] for r in rows])
    print_section("E3 / Figure 4 - generalization DAG and configuration search",
                  header + table)

    # Shape checks.
    assert generalization.generalized_count > 0
    assert dag.depth() >= 2
    by_key = {(r["budget_fraction"], r["algorithm"]): r for r in rows}
    for fraction in BUDGET_FRACTIONS:
        greedy = by_key[(fraction, "greedy")]
        heuristic = by_key[(fraction, "greedy-heuristic")]
        assert heuristic["benefit"] >= greedy["benefit"] - 1e-6
        assert heuristic["unused"] == 0
    # Benefit grows (weakly) with budget for every algorithm.
    for algorithm in SearchAlgorithm:
        benefits = [by_key[(f, algorithm.value)]["benefit"] for f in BUDGET_FRACTIONS]
        assert all(b2 >= b1 - 1e-6 for b1, b2 in zip(benefits, benefits[1:]))


def _report_incremental(tag, sweep):
    table = render_table(
        ["budget (xovertrained)", "algorithm", "identical",
         "legacy costings", "incremental costings", "ratio"],
        [[f"{row.budget_fraction:.2f}", row.algorithm,
          "yes" if row.identical else "NO",
          row.legacy_costings, row.incremental_costings,
          f"{row.costings_ratio:.1f}x"]
         for row in sweep.rows])
    legacy, incr = sweep.totals["legacy"], sweep.totals["incremental"]
    print_section(
        f"E3 - incremental what-if engine vs legacy full re-evaluation ({tag})",
        table + f"\ntotal what-if costings: {legacy['costings']} legacy"
                f" -> {incr['costings']} incremental "
                f"({sweep.costings_ratio:.1f}x fewer)\n"
                f"search wall time: {legacy['seconds'] * 1000:.0f}ms"
                f" -> {incr['seconds'] * 1000:.0f}ms "
                f"({sweep.time_speedup:.1f}x faster)")
    assert sweep.identical, "incremental search diverged from legacy"
    assert sweep.costings_ratio >= MIN_WHATIF_RATIO, (
        f"what-if savings regressed: {sweep.costings_ratio:.1f}x "
        f"< {MIN_WHATIF_RATIO}x")


def test_e3_incremental_whatif_xmark(benchmark, xmark_db, xmark_train):
    """Incremental + lazy-greedy must match legacy recommendations on the
    XMark search byte-for-byte with >= 5x fewer what-if costings."""
    sweep = benchmark.pedantic(compare_search_modes,
                               args=(xmark_db, xmark_train),
                               kwargs={"budget_fractions": BUDGET_FRACTIONS},
                               rounds=1, iterations=1)
    _report_incremental("XMark", sweep)


def test_e3_incremental_whatif_tpox(benchmark, tpox_db, tpox_mixed):
    """Same equivalence + savings guard on the TPoX mixed workload
    (updates charge maintenance; multi-predicate queries exercise the
    volatile eager re-evaluation path of the lazy-greedy queue)."""
    sweep = benchmark.pedantic(compare_search_modes,
                               args=(tpox_db, tpox_mixed),
                               kwargs={"budget_fractions": BUDGET_FRACTIONS},
                               rounds=1, iterations=1)
    _report_incremental("TPoX", sweep)


def test_e3_ablation_index_interaction(benchmark, xmark_db, xmark_train):
    """Ablation: evaluate configurations as a whole (index interaction) vs.
    summing single-index benefits.  Summing over-estimates the benefit of
    redundant configurations."""
    generalization, evaluator, overtrained_size = _prepare(xmark_db, xmark_train)
    candidates = list(generalization.candidates)

    def _compare():
        definitions = [c.to_definition() for c in candidates]
        whole = evaluator.evaluate(definitions).total_benefit
        summed = sum(evaluator.evaluate([d]).total_benefit for d in definitions)
        return whole, summed

    whole, summed = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print_section(
        "E3 ablation - index interaction",
        f"benefit of full candidate set evaluated as one configuration: {whole:.1f}\n"
        f"sum of single-index benefits (no interaction modelling):      {summed:.1f}\n"
        f"over-estimate factor without interaction: {summed / max(whole, 1e-9):.2f}x")
    assert summed > whole
