"""Shared fixtures for the experiment benchmarks (E1-E9).

Each ``bench_eN_*.py`` module reproduces one experiment from DESIGN.md's
experiment index.  The fixtures here build the benchmark databases and
workloads once per session so the numbers across benches are comparable,
and provide a small helper for printing the result tables that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.workloads import (
    TpoxConfig,
    XMarkConfig,
    generate_tpox_database,
    generate_xmark_database,
    tpox_workload,
    xmark_query_workload,
    xmark_unseen_queries,
)

def _env_float(name: str, default: float) -> float:
    """Read a float-valued env override (ignored when unparsable)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


#: Smoke mode (``REPRO_BENCH_SMOKE=1``) caps every workload size so the
#: benchmark bodies double as fast regression checks; explicit
#: ``REPRO_BENCH_XMARK_SCALE`` / ``REPRO_BENCH_TPOX_SCALE`` overrides win.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() not in ("", "0", "false")

#: Scale used by the benchmarks: big enough that index plans clearly win,
#: small enough that the whole benchmark suite runs in well under a minute.
XMARK_SCALE = _env_float("REPRO_BENCH_XMARK_SCALE", 0.05 if BENCH_SMOKE else 0.25)
#: TPoX stays at the full scale even in smoke mode: the collection-
#: scoped cost model no longer charges a query for scanning the other
#: two TPoX collections, so each collection must hold enough documents
#: that selective indexes beat the (much cheaper) routed scans -- at
#: tiny scales the advisor correctly recommends nothing, which defeats
#: the update-ratio and search benches.  Generation at 0.25 is cheap
#: (a few hundred small documents).
TPOX_SCALE = _env_float("REPRO_BENCH_TPOX_SCALE", 0.25)

#: Minimum accepted scan-vs-summary speedup.  At the full benchmark
#: scale the structural summary wins by ~10x, so 5x leaves headroom; at
#: the tiny smoke scales runs are noisy and the floor is conservative.
MIN_SUMMARY_SPEEDUP = 2.0 if BENCH_SMOKE else 5.0


@pytest.fixture(scope="session")
def xmark_db():
    return generate_xmark_database(XMarkConfig(scale=XMARK_SCALE, seed=42))


@pytest.fixture(scope="session")
def xmark_train():
    return xmark_query_workload()


@pytest.fixture(scope="session")
def xmark_unseen():
    return xmark_unseen_queries()


@pytest.fixture(scope="session")
def tpox_db():
    return generate_tpox_database(TpoxConfig(scale=TPOX_SCALE, seed=7))


@pytest.fixture(scope="session")
def tpox_mixed():
    return tpox_workload(update_ratio=0.3)


def print_section(title: str, body: str) -> None:
    """Print a labeled result block (captured into bench_output.txt)."""
    bar = "=" * max(30, len(title) + 4)
    print(f"\n{bar}\n  {title}\n{bar}\n{body}\n", flush=True)
