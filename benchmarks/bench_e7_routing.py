"""E7 (routing): collection-scoped costing + structural routing vs. the
whole-database escape hatch.

XMark and TPoX live co-resident in one database (the TPoX side scaled
up as ballast) and two effects of PR 4's collection-scoped layer are
measured:

* **scan routing** -- the XMark query workload is single-collection-
  rooted, so the routed executor's scan path visits only the ``xmark``
  collection while the unrouted escape hatch
  (``use_collection_costing=False`` / ``use_collection_routing=False``)
  walks the TPoX ballast for every query.  Expected: the routed scan
  wins by roughly the ballast factor (~9-10x at the default shapes);
  asserted floor 5x (2x in smoke mode).
* **what-if re-costing** -- after a document add to a *single*
  collection, the escape hatch's global-aggregates guard forces the
  advisor's evaluator to re-cost every workload query, while the
  routed evaluator re-costs only the queries whose routing set
  contains the changed collection.  Queries routed only to other
  collections are re-costed **zero** times, and the delta result stays
  byte-identical to a fresh evaluation.  The ratio counts work, not
  seconds, so it is deterministic; asserted floor 5x.

Shape: ``repro.tools.routing_compare.compare_routing_modes`` (shared
with the tier-1 ``bench_smoke`` guard and the perf recorder), run at
the benchmark scale.
"""

from __future__ import annotations

from conftest import BENCH_SMOKE, XMARK_SCALE, print_section

from repro.tools.routing_compare import compare_routing_modes
from repro.tools.report import render_table

#: Minimum accepted routed-over-unrouted ratios (scan wall-clock and
#: what-if re-costing count): the acceptance floor at benchmark scale,
#: conservative in smoke mode where tiny timed runs are noisy.
MIN_ROUTING_RATIO = 2.0 if BENCH_SMOKE else 5.0


def test_e7_routing_speedup_and_exactness(benchmark):
    comparison = benchmark.pedantic(
        compare_routing_modes, kwargs={"scale": XMARK_SCALE},
        rounds=1, iterations=1)

    table = render_table(
        ["xmark docs", "ballast docs", "routed s", "unrouted s", "scan x",
         "recost routed", "recost legacy", "recost x", "cross"],
        [[comparison.xmark_documents, comparison.ballast_documents,
          f"{comparison.routed_seconds:.4f}",
          f"{comparison.unrouted_seconds:.4f}",
          f"{comparison.scan_ratio:.1f}x",
          comparison.recostings_routed, comparison.recostings_unrouted,
          f"{comparison.recosting_ratio:.1f}x", comparison.cross_recostings]])
    print_section(
        "E7 routing - collection-scoped scan + what-if re-costing "
        f"(XMark scale {XMARK_SCALE})", table)

    assert comparison.identical_results, (
        "structural routing changed scan results")
    assert comparison.benefits_identical, (
        "routed delta benefits diverged from a fresh evaluation")
    assert comparison.configurations_identical, (
        "cached advisor stack recommended differently than a fresh one")
    # The acceptance criterion: a single-collection add re-costs zero
    # queries routed only to the other collections.
    assert comparison.cross_recostings == 0
    assert comparison.scan_ratio >= MIN_ROUTING_RATIO, (
        f"routed scan speedup regressed: {comparison.scan_ratio:.2f}x "
        f"< {MIN_ROUTING_RATIO:.1f}x at scale {XMARK_SCALE}")
    assert comparison.recosting_ratio >= MIN_ROUTING_RATIO, (
        f"routed re-costing savings regressed: "
        f"{comparison.recosting_ratio:.2f}x < {MIN_ROUTING_RATIO:.1f}x")


def test_e7_routing_scales_with_ballast(benchmark):
    """The unrouted scan pays for the ballast, the routed scan does not:
    the speedup must grow (weakly) with the ballast factor."""
    factors = (2.0, 4.0) if BENCH_SMOKE else (2.0, 8.0)

    def _sweep():
        return [(factor, compare_routing_modes(scale=XMARK_SCALE,
                                               ballast_factor=factor))
                for factor in factors]

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["ballast factor", "ballast docs", "routed s", "unrouted s", "speedup"],
        [[factor, comparison.ballast_documents,
          f"{comparison.routed_seconds:.4f}",
          f"{comparison.unrouted_seconds:.4f}",
          f"{comparison.scan_ratio:.1f}x"] for factor, comparison in rows])
    print_section("E7 routing - speedup vs. ballast factor", table)

    for _factor, comparison in rows:
        assert comparison.identical_results
    # Weak monotonicity with generous slack: timed ratios jitter, but a
    # flat-or-falling trend at 4x slack means routing has stopped
    # pruning the ballast.
    first, last = rows[0][1].scan_ratio, rows[-1][1].scan_ratio
    assert last >= first / 4.0
