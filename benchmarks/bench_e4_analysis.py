"""E4 (Figure 5): analyzing the XML Index Advisor recommendations.

Reproduces the fourth demo panel: for every workload query, the estimated
cost (1) with no indexes, (2) with the recommended configuration, and
(3) with the overtrained configuration of all basic candidates; plus the
same comparison for queries *beyond* the input workload, which shows the
benefit of recommending generalized configurations.
"""

from __future__ import annotations

from conftest import print_section

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.tools.report import render_table

BUDGET_BYTES = 192 * 1024.0


def _analyze(database, workload, unseen, algorithm):
    advisor = XmlIndexAdvisor(database,
                              AdvisorParameters(disk_budget_bytes=BUDGET_BYTES,
                                                search_algorithm=algorithm))
    recommendation = advisor.recommend(workload)
    analysis = RecommendationAnalysis(database, recommendation)
    training_rows = analysis.compare_query_costs()
    unseen_rows = analysis.evaluate_additional_queries(unseen)
    summary = analysis.summary()
    return recommendation, training_rows, unseen_rows, summary


def _table(rows):
    return render_table(
        ["query", "no indexes", "recommended", "overtrained", "speedup"],
        [[r.query_id, f"{r.cost_no_indexes:.1f}", f"{r.cost_recommended:.1f}",
          f"{r.cost_overtrained:.1f}", f"{r.speedup_recommended:.2f}x"] for r in rows])


def test_e4_recommendation_analysis(benchmark, xmark_db, xmark_train, xmark_unseen):
    recommendation, training_rows, unseen_rows, summary = benchmark.pedantic(
        _analyze, args=(xmark_db, xmark_train, xmark_unseen,
                        SearchAlgorithm.GREEDY_HEURISTIC),
        rounds=1, iterations=1)
    body = (recommendation.describe() + "\n\nTraining workload:\n" + _table(training_rows)
            + "\n\nUnseen queries (not in the training workload):\n"
            + _table(unseen_rows)
            + f"\n\nworkload improvement: {summary['improvement_recommended_pct']:.1f}% "
              f"(overtrained bound {summary['improvement_overtrained_pct']:.1f}%), "
              f"recommended size {summary['recommended_size_bytes'] / 1024:.1f} KiB vs "
              f"overtrained {summary['overtrained_size_bytes'] / 1024:.1f} KiB")
    print_section("E4 / Figure 5 - recommendation analysis (greedy-heuristic)", body)

    # Shapes: recommendation improves the workload, stays within the
    # overtrained bound, and never makes a query worse.
    assert summary["improvement_recommended_pct"] > 10.0
    assert summary["improvement_recommended_pct"] <= \
        summary["improvement_overtrained_pct"] + 1e-6
    assert all(r.cost_recommended <= r.cost_no_indexes + 1e-6 for r in training_rows)
    # The recommendation captures most of the achievable benefit.
    assert summary["improvement_recommended_pct"] >= \
        0.6 * summary["improvement_overtrained_pct"]


def test_e4_generalization_helps_unseen_queries(benchmark, xmark_db, xmark_train,
                                                xmark_unseen):
    recommendation, _, unseen_rows, _ = benchmark.pedantic(
        _analyze, args=(xmark_db, xmark_train, xmark_unseen, SearchAlgorithm.TOP_DOWN),
        rounds=1, iterations=1)
    helped = [r for r in unseen_rows if r.speedup_recommended > 1.01]
    body = (recommendation.describe() + "\n\nUnseen queries under the top-down "
            "(most general) recommendation:\n" + _table(unseen_rows)
            + f"\n\nunseen queries helped: {len(helped)}/{len(unseen_rows)}")
    print_section("E4 - unseen-query benefit of generalized configurations", body)
    assert helped, "generalized configurations must help some unseen queries"
