"""Exceptions raised by the XPath engine and pattern algebra."""

from __future__ import annotations


class XPathError(Exception):
    """Base class for XPath engine errors."""


class XPathParseError(XPathError):
    """Raised when an XPath expression or index pattern cannot be parsed."""

    def __init__(self, message: str, expression: str = "", position: int = -1) -> None:
        self.expression = expression
        self.position = position
        if expression:
            super().__init__(f"{message} in {expression!r} at offset {position}")
        else:
            super().__init__(message)


class XPathTypeError(XPathError):
    """Raised when an expression is applied to operands of the wrong type."""


class PatternError(XPathError):
    """Raised on invalid index-pattern operations."""
