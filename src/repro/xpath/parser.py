"""Lexer and recursive-descent parser for the XPath subset.

The entry point is :func:`parse_xpath`, which returns either a
:class:`~repro.xpath.ast.LocationPath` (for plain paths) or a
:class:`~repro.xpath.ast.ComparisonExpr` (for top-level comparisons like
``/site/people/person/@id = "person0"``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.xpath.ast import (
    Axis,
    BinaryOp,
    ComparisonExpr,
    FunctionCall,
    Literal,
    LocationPath,
    PathExpr,
    Predicate,
    Step,
)
from repro.xpath.errors import XPathParseError


class _TokenKind(enum.Enum):
    SLASH = "/"
    DOUBLE_SLASH = "//"
    AT = "@"
    STAR = "*"
    NAME = "name"
    STRING = "string"
    NUMBER = "number"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    OPERATOR = "op"
    DOT = "."
    DOTDOT = ".."
    VARIABLE = "$"
    END = "end"


@dataclass
class _Token:
    kind: _TokenKind
    text: str
    position: int


_OPERATORS = ("!=", "<=", ">=", "=", "<", ">")
_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:")


def _tokenize(expression: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    length = len(expression)
    while i < length:
        ch = expression[i]
        if ch.isspace():
            i += 1
            continue
        if expression.startswith("//", i):
            tokens.append(_Token(_TokenKind.DOUBLE_SLASH, "//", i))
            i += 2
            continue
        if ch == "/":
            tokens.append(_Token(_TokenKind.SLASH, "/", i))
            i += 1
            continue
        if ch == "@":
            tokens.append(_Token(_TokenKind.AT, "@", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(_Token(_TokenKind.STAR, "*", i))
            i += 1
            continue
        if ch == "[":
            tokens.append(_Token(_TokenKind.LBRACKET, "[", i))
            i += 1
            continue
        if ch == "]":
            tokens.append(_Token(_TokenKind.RBRACKET, "]", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(_Token(_TokenKind.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(_Token(_TokenKind.RPAREN, ")", i))
            i += 1
            continue
        if ch == ",":
            tokens.append(_Token(_TokenKind.COMMA, ",", i))
            i += 1
            continue
        if ch == "$":
            start = i
            i += 1
            while i < length and expression[i] in _NAME_CHARS:
                i += 1
            if i == start + 1:
                raise XPathParseError("expected variable name after '$'",
                                      expression, start)
            tokens.append(_Token(_TokenKind.VARIABLE, expression[start + 1:i], start))
            continue
        if expression.startswith("..", i):
            tokens.append(_Token(_TokenKind.DOTDOT, "..", i))
            i += 2
            continue
        if ch == "." and (i + 1 >= length or not expression[i + 1].isdigit()):
            tokens.append(_Token(_TokenKind.DOT, ".", i))
            i += 1
            continue
        matched_op = None
        for op in _OPERATORS:
            if expression.startswith(op, i):
                matched_op = op
                break
        if matched_op:
            tokens.append(_Token(_TokenKind.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in ("'", '"'):
            end = expression.find(ch, i + 1)
            if end == -1:
                raise XPathParseError("unterminated string literal", expression, i)
            tokens.append(_Token(_TokenKind.STRING, expression[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and expression[i + 1].isdigit()):
            start = i
            i += 1
            while i < length and (expression[i].isdigit() or expression[i] == "."):
                i += 1
            tokens.append(_Token(_TokenKind.NUMBER, expression[start:i], i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and expression[i] in _NAME_CHARS:
                i += 1
            name = expression[start:i]
            # ``text()`` is lexed as a NAME followed by parens and folded
            # back together by the parser.
            tokens.append(_Token(_TokenKind.NAME, name, start))
            continue
        raise XPathParseError(f"unexpected character {ch!r}", expression, i)
    tokens.append(_Token(_TokenKind.END, "", length))
    return tokens


class _Parser:
    def __init__(self, expression: str) -> None:
        self._expression = expression
        self._tokens = _tokenize(expression)
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind is not _TokenKind.END:
            self._index += 1
        return token

    def _expect(self, kind: _TokenKind) -> _Token:
        token = self._next()
        if token.kind is not kind:
            raise XPathParseError(
                f"expected {kind.value!r}, found {token.text!r}",
                self._expression, token.position)
        return token

    def _error(self, message: str) -> XPathParseError:
        token = self._peek()
        return XPathParseError(message, self._expression, token.position)

    # -- grammar -------------------------------------------------------
    def parse(self) -> PathExpr:
        expr = self._parse_or_expr()
        if self._peek().kind is not _TokenKind.END:
            raise self._error(f"unexpected trailing token {self._peek().text!r}")
        return expr

    def _parse_or_expr(self) -> PathExpr:
        left = self._parse_and_expr()
        while (self._peek().kind is _TokenKind.NAME and self._peek().text == "or"):
            self._next()
            right = self._parse_and_expr()
            left = ComparisonExpr(BinaryOp.OR, left, right)
        return left

    def _parse_and_expr(self) -> PathExpr:
        left = self._parse_comparison()
        while (self._peek().kind is _TokenKind.NAME and self._peek().text == "and"):
            self._next()
            right = self._parse_comparison()
            left = ComparisonExpr(BinaryOp.AND, left, right)
        return left

    def _parse_comparison(self) -> PathExpr:
        left = self._parse_value()
        if self._peek().kind is _TokenKind.OPERATOR:
            op_token = self._next()
            op = BinaryOp(op_token.text)
            right = self._parse_value()
            return ComparisonExpr(op, left, right)
        return left

    def _parse_value(self) -> PathExpr:
        token = self._peek()
        if token.kind is _TokenKind.STRING:
            self._next()
            return Literal(token.text)
        if token.kind is _TokenKind.NUMBER:
            self._next()
            return Literal(float(token.text))
        if token.kind is _TokenKind.LPAREN:
            self._next()
            inner = self._parse_or_expr()
            self._expect(_TokenKind.RPAREN)
            return inner
        if (token.kind is _TokenKind.NAME
                and self._peek(1).kind is _TokenKind.LPAREN
                and token.text not in ("text",)):
            return self._parse_function_call()
        if token.kind in (_TokenKind.SLASH, _TokenKind.DOUBLE_SLASH,
                          _TokenKind.NAME, _TokenKind.AT, _TokenKind.STAR,
                          _TokenKind.DOT, _TokenKind.DOTDOT,
                          _TokenKind.VARIABLE):
            return self._parse_location_path()
        raise self._error(f"unexpected token {token.text!r}")

    def _parse_function_call(self) -> FunctionCall:
        name = self._expect(_TokenKind.NAME).text
        self._expect(_TokenKind.LPAREN)
        arguments: List[PathExpr] = []
        if self._peek().kind is not _TokenKind.RPAREN:
            arguments.append(self._parse_or_expr())
            while self._peek().kind is _TokenKind.COMMA:
                self._next()
                arguments.append(self._parse_or_expr())
        self._expect(_TokenKind.RPAREN)
        return FunctionCall(name=name, arguments=arguments)

    def _parse_location_path(self) -> LocationPath:
        token = self._peek()
        absolute = False
        variable: Optional[str] = None
        steps: List[Step] = []
        pending_axis = Axis.CHILD

        if token.kind is _TokenKind.VARIABLE:
            variable = token.text
            self._next()
            next_token = self._peek()
            if next_token.kind is _TokenKind.SLASH:
                self._next()
            elif next_token.kind is _TokenKind.DOUBLE_SLASH:
                self._next()
                pending_axis = Axis.DESCENDANT_OR_SELF
            else:
                return LocationPath(steps=[], absolute=False, variable=variable)
        elif token.kind is _TokenKind.SLASH:
            absolute = True
            self._next()
            if self._peek().kind is _TokenKind.END:
                # The bare document-root path "/".
                return LocationPath(steps=[], absolute=True)
        elif token.kind is _TokenKind.DOUBLE_SLASH:
            absolute = True
            pending_axis = Axis.DESCENDANT_OR_SELF
            self._next()
        elif token.kind in (_TokenKind.DOT, _TokenKind.DOTDOT):
            # ``.`` and ``./path`` : current-node relative path.
            self._next()
            if self._peek().kind is _TokenKind.SLASH:
                self._next()
            elif self._peek().kind is _TokenKind.DOUBLE_SLASH:
                self._next()
                pending_axis = Axis.DESCENDANT_OR_SELF
            else:
                return LocationPath(steps=[], absolute=False)

        while True:
            if (pending_axis is Axis.DESCENDANT_OR_SELF
                    and self._peek().kind is _TokenKind.AT):
                # ``//@id`` means "the @id attribute of any element"; model
                # it as a descendant wildcard element step followed by a
                # plain attribute step so the evaluator stays simple.
                steps.append(Step(axis=Axis.DESCENDANT_OR_SELF, node_test="*"))
                pending_axis = Axis.CHILD
            steps.append(self._parse_step(pending_axis))
            token = self._peek()
            if token.kind is _TokenKind.SLASH:
                self._next()
                pending_axis = Axis.CHILD
            elif token.kind is _TokenKind.DOUBLE_SLASH:
                self._next()
                pending_axis = Axis.DESCENDANT_OR_SELF
            else:
                break
        return LocationPath(steps=steps, absolute=absolute, variable=variable)

    def _parse_step(self, axis: Axis) -> Step:
        token = self._peek()
        if token.kind is _TokenKind.AT:
            self._next()
            axis = Axis.ATTRIBUTE
            token = self._peek()
        if token.kind is _TokenKind.STAR:
            self._next()
            node_test = "*"
        elif token.kind is _TokenKind.NAME:
            self._next()
            node_test = token.text
            if node_test == "text" and self._peek().kind is _TokenKind.LPAREN:
                self._next()
                self._expect(_TokenKind.RPAREN)
                node_test = "text()"
        else:
            raise self._error("expected a step name, '*' or '@'")
        predicates: List[Predicate] = []
        while self._peek().kind is _TokenKind.LBRACKET:
            self._next()
            inner = self._parse_or_expr()
            self._expect(_TokenKind.RBRACKET)
            predicates.append(Predicate(inner))
        return Step(axis=axis, node_test=node_test, predicates=predicates)


def parse_xpath(expression: str) -> PathExpr:
    """Parse an XPath expression from the supported subset.

    Returns a :class:`LocationPath` for plain paths, or a
    :class:`ComparisonExpr` / :class:`FunctionCall` for expressions.
    Raises :class:`XPathParseError` for anything outside the subset.
    """
    if not expression or not expression.strip():
        raise XPathParseError("empty XPath expression", expression, 0)
    return _Parser(expression.strip()).parse()


def parse_location_path(expression: str) -> LocationPath:
    """Parse ``expression`` and require that it is a plain location path."""
    result = parse_xpath(expression)
    if not isinstance(result, LocationPath):
        raise XPathParseError("expected a location path", expression, 0)
    return result
