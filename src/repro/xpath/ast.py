"""Abstract syntax tree for the XPath subset.

The grammar covered (sufficient for XMark / TPoX style workload queries
and for the path expressions SQL/XML predicates embed):

.. code-block:: text

    path        := '/'? step ('/' step | '//' step)*
                 | '//' step ('/' step | '//' step)*
    step        := axis? nodetest predicate*
    axis        := '@'                       (attribute axis)
    nodetest    := NAME | '*' | 'text()'
    predicate   := '[' expr ']'
    expr        := or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := cmp_expr ('and' cmp_expr)*
    cmp_expr    := value_expr (('='|'!='|'<'|'<='|'>'|'>=') value_expr)?
    value_expr  := literal | number | path | function_call
    function_call := NAME '(' (expr (',' expr)*)? ')'

Every AST node knows how to render itself back to XPath text
(``to_xpath``), which the explain output and reports use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union


class Axis(enum.Enum):
    """Navigation axes supported by the subset."""

    CHILD = "child"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ATTRIBUTE = "attribute"

    def separator(self) -> str:
        """The textual separator that introduces a step on this axis."""
        if self is Axis.DESCENDANT_OR_SELF:
            return "//"
        return "/"


class BinaryOp(enum.Enum):
    """Comparison and boolean operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "and"
    OR = "or"

    @property
    def is_comparison(self) -> bool:
        return self in (BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT,
                        BinaryOp.LE, BinaryOp.GT, BinaryOp.GE)

    @property
    def is_range(self) -> bool:
        """True for operators that need a range scan rather than a point probe."""
        return self in (BinaryOp.LT, BinaryOp.LE, BinaryOp.GT, BinaryOp.GE)


class PathExpr:
    """Marker base class for all XPath AST nodes."""

    def to_xpath(self) -> str:
        """Render the node back to XPath text."""
        raise NotImplementedError


@dataclass
class Literal(PathExpr):
    """A string or numeric literal."""

    value: Union[str, float]

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, float)

    def to_xpath(self) -> str:
        if isinstance(self.value, float):
            # int(inf)/int(nan) raise; render non-finite literals the way
            # XPath 1.0 strings them.
            if self.value != self.value:
                return "NaN"
            if self.value in (float("inf"), float("-inf")):
                return "Infinity" if self.value > 0 else "-Infinity"
            if self.value == int(self.value):
                return str(int(self.value))
            return repr(self.value)
        return '"' + str(self.value).replace('"', '""') + '"'


@dataclass
class FunctionCall(PathExpr):
    """A call to a built-in function (``contains``, ``starts-with``, ...)."""

    name: str
    arguments: List[PathExpr] = field(default_factory=list)

    def to_xpath(self) -> str:
        args = ", ".join(a.to_xpath() for a in self.arguments)
        return f"{self.name}({args})"


@dataclass
class Predicate(PathExpr):
    """A ``[...]`` predicate attached to a step."""

    expression: PathExpr

    def to_xpath(self) -> str:
        return f"[{self.expression.to_xpath()}]"


@dataclass
class Step(PathExpr):
    """One location step: axis, node test, and predicates."""

    axis: Axis
    node_test: str
    predicates: List[Predicate] = field(default_factory=list)

    @property
    def is_wildcard(self) -> bool:
        return self.node_test == "*"

    @property
    def is_text(self) -> bool:
        return self.node_test == "text()"

    def to_xpath(self) -> str:
        prefix = "@" if self.axis is Axis.ATTRIBUTE else ""
        preds = "".join(p.to_xpath() for p in self.predicates)
        return f"{prefix}{self.node_test}{preds}"


@dataclass
class LocationPath(PathExpr):
    """A (possibly relative) location path: a sequence of steps.

    ``variable`` is set for XQuery variable-relative paths such as
    ``$i/quantity``; the normalizer substitutes the variable's binding
    to obtain an absolute path.
    """

    steps: List[Step] = field(default_factory=list)
    absolute: bool = True
    variable: Optional[str] = None

    def to_xpath(self) -> str:
        prefix = f"${self.variable}" if self.variable else ""
        if not self.steps:
            if prefix:
                return prefix
            return "/" if self.absolute else "."
        parts: List[str] = [prefix]
        for index, step in enumerate(self.steps):
            sep = step.axis.separator()
            if index == 0:
                if prefix:
                    parts.append(sep)
                elif self.absolute:
                    parts.append(sep if sep == "//" else "/")
                elif sep == "//":
                    parts.append(".//")
            else:
                parts.append(sep)
            parts.append(step.to_xpath())
        return "".join(parts)

    def has_predicates(self) -> bool:
        """True if any step carries a predicate."""
        return any(step.predicates for step in self.steps)

    def without_predicates(self) -> "LocationPath":
        """A copy of this path with all predicates stripped (the 'spine')."""
        return LocationPath(
            steps=[Step(s.axis, s.node_test) for s in self.steps],
            absolute=self.absolute,
            variable=self.variable,
        )

    def spine_string(self) -> str:
        """The predicate-free path rendered as text (used as index pattern)."""
        return self.without_predicates().to_xpath()

    def append(self, other: "LocationPath") -> "LocationPath":
        """Concatenate a relative path onto this one (used when resolving
        predicate-relative paths against their context step)."""
        return LocationPath(steps=list(self.steps) + list(other.steps),
                            absolute=self.absolute, variable=self.variable)


@dataclass
class ComparisonExpr(PathExpr):
    """A binary expression (comparison or boolean connective)."""

    op: BinaryOp
    left: PathExpr
    right: PathExpr

    def to_xpath(self) -> str:
        if self.op in (BinaryOp.AND, BinaryOp.OR):
            return f"({self.left.to_xpath()} {self.op.value} {self.right.to_xpath()})"
        return f"{self.left.to_xpath()} {self.op.value} {self.right.to_xpath()}"


def iter_location_paths(expr: PathExpr) -> List[LocationPath]:
    """Collect every :class:`LocationPath` appearing in ``expr`` (recursively).

    Used by the query normalizer to find all path expressions inside a
    predicate tree.
    """
    found: List[LocationPath] = []

    def walk(node: PathExpr) -> None:
        if isinstance(node, LocationPath):
            found.append(node)
            for step in node.steps:
                for pred in step.predicates:
                    walk(pred.expression)
        elif isinstance(node, ComparisonExpr):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, FunctionCall):
            for arg in node.arguments:
                walk(arg)
        elif isinstance(node, Predicate):
            walk(node.expression)

    walk(expr)
    return found
