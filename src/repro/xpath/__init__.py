"""XPath subset engine and XML index-pattern algebra.

Two distinct but related artifacts live here:

* :mod:`repro.xpath.ast`, :mod:`repro.xpath.parser`,
  :mod:`repro.xpath.evaluator` -- a parser and evaluator for the XPath
  subset used by the workloads (child / descendant / attribute axes,
  wildcards, positional-free predicates with comparisons and a few
  functions).  The evaluator is what the query executor runs for
  residual predicates and unsupported path shapes.

* :mod:`repro.xpath.compiler` -- lowers predicate-free and
  simple-predicate location paths onto the structural
  :class:`~repro.storage.path_summary.PathSummary` so the hot execution
  paths answer them with dictionary lookups instead of tree walks,
  with LRU caches for parsed and compiled expressions.

* :mod:`repro.xpath.patterns` -- *index patterns*: linear paths such as
  ``/site/regions/*/item/quantity`` or ``//keyword`` that define which
  nodes a partial XML index contains (DB2's ``XMLPATTERN``).  The
  pattern algebra (matching concrete paths, containment between
  patterns, generalization) is what the optimizer's index matching and
  the advisor's candidate generalization are built on.
"""

from repro.xpath.ast import (
    Axis,
    BinaryOp,
    ComparisonExpr,
    FunctionCall,
    Literal,
    LocationPath,
    PathExpr,
    Predicate,
    Step,
)
from repro.xpath.compiler import (
    CompiledXPath,
    compile_pattern,
    compile_xpath,
    parse_xpath_cached,
    pattern_summary_safe,
)
from repro.xpath.errors import XPathError, XPathParseError, XPathTypeError
from repro.xpath.evaluator import XPathEvaluator, evaluate_path
from repro.xpath.parser import parse_xpath
from repro.xpath.patterns import (
    PathPattern,
    PatternStep,
    generalize_pair,
    generalize_tail,
    pattern_contains,
)

__all__ = [
    "Axis",
    "BinaryOp",
    "CompiledXPath",
    "ComparisonExpr",
    "FunctionCall",
    "Literal",
    "LocationPath",
    "PathExpr",
    "PathPattern",
    "PatternStep",
    "Predicate",
    "Step",
    "XPathError",
    "XPathEvaluator",
    "XPathParseError",
    "XPathTypeError",
    "compile_pattern",
    "compile_xpath",
    "evaluate_path",
    "generalize_pair",
    "generalize_tail",
    "parse_xpath",
    "parse_xpath_cached",
    "pattern_contains",
    "pattern_summary_safe",
]
