"""Compile XPath location paths into structural path-summary lookups.

The interpretive :class:`~repro.xpath.evaluator.XPathEvaluator` walks
the node tree once per location step.  For the linear path shapes the
workloads use, that work is redundant: a collection's
:class:`~repro.storage.path_summary.PathSummary` already knows every
node by its rooted simple path.  This module lowers location paths onto
that summary:

* **predicate-free paths** (``/site/regions/*/item``, ``//keyword``,
  ``/site/people/person/@id``) become a single pattern lookup;
* **simple-predicate paths** -- predicates on the *final* step only
  (``/site/regions/africa/item[quantity > 5]``) -- become a pattern
  lookup for the spine followed by interpretive evaluation of the
  residual predicates on each candidate node;
* a trailing child-axis ``text()`` step is answered by expanding the
  spine elements' direct text children;
* everything else (relative paths, variables, predicates on inner
  steps, expressions that are not location paths) falls back to the
  interpretive evaluator.  Path shapes whose ``//`` semantics differ
  between pattern matching and step-by-step evaluation (see
  :func:`steps_summary_safe`) cannot use the summary, but they *can*
  use a collection's columnar store
  (:class:`~repro.storage.columnar.ColumnarStore`), whose pattern
  matching implements the interpreter's descendant-or-self semantics
  exactly -- so every linear spine carries a :attr:`columnar_pattern`
  and only non-linear expressions still reach the interpreter when a
  columnar store is available.

Parsing and compilation are cached with LRUs keyed by expression text,
so repeated queries -- the executor evaluates the same predicate paths
against every document -- pay for parsing once.

Results are node *sets*: compiled lookups return exactly the nodes the
interpretive evaluator would, though possibly in a different order
(summary lookups group nodes by distinct path, the interpreter by step
expansion).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.xmldb.nodes import DocumentNode, NodeKind, XmlNode
from repro.xpath.ast import Axis, LocationPath, PathExpr, Predicate
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath
from repro.xpath.patterns import PathPattern, PatternStep

#: Size of the parse/compile LRUs.  Workloads contain at most a few
#: hundred distinct path expressions; 2048 keeps every expression of
#: even a very large workload resident.
CACHE_SIZE = 2048


@lru_cache(maxsize=CACHE_SIZE)
def parse_xpath_cached(expression: str) -> PathExpr:
    """Parse ``expression``, memoizing the AST by source text.

    Callers must treat the returned AST as immutable -- it is shared
    between every caller that parses the same text.
    """
    return parse_xpath(expression)


class CompiledXPath:
    """The compiled form of one XPath expression.

    When :attr:`pattern` is set, :meth:`select_nodes` answers the path
    spine from a :class:`~repro.storage.path_summary.PathSummary` and
    only uses the interpretive evaluator for residual predicates; when
    it is ``None`` the whole expression is delegated to the interpreter
    (``fallback_reason`` says why).
    """

    __slots__ = ("source", "expression", "pattern", "columnar_pattern",
                 "residual_predicates", "text_tail", "fallback_reason")

    def __init__(self, source: str, expression: PathExpr,
                 pattern: Optional[PathPattern] = None,
                 columnar_pattern: Optional[PathPattern] = None,
                 residual_predicates: Tuple[Predicate, ...] = (),
                 text_tail: bool = False,
                 fallback_reason: Optional[str] = None) -> None:
        self.source = source
        self.expression = expression
        self.pattern = pattern
        #: The linear spine for the columnar backend.  Set for *every*
        #: linear path -- including summary-unsafe ``//`` shapes, whose
        #: descendant-or-self semantics the columnar store answers
        #: exactly -- and ``None`` only for non-linear expressions.
        self.columnar_pattern = columnar_pattern if columnar_pattern is not None \
            else pattern
        self.residual_predicates = residual_predicates
        self.text_tail = text_tail
        self.fallback_reason = fallback_reason

    @property
    def is_summary_backed(self) -> bool:
        """True when the path spine is answered from the summary."""
        return self.pattern is not None

    @property
    def is_columnar_backed(self) -> bool:
        """True when the path spine is answered from a columnar store."""
        return self.columnar_pattern is not None

    def select_nodes(self, summary, document: DocumentNode,
                     evaluator: Optional[XPathEvaluator] = None,
                     ordered: bool = False, columnar=None) -> List[XmlNode]:
        """The node set this expression selects in ``document``.

        ``summary`` is the path summary covering ``document`` (keyed by
        its ``doc_id``); ``columnar`` is the document's collection
        :class:`~repro.storage.columnar.ColumnarStore`, preferred over
        the summary when the spine lowers onto it (it also answers
        summary-unsafe ``//`` spines); pass ``evaluator`` to reuse one
        :class:`XPathEvaluator` across calls for the same document.
        With ``ordered=True`` the spine nodes come back in document
        order even when the pattern matches several distinct paths
        (node-id merge in the summary, postings merge in the columnar
        store), so the result can serve ordered extraction; residual
        filtering and ``text()`` expansion preserve that order.  The
        result must be treated as read-only unless
        :attr:`residual_predicates` or :attr:`text_tail` forced a copy.
        """
        if columnar is not None and self.columnar_pattern is not None:
            nodes = columnar.nodes_for_pattern(self.columnar_pattern,
                                               document.doc_id,
                                               ordered=ordered)
        elif self.pattern is not None and summary is not None:
            nodes = summary.nodes_for_pattern(self.pattern, document.doc_id,
                                              ordered=ordered)
        else:
            if evaluator is None:
                evaluator = XPathEvaluator(document)
            return evaluator.select_nodes(self.expression)
        if self.text_tail and nodes:
            texts: List[XmlNode] = []
            for node in nodes:
                texts.extend(child for child in node.children
                             if child.kind == NodeKind.TEXT)
            nodes = texts
        if self.residual_predicates and nodes:
            if evaluator is None:
                evaluator = XPathEvaluator(document)
            nodes = [node for node in nodes
                     if evaluator.passes_predicates(node, self.residual_predicates)]
        return nodes

    def has_match(self, summary, document: DocumentNode,
                  evaluator: Optional[XPathEvaluator] = None,
                  columnar=None) -> bool:
        """Existence test: does this expression select any node?

        The residual scan's document-qualification check only needs a
        boolean, so a columnar-backed bare spine (no ``text()`` tail, no
        residual predicates) answers from the store's postings with an
        early exit instead of materializing the node list.
        """
        if (columnar is not None and self.columnar_pattern is not None
                and not self.text_tail and not self.residual_predicates):
            return columnar.has_match(self.columnar_pattern, document.doc_id)
        return bool(self.select_nodes(summary, document, evaluator,
                                      columnar=columnar))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = (f"summary pattern={self.pattern.to_text()!r}" if self.pattern
                else f"fallback ({self.fallback_reason})")
        return f"<CompiledXPath {self.source!r} {mode}>"


def steps_summary_safe(steps: Sequence[PatternStep]) -> bool:
    """Can these pattern steps be answered from the summary exactly?

    The interpreter treats a ``//x`` location step as *descendant-or-
    self* of the context nodes, while pattern matching requires at least
    one further label.  The two disagree only when a context node
    produced by the previous step can itself satisfy the descendant
    step's node test -- i.e. when an element-test ``//`` step follows an
    element step whose labels overlap (equal names, or either side a
    wildcard).  Such shapes (``/a//a``, ``//site//*``) are left to the
    interpreter.
    """
    for index in range(1, len(steps)):
        step = steps[index]
        if not step.descendant or step.is_attribute:
            continue
        previous = steps[index - 1]
        if previous.is_attribute:
            continue  # element test below an attribute: both match nothing
        if (previous.label == "*" or step.label == "*"
                or previous.label == step.label):
            return False
    return True


@lru_cache(maxsize=CACHE_SIZE)
def pattern_summary_safe(pattern: PathPattern) -> bool:
    """Memoized :func:`steps_summary_safe` for index patterns."""
    return steps_summary_safe(pattern.steps)


def compile_location_path(source: str, path: LocationPath) -> CompiledXPath:
    """Lower ``path`` to a summary lookup, or record why it cannot be."""

    def fallback(reason: str) -> CompiledXPath:
        return CompiledXPath(source, path, fallback_reason=reason)

    if path.variable is not None:
        return fallback("variable-relative path")
    if not path.absolute:
        return fallback("relative path")
    if not path.steps:
        return fallback("document root path")

    pattern_steps: List[PatternStep] = []
    residual: Tuple[Predicate, ...] = ()
    text_tail = False
    last_index = len(path.steps) - 1
    for index, step in enumerate(path.steps):
        if step.predicates:
            if index != last_index:
                return fallback("predicate on inner step")
            residual = tuple(step.predicates)
        if step.is_text:
            if index != last_index:
                return fallback("text() on inner step")
            if step.axis is not Axis.CHILD:
                return fallback("descendant text() step")
            if not pattern_steps:
                return fallback("text() of the document root")
            text_tail = True
            continue
        descendant = step.axis is Axis.DESCENDANT_OR_SELF
        if step.axis is Axis.ATTRIBUTE or step.node_test.startswith("@"):
            name = step.node_test.lstrip("@")
            label = "@*" if name == "*" else "@" + name
        else:
            label = step.node_test
        pattern_steps.append(PatternStep(label=label, descendant=descendant))
    if not pattern_steps:
        return fallback("no structural steps")
    if not steps_summary_safe(pattern_steps):
        # The summary cannot answer this spine, but the columnar store
        # can: its pattern matching has the interpreter's exact
        # descendant-or-self semantics.
        return CompiledXPath(
            source, path,
            columnar_pattern=PathPattern(steps=tuple(pattern_steps)),
            residual_predicates=residual, text_tail=text_tail,
            fallback_reason="descendant step may match its own context")
    return CompiledXPath(source, path,
                         pattern=PathPattern(steps=tuple(pattern_steps)),
                         residual_predicates=residual, text_tail=text_tail)


@lru_cache(maxsize=CACHE_SIZE)
def compile_xpath(expression: str) -> CompiledXPath:
    """Parse and compile ``expression`` (memoized by source text)."""
    parsed = parse_xpath_cached(expression)
    if not isinstance(parsed, LocationPath):
        return CompiledXPath(expression, parsed,
                             fallback_reason="not a location path")
    return compile_location_path(expression, parsed)


@lru_cache(maxsize=CACHE_SIZE)
def compile_pattern(pattern: PathPattern) -> CompiledXPath:
    """Compile an index pattern for execution (memoized by pattern).

    Index patterns are already linear and predicate-free, so the only
    question is whether their ``//`` shape is summary-safe; unsafe
    patterns stay columnar-backed (exact descendant-or-self matching)
    and only reach the interpreter, over the pattern's XPath rendering,
    when no columnar store is available.  This is the entry point the
    executor uses for
    the patterns carried by normalized query predicates and extraction
    paths.
    """
    source = pattern.to_text()
    if steps_summary_safe(pattern.steps):
        return CompiledXPath(source, parse_xpath_cached(source),
                             pattern=pattern)
    return CompiledXPath(source, parse_xpath_cached(source),
                         columnar_pattern=pattern,
                         fallback_reason="descendant step may match its own context")


def compiler_cache_info() -> dict:
    """Hit/miss statistics of the parse/compile LRUs (for diagnostics)."""
    return {"parse": parse_xpath_cached.cache_info(),
            "compile": compile_xpath.cache_info(),
            "compile_pattern": compile_pattern.cache_info(),
            "pattern_safe": pattern_summary_safe.cache_info()}


def clear_compiler_caches() -> None:
    """Reset the parse/compile LRUs (tests and long-lived processes)."""
    parse_xpath_cached.cache_clear()
    compile_xpath.cache_clear()
    compile_pattern.cache_clear()
    pattern_summary_safe.cache_clear()
