"""XML index patterns and the operations the advisor needs on them.

An *index pattern* is the linear XPath that defines which nodes a
partial XML index contains -- DB2's ``CREATE INDEX ... GENERATE KEY
USING XMLPATTERN '/site/regions/*/item/quantity'``.  The advisor reasons
about four operations on patterns:

``matches``
    Does a pattern match a concrete rooted *simple path* (such as
    ``/site/regions/africa/item/quantity``)?  This decides which
    document nodes are indexed, and drives size/selectivity estimation.

``pattern_contains``
    Is the set of paths matched by one pattern a superset of those
    matched by another?  The optimizer uses this for *index matching*
    (an index is usable for a query path only if the index pattern
    contains it) and the advisor uses it for redundancy detection.
    Implemented exactly, via automaton language inclusion over the
    finite alphabet of labels mentioned by the two patterns plus
    "any other label" symbols.

``generalize_pair`` / ``generalize_tail``
    The candidate generalization rules of Section 2.2: two patterns that
    differ in a single step produce a wildcard pattern; patterns sharing
    a prefix produce prefix-plus-wildcard patterns.

Patterns are immutable and hashable so they can key dictionaries, sets,
and DAG nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.xpath.errors import PatternError, XPathParseError

#: Symbolic alphabet members standing for "an element label not named by
#: either pattern" and "an attribute label not named by either pattern".
_OTHER_ELEMENT = "\x00other-element"
_OTHER_ATTRIBUTE = "@\x00other-attribute"


@dataclass(frozen=True)
class PatternStep:
    """One step of an index pattern.

    Attributes
    ----------
    label:
        The node test: an element name, ``*``, an attribute test
        ``@name``, or ``@*``.
    descendant:
        True when the step is reached through ``//`` (any number of
        intervening elements), False for a plain child step ``/``.
    """

    label: str
    descendant: bool = False

    @property
    def is_attribute(self) -> bool:
        return self.label.startswith("@")

    @property
    def is_wildcard(self) -> bool:
        return self.label in ("*", "@*")

    def matches_label(self, label: str) -> bool:
        """Does this step's node test accept the concrete ``label``?"""
        if self.label == "*":
            return not label.startswith("@")
        if self.label == "@*":
            return label.startswith("@")
        return self.label == label

    def to_text(self) -> str:
        return ("//" if self.descendant else "/") + self.label

    def with_label(self, label: str) -> "PatternStep":
        return PatternStep(label=label, descendant=self.descendant)


@dataclass(frozen=True)
class PathPattern:
    """An immutable linear XML index pattern (e.g. ``/site//item/@id``)."""

    steps: Tuple[PatternStep, ...]

    # ------------------------------------------------------------------
    # Construction / rendering
    # ------------------------------------------------------------------
    @staticmethod
    def parse(text: str) -> "PathPattern":
        """Parse a pattern string like ``/a/b//c/@id`` or ``//*``.

        Raises :class:`XPathParseError` for branching, predicates, or
        anything else outside the linear-pattern language.
        """
        original = text
        text = text.strip()
        if not text:
            raise XPathParseError("empty index pattern", original, 0)
        if not text.startswith("/"):
            # Index patterns are always rooted; accept "a/b" as "/a/b".
            text = "/" + text
        if "[" in text or "]" in text or "(" in text:
            raise XPathParseError(
                "index patterns must be linear paths without predicates",
                original, 0)
        steps: List[PatternStep] = []
        i = 0
        while i < len(text):
            if text.startswith("//", i):
                descendant = True
                i += 2
            elif text.startswith("/", i):
                descendant = False
                i += 1
            else:
                raise XPathParseError("expected '/' or '//'", original, i)
            j = i
            while j < len(text) and text[j] != "/":
                j += 1
            label = text[i:j]
            if not label:
                raise XPathParseError("empty step in index pattern", original, i)
            if label not in ("*", "@*") and not _valid_label(label):
                raise XPathParseError(f"invalid step label {label!r}", original, i)
            steps.append(PatternStep(label=label, descendant=descendant))
            i = j
        return PathPattern(steps=tuple(steps))

    def to_text(self) -> str:
        """Render the pattern back to its XPath form (memoized).

        Pattern text is the identity component of index/candidate keys,
        which the advisor's relevance map, plan cache, and search heaps
        read in their hot loops -- render once per pattern instance.
        """
        cached = self.__dict__.get("_text")
        if cached is None:
            cached = "".join(step.to_text() for step in self.steps)
            object.__setattr__(self, "_text", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def last_step(self) -> PatternStep:
        return self.steps[-1]

    @property
    def indexes_attribute(self) -> bool:
        """True when the pattern's final step is an attribute test."""
        return self.last_step.is_attribute

    @property
    def has_descendant_step(self) -> bool:
        return any(step.descendant for step in self.steps)

    @property
    def wildcard_count(self) -> int:
        return sum(1 for step in self.steps if step.is_wildcard)

    def generality_score(self) -> float:
        """A heuristic scalar: higher means a more general pattern.

        Used only for ordering/tie-breaking in reports and the top-down
        search (the authoritative relation is :func:`pattern_contains`).
        Wildcards and ``//`` steps add generality; longer fixed paths
        reduce it.
        """
        score = 0.0
        for step in self.steps:
            if step.descendant:
                score += 2.0
            if step.is_wildcard:
                score += 1.0
        return score - 0.1 * len(self.steps)

    # ------------------------------------------------------------------
    # Matching concrete paths
    # ------------------------------------------------------------------
    def matches(self, simple_path: str) -> bool:
        """Does this pattern match a concrete rooted simple path?

        ``simple_path`` is the slash-separated chain of element names
        produced by :meth:`repro.xmldb.nodes.XmlNode.simple_path`, e.g.
        ``/site/regions/africa/item/quantity`` or ``/site/people/person/@id``.
        """
        labels = split_simple_path(simple_path)
        return self._match_labels(labels)

    def _match_labels(self, labels: Sequence[str]) -> bool:
        # NFA simulation over the concrete label sequence.  State i means
        # "the first i steps of the pattern have been matched".
        states: Set[int] = {0}
        for label in labels:
            next_states: Set[int] = set()
            for state in states:
                if state < len(self.steps):
                    step = self.steps[state]
                    if step.descendant and not label.startswith("@"):
                        # ``//`` may skip this label entirely.
                        next_states.add(state)
                    if step.matches_label(label):
                        next_states.add(state + 1)
            states = next_states
            if not states:
                return False
        return len(self.steps) in states

    def matching_paths(self, paths: Iterable[str]) -> List[str]:
        """Filter ``paths`` down to those this pattern matches."""
        return [p for p in paths if self.matches(p)]

    def matches_evaluator(self, simple_path: str) -> bool:
        """Does this pattern match ``simple_path`` under *evaluator*
        (descendant-or-self) semantics?

        :meth:`matches` implements the index-pattern language, where a
        ``//`` step steps strictly *down* before testing its label.  The
        interpretive :class:`~repro.xpath.evaluator.XPathEvaluator`
        implements XPath's ``descendant-or-self::`` instead: ``/a//a``
        selects ``/a`` itself.  Because the evaluator's result set for a
        linear pattern depends only on each node's root-to-node label
        chain, that semantics is decidable per simple path: it is the
        strict NFA of :meth:`_match_labels` plus an epsilon-closure that
        lets a ``//`` element step consume the label *just matched* a
        second time ("self").  The columnar backend and collection
        routing use this to answer ``//`` shapes exactly instead of
        falling back to interpretation or widening to all collections.
        """
        labels = split_simple_path(simple_path)
        return self._match_labels_evaluator(labels)

    def _match_labels_evaluator(self, labels: Sequence[str]) -> bool:
        states: Set[int] = {0}
        for label in labels:
            is_attribute = label.startswith("@")
            next_states: Set[int] = set()
            for state in states:
                if state < len(self.steps):
                    step = self.steps[state]
                    if step.descendant and not is_attribute:
                        # ``//`` may skip this label entirely.
                        next_states.add(state)
                    if step.matches_label(label):
                        next_states.add(state + 1)
            if not is_attribute:
                # Descendant-or-self closure: a following ``//`` element
                # step may also match the label just consumed (its own
                # context node).  Iterate to fixpoint so chains such as
                # ``/a//a//a`` accept ``/a``.
                frontier = list(next_states)
                while frontier:
                    state = frontier.pop()
                    if state < len(self.steps):
                        step = self.steps[state]
                        if step.descendant and not step.is_attribute \
                                and step.matches_label(label):
                            if state + 1 not in next_states:
                                next_states.add(state + 1)
                                frontier.append(state + 1)
            states = next_states
            if not states:
                return False
        return len(self.steps) in states

    # ------------------------------------------------------------------
    # Containment and equivalence
    # ------------------------------------------------------------------
    def contains(self, other: "PathPattern") -> bool:
        """True when every path matched by ``other`` is matched by ``self``."""
        return pattern_contains(self, other)

    def equivalent(self, other: "PathPattern") -> bool:
        """True when the two patterns match exactly the same paths."""
        return pattern_contains(self, other) and pattern_contains(other, self)

    # ------------------------------------------------------------------
    # Generalization primitives
    # ------------------------------------------------------------------
    def with_wildcard_at(self, index: int) -> "PathPattern":
        """Return a copy with the label of step ``index`` replaced by a wildcard."""
        if not 0 <= index < len(self.steps):
            raise PatternError(f"step index {index} out of range")
        step = self.steps[index]
        wildcard = "@*" if step.is_attribute else "*"
        new_steps = list(self.steps)
        new_steps[index] = step.with_label(wildcard)
        return PathPattern(steps=tuple(new_steps))

    def prefix(self, length: int) -> "PathPattern":
        """Return the pattern consisting of the first ``length`` steps."""
        if not 0 < length <= len(self.steps):
            raise PatternError(f"prefix length {length} out of range")
        return PathPattern(steps=self.steps[:length])

    def append_step(self, label: str, descendant: bool = False) -> "PathPattern":
        """Return a copy with one more step appended."""
        return PathPattern(steps=self.steps + (PatternStep(label, descendant),))


def _valid_label(label: str) -> bool:
    body = label[1:] if label.startswith("@") else label
    if not body:
        return False
    return all(ch.isalnum() or ch in "_-.:" for ch in body)


def split_simple_path(simple_path: str) -> List[str]:
    """Split ``/a/b/@c`` into ``['a', 'b', '@c']`` (root ``/`` -> ``[]``)."""
    stripped = simple_path.strip()
    if stripped in ("", "/"):
        return []
    if stripped.startswith("/"):
        stripped = stripped[1:]
    return [part for part in stripped.split("/") if part]


# ----------------------------------------------------------------------
# Containment via automaton language inclusion
# ----------------------------------------------------------------------
def _alphabet_for(general: PathPattern, specific: PathPattern) -> List[str]:
    labels: Set[str] = set()
    for pattern in (general, specific):
        for step in pattern.steps:
            if not step.is_wildcard:
                labels.add(step.label)
    alphabet = sorted(labels)
    alphabet.append(_OTHER_ELEMENT)
    alphabet.append(_OTHER_ATTRIBUTE)
    return alphabet


def _nfa_move(pattern: PathPattern, states: FrozenSet[int], label: str) -> FrozenSet[int]:
    next_states: Set[int] = set()
    for state in states:
        if state < len(pattern.steps):
            step = pattern.steps[state]
            if step.descendant and not label.startswith("@"):
                next_states.add(state)
            if _step_accepts_symbol(step, label):
                next_states.add(state + 1)
    return frozenset(next_states)


def _step_accepts_symbol(step: PatternStep, symbol: str) -> bool:
    """Does a pattern step accept an alphabet symbol (which may be OTHER)?"""
    if step.label == "*":
        return not symbol.startswith("@")
    if step.label == "@*":
        return symbol.startswith("@")
    # A named step never matches the OTHER symbols.
    return step.label == symbol


@lru_cache(maxsize=65536)
def pattern_contains(general: PathPattern, specific: PathPattern) -> bool:
    """Exact containment test: ``L(specific) ⊆ L(general)``.

    Both patterns describe regular languages over label sequences; we
    check inclusion by a product construction between ``specific``'s NFA
    and the determinized NFA of ``general`` over a finite alphabet of
    the labels either pattern names plus two "other" symbols.  Patterns
    in practice have fewer than ten steps, so the construction is cheap.
    Results are memoized because the optimizer's index matching and the
    advisor's redundancy checks ask the same containment questions many
    times over.
    """
    alphabet = _alphabet_for(general, specific)
    start = (frozenset({0}), frozenset({0}))
    seen: Set[Tuple[FrozenSet[int], FrozenSet[int]]] = {start}
    frontier: List[Tuple[FrozenSet[int], FrozenSet[int]]] = [start]
    specific_accept = len(specific.steps)
    general_accept = len(general.steps)
    while frontier:
        specific_states, general_states = frontier.pop()
        if specific_accept in specific_states and general_accept not in general_states:
            return False
        for symbol in alphabet:
            next_specific = _nfa_move(specific, specific_states, symbol)
            if not next_specific:
                continue
            next_general = _nfa_move(general, general_states, symbol)
            pair = (next_specific, next_general)
            if pair not in seen:
                seen.add(pair)
                frontier.append(pair)
    return True


# ----------------------------------------------------------------------
# Generalization rules (Section 2.2)
# ----------------------------------------------------------------------
def generalize_pair(first: PathPattern, second: PathPattern) -> Optional[PathPattern]:
    """Apply the pairwise generalization rule to two patterns.

    If the patterns have the same number of steps, agree on every step's
    axis, and differ in the labels of one or more steps, the result
    replaces every differing label with a wildcard --
    ``/regions/namerica/item/quantity`` + ``/regions/africa/item/quantity``
    -> ``/regions/*/item/quantity``;
    ``/regions/*/item/quantity`` + ``/regions/samerica/item/price``
    -> ``/regions/*/item/*``.

    Returns ``None`` when the rule does not apply (different lengths,
    mismatched axes, identical patterns, or element/attribute kind
    conflicts in a differing step).
    """
    if first.length != second.length:
        return None
    if first == second:
        return None
    new_steps: List[PatternStep] = []
    differed = False
    for step_a, step_b in zip(first.steps, second.steps):
        if step_a.descendant != step_b.descendant:
            return None
        if step_a.label == step_b.label:
            new_steps.append(step_a)
            continue
        if step_a.is_attribute != step_b.is_attribute:
            return None
        wildcard = "@*" if step_a.is_attribute else "*"
        new_steps.append(PatternStep(label=wildcard, descendant=step_a.descendant))
        differed = True
    if not differed:
        return None
    generalized = PathPattern(steps=tuple(new_steps))
    if generalized == first or generalized == second:
        return None
    return generalized


def generalize_tail(pattern: PathPattern) -> Optional[PathPattern]:
    """Generalize the last step of a pattern to a wildcard.

    ``/regions/*/item/quantity`` -> ``/regions/*/item/*``.  Returns
    ``None`` when the last step is already a wildcard.
    """
    if pattern.last_step.is_wildcard:
        return None
    return pattern.with_wildcard_at(pattern.length - 1)


def common_prefix_length(first: PathPattern, second: PathPattern) -> int:
    """Number of identical leading steps shared by the two patterns."""
    count = 0
    for step_a, step_b in zip(first.steps, second.steps):
        if step_a != step_b:
            break
        count += 1
    return count


def generalize_prefix(first: PathPattern, second: PathPattern,
                      minimum_prefix: int = 1) -> Optional[PathPattern]:
    """Generalize two patterns that share a prefix but diverge afterwards.

    The result is ``<shared prefix>//*`` -- an index over everything
    below the shared prefix.  Returns ``None`` when the shared prefix is
    shorter than ``minimum_prefix`` or one pattern is a prefix of the
    other (in which case the pairwise/tail rules are the right tools).
    """
    prefix_len = common_prefix_length(first, second)
    if prefix_len < minimum_prefix:
        return None
    if prefix_len == first.length or prefix_len == second.length:
        return None
    prefix = first.prefix(prefix_len)
    return prefix.append_step("*", descendant=True)


#: The universal element pattern used by the Enumerate Indexes mode.
UNIVERSAL_ELEMENT_PATTERN = PathPattern.parse("//*")
#: The universal attribute pattern (so attribute predicates also surface).
UNIVERSAL_ATTRIBUTE_PATTERN = PathPattern.parse("//@*")
