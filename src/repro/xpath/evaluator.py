"""Evaluate XPath subset expressions against XML node trees.

The evaluator implements the navigational semantics the executor needs:
node-set results for location paths, existential semantics for
comparisons over node sets (as in XPath 1.0), and a small library of
functions (``contains``, ``starts-with``, ``not``, ``count``,
``string``, ``number``, ``exists``).

It is intentionally a straightforward interpreter -- the *optimizer* is
the component that decides whether to answer a path from an index
instead; when it does, the executor only uses the evaluator for residual
predicates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.xmldb.nodes import DocumentNode, NodeKind, XmlNode
from repro.xpath.ast import (
    Axis,
    BinaryOp,
    ComparisonExpr,
    FunctionCall,
    Literal,
    LocationPath,
    PathExpr,
    Predicate,
    Step,
)
from repro.xpath.errors import XPathTypeError
from repro.xpath.parser import parse_xpath

#: The value types an expression can produce.
XPathValue = Union[List[XmlNode], str, float, bool]


class XPathEvaluator:
    """Evaluates parsed XPath expressions against a document.

    Parameters
    ----------
    document:
        The document that absolute paths are resolved against.
    """

    def __init__(self, document: DocumentNode) -> None:
        self._document = document

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, expr: Union[PathExpr, str],
                 context: Optional[XmlNode] = None) -> XPathValue:
        """Evaluate ``expr`` (AST or source text) and return its value.

        ``context`` is the context node for relative paths; it defaults
        to the document node.
        """
        if isinstance(expr, str):
            expr = parse_xpath(expr)
        context_node = context if context is not None else self._document
        return self._evaluate(expr, context_node)

    def select_nodes(self, expr: Union[PathExpr, str],
                     context: Optional[XmlNode] = None) -> List[XmlNode]:
        """Evaluate ``expr`` and coerce the result to a node list."""
        value = self.evaluate(expr, context)
        if isinstance(value, list):
            return value
        raise XPathTypeError(
            f"expression does not produce a node set (got {type(value).__name__})")

    def evaluate_boolean(self, expr: Union[PathExpr, str],
                         context: Optional[XmlNode] = None) -> bool:
        """Evaluate ``expr`` and coerce the result to a boolean."""
        return _to_boolean(self.evaluate(expr, context))

    # ------------------------------------------------------------------
    # Expression dispatch
    # ------------------------------------------------------------------
    def _evaluate(self, expr: PathExpr, context: XmlNode) -> XPathValue:
        if isinstance(expr, LocationPath):
            return self._evaluate_path(expr, context)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ComparisonExpr):
            return self._evaluate_comparison(expr, context)
        if isinstance(expr, FunctionCall):
            return self._evaluate_function(expr, context)
        if isinstance(expr, Predicate):
            return self._evaluate(expr.expression, context)
        raise XPathTypeError(f"cannot evaluate expression of type {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Location paths
    # ------------------------------------------------------------------
    def _evaluate_path(self, path: LocationPath, context: XmlNode) -> List[XmlNode]:
        if path.absolute:
            current: List[XmlNode] = [self._document]
        else:
            current = [context]
        for step in path.steps:
            next_nodes: List[XmlNode] = []
            seen_ids = set()
            for node in current:
                for candidate in self._step_candidates(node, step):
                    marker = id(candidate)
                    if marker in seen_ids:
                        continue
                    if self._passes_predicates(candidate, step.predicates):
                        seen_ids.add(marker)
                        next_nodes.append(candidate)
            current = next_nodes
            if not current:
                break
        return current

    def _step_candidates(self, node: XmlNode, step: Step) -> Iterable[XmlNode]:
        if step.axis is Axis.ATTRIBUTE or step.node_test.startswith("@"):
            yield from self._attribute_candidates(node, step)
            return
        if step.axis is Axis.DESCENDANT_OR_SELF:
            elements: Iterable[XmlNode] = node.descendant_elements(
                include_self=node.kind == NodeKind.ELEMENT)
        else:
            elements = node.element_children()
        if step.is_text:
            sources = [node] if step.axis is Axis.CHILD else list(elements)
            for source in sources:
                for child in source.children:
                    if child.kind == NodeKind.TEXT:
                        yield child
            return
        for element in elements:
            if step.is_wildcard or element.name == step.node_test:
                yield element

    def _attribute_candidates(self, node: XmlNode, step: Step) -> Iterable[XmlNode]:
        # ``//@id`` and ``/a/@id`` both funnel through here.  The parser
        # normalizes descendant attribute steps into ``//*`` + ``@x``, so
        # a plain attribute step only inspects the context node's own
        # attributes -- but directly-constructed ASTs may carry a
        # descendant-or-self attribute step, which must enumerate the
        # attributes of the context node *and* all descendant elements.
        name_test = step.node_test
        if name_test.startswith("@"):
            name_test = name_test[1:]
        wildcard = name_test == "*"
        owners: Iterable[XmlNode]
        if step.axis is Axis.DESCENDANT_OR_SELF:
            owners = node.descendant_elements(
                include_self=node.kind == NodeKind.ELEMENT)
        else:
            owners = (node,)
        for owner in owners:
            for attr in owner.attributes:
                if wildcard or attr.name == name_test:
                    yield attr

    def passes_predicates(self, node: XmlNode,
                          predicates: Sequence[Predicate]) -> bool:
        """Does ``node`` satisfy every predicate (with itself as context)?

        Public because the compiled path engine
        (:mod:`repro.xpath.compiler`) delegates residual predicate
        evaluation here after answering the path spine from the
        structural summary.
        """
        for predicate in predicates:
            value = self._evaluate(predicate.expression, node)
            if not _to_boolean(value):
                return False
        return True

    # Backwards-compatible alias (pre-compiler internal name).
    _passes_predicates = passes_predicates

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def _evaluate_comparison(self, expr: ComparisonExpr, context: XmlNode) -> bool:
        if expr.op is BinaryOp.AND:
            return (_to_boolean(self._evaluate(expr.left, context))
                    and _to_boolean(self._evaluate(expr.right, context)))
        if expr.op is BinaryOp.OR:
            return (_to_boolean(self._evaluate(expr.left, context))
                    or _to_boolean(self._evaluate(expr.right, context)))
        left = self._evaluate(expr.left, context)
        right = self._evaluate(expr.right, context)
        return _compare(expr.op, left, right)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _evaluate_function(self, call: FunctionCall, context: XmlNode) -> XPathValue:
        name = call.name.lower()
        args = [self._evaluate(arg, context) for arg in call.arguments]
        if name in ("contains", "fn:contains"):
            _require_arity(name, args, 2)
            return _to_string(args[1]) in _to_string(args[0])
        if name in ("starts-with", "fn:starts-with"):
            _require_arity(name, args, 2)
            return _to_string(args[0]).startswith(_to_string(args[1]))
        if name in ("not", "fn:not"):
            _require_arity(name, args, 1)
            return not _to_boolean(args[0])
        if name in ("count", "fn:count"):
            _require_arity(name, args, 1)
            value = args[0]
            if not isinstance(value, list):
                raise XPathTypeError("count() requires a node set")
            return float(len(value))
        if name in ("exists", "fn:exists"):
            _require_arity(name, args, 1)
            return _to_boolean(args[0])
        if name in ("string", "fn:string"):
            _require_arity(name, args, 1)
            return _to_string(args[0])
        if name in ("number", "fn:number", "xs:double", "xs:decimal", "xs:integer"):
            _require_arity(name, args, 1)
            return _to_number(args[0])
        raise XPathTypeError(f"unsupported function {call.name}()")


def _require_arity(name: str, args: Sequence[XPathValue], expected: int) -> None:
    if len(args) != expected:
        raise XPathTypeError(f"{name}() expects {expected} argument(s), got {len(args)}")


# ----------------------------------------------------------------------
# Value coercions (XPath 1.0 style)
# ----------------------------------------------------------------------
def _to_boolean(value: XPathValue) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0
    return bool(value)


def _to_string(value: XPathValue) -> str:
    if isinstance(value, list):
        return value[0].typed_value() if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Guard non-finite floats: int(inf) raises OverflowError and
        # int(nan) raises ValueError.  XPath 1.0 renders them as
        # Infinity / -Infinity / NaN.
        if value != value:  # NaN compares unequal to itself
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        if value == int(value):
            return str(int(value))
        return str(value)
    return str(value)


def _to_number(value: XPathValue) -> float:
    if isinstance(value, list):
        if not value:
            return float("nan")
        value = value[0].typed_value()
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def _compare(op: BinaryOp, left: XPathValue, right: XPathValue) -> bool:
    """Existential comparison semantics over node sets."""
    left_values = _comparison_values(left)
    right_values = _comparison_values(right)
    numeric = _prefer_numeric(left, right)
    for lval in left_values:
        for rval in right_values:
            if _compare_scalar(op, lval, rval, numeric):
                return True
    return False


def _comparison_values(value: XPathValue) -> List[Union[str, float, bool]]:
    if isinstance(value, list):
        return [node.typed_value() for node in value]
    return [value]


def _prefer_numeric(left: XPathValue, right: XPathValue) -> bool:
    for side in (left, right):
        if isinstance(side, float) and not isinstance(side, bool):
            return True
    return False


def _compare_scalar(op: BinaryOp, left: Union[str, float, bool],
                    right: Union[str, float, bool], numeric: bool) -> bool:
    if numeric or op.is_range:
        try:
            lnum = float(left) if not isinstance(left, bool) else (1.0 if left else 0.0)
            rnum = float(right) if not isinstance(right, bool) else (1.0 if right else 0.0)
        except (TypeError, ValueError):
            return False
        left_cmp: Union[str, float] = lnum
        right_cmp: Union[str, float] = rnum
    else:
        left_cmp = _to_string(left)
        right_cmp = _to_string(right)
    if op is BinaryOp.EQ:
        return left_cmp == right_cmp
    if op is BinaryOp.NE:
        return left_cmp != right_cmp
    if op is BinaryOp.LT:
        return left_cmp < right_cmp
    if op is BinaryOp.LE:
        return left_cmp <= right_cmp
    if op is BinaryOp.GT:
        return left_cmp > right_cmp
    if op is BinaryOp.GE:
        return left_cmp >= right_cmp
    raise XPathTypeError(f"unsupported comparison operator {op}")


def evaluate_path(document: DocumentNode, expression: str) -> XPathValue:
    """Convenience wrapper: evaluate ``expression`` against ``document``."""
    return XPathEvaluator(document).evaluate(expression)
