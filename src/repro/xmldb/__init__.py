"""XML document substrate: node model, parser, and serializer.

This package provides the in-memory XML document representation used by
the storage engine, the XPath engine, the optimizer, and the executor.
It plays the role DB2's pureXML native storage plays in the paper: a
typed tree of nodes with stable node identifiers, parent/child links, and
simple-path information that the statistics collector and the path
indexes rely on.

The parser is intentionally small and non-validating: it handles
elements, attributes, text, comments, processing instructions, CDATA,
character/entity references, and both UTF-8 strings and bytes.  It does
not handle DTDs beyond skipping them, external entities (deliberately,
for safety), or namespaces beyond preserving prefixed names verbatim.
That subset covers everything the XMark and TPoX style documents used in
the paper's demonstration need.
"""

from repro.xmldb.errors import XmlError, XmlParseError, XmlSerializeError
from repro.xmldb.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    NodeKind,
    ProcessingInstructionNode,
    TextNode,
    XmlNode,
)
from repro.xmldb.parser import XmlParser, parse_document, parse_fragment
from repro.xmldb.serializer import serialize

__all__ = [
    "AttributeNode",
    "CommentNode",
    "DocumentNode",
    "ElementNode",
    "NodeKind",
    "ProcessingInstructionNode",
    "TextNode",
    "XmlError",
    "XmlNode",
    "XmlParseError",
    "XmlParser",
    "XmlSerializeError",
    "parse_document",
    "parse_fragment",
    "serialize",
]
