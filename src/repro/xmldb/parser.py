"""A small, safe, non-validating XML parser.

The parser builds :class:`repro.xmldb.nodes.DocumentNode` trees directly,
assigning document-order node ids as it goes.  It supports the XML
features the XMark / TPoX style documents exercise:

* elements with attributes (single or double quoted),
* text content with the five predefined entities and numeric character
  references,
* comments, CDATA sections, processing instructions,
* an XML declaration and an (ignored) internal DTD subset.

It deliberately does **not** resolve external entities or fetch DTDs, so
it is safe to run on untrusted workload documents.  Namespace prefixes
are preserved as part of the node name (``ns:tag``) which is all the
index advisor needs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.xmldb.errors import XmlParseError
from repro.xmldb.nodes import (
    CommentNode,
    DocumentNode,
    ElementNode,
    ProcessingInstructionNode,
    TextNode,
    XmlNode,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class XmlParser:
    """Recursive-descent XML parser producing node trees.

    A parser instance is single-use: create one per document (or use the
    module-level :func:`parse_document` helper).
    """

    def __init__(self, text: Union[str, bytes], uri: str = "") -> None:
        if isinstance(text, bytes):
            text = text.decode("utf-8")
        self._text = text
        self._pos = 0
        self._uri = uri

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def parse(self) -> DocumentNode:
        """Parse the input and return the document node."""
        doc = DocumentNode(uri=self._uri)
        self._skip_prolog(doc)
        self._skip_whitespace_and_misc(doc)
        if self._peek() != "<":
            raise self._error("expected root element")
        root = self._parse_element()
        doc.append_child(root)
        self._skip_whitespace_and_misc(doc)
        if self._pos != len(self._text):
            raise self._error("unexpected content after root element")
        doc.assign_node_ids()
        return doc

    def parse_fragment(self) -> List[XmlNode]:
        """Parse a sequence of top-level nodes (no single-root requirement)."""
        nodes: List[XmlNode] = []
        while self._pos < len(self._text):
            if self._peek() == "<":
                if self._lookahead("<!--"):
                    nodes.append(self._parse_comment())
                elif self._lookahead("<?"):
                    nodes.append(self._parse_pi())
                else:
                    nodes.append(self._parse_element())
            else:
                text = self._parse_text()
                if text.value.strip():
                    nodes.append(text)
        return nodes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        pos = self._pos + offset
        return self._text[pos] if pos < len(self._text) else ""

    def _lookahead(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _advance(self, count: int = 1) -> None:
        self._pos += count

    def _expect(self, token: str) -> None:
        if not self._lookahead(token):
            raise self._error(f"expected {token!r}")
        self._advance(len(token))

    def _position(self) -> Tuple[int, int]:
        consumed = self._text[: self._pos]
        line = consumed.count("\n") + 1
        column = self._pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def _error(self, message: str) -> XmlParseError:
        line, column = self._position()
        return XmlParseError(message, line=line, column=column)

    def _skip_whitespace(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _skip_prolog(self, doc: DocumentNode) -> None:
        self._skip_whitespace()
        if self._lookahead("<?xml"):
            end = self._text.find("?>", self._pos)
            if end == -1:
                raise self._error("unterminated XML declaration")
            self._pos = end + 2

    def _skip_whitespace_and_misc(self, doc: DocumentNode) -> None:
        """Skip whitespace, comments, PIs and DOCTYPE between prolog and root."""
        while True:
            self._skip_whitespace()
            if self._lookahead("<!--"):
                doc.append_child(self._parse_comment())
            elif self._lookahead("<!DOCTYPE"):
                self._skip_doctype()
            elif self._lookahead("<?"):
                doc.append_child(self._parse_pi())
            else:
                return

    def _skip_doctype(self) -> None:
        # Skip the DOCTYPE declaration, including an internal subset in [...].
        depth = 0
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self._pos += 1
                return
            self._pos += 1
        raise self._error("unterminated DOCTYPE declaration")

    def _parse_name(self) -> str:
        start = self._pos
        if self._pos >= len(self._text) or not _is_name_start(self._text[self._pos]):
            raise self._error("expected a name")
        self._pos += 1
        while self._pos < len(self._text) and _is_name_char(self._text[self._pos]):
            self._pos += 1
        return self._text[start:self._pos]

    def _parse_attribute_value(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error("expected quoted attribute value")
        self._advance()
        end = self._text.find(quote, self._pos)
        if end == -1:
            raise self._error("unterminated attribute value")
        raw = self._text[self._pos:end]
        self._pos = end + 1
        return self._expand_entities(raw)

    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: List[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i)
            if end == -1:
                raise self._error("unterminated entity reference")
            entity = raw[i + 1:end]
            if entity.startswith("#x") or entity.startswith("#X"):
                out.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                out.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise self._error(f"unknown entity &{entity};")
            i = end + 1
        return "".join(out)

    def _parse_element(self) -> ElementNode:
        self._expect("<")
        name = self._parse_name()
        element = ElementNode(name)
        # Attributes
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch == "/":
                self._expect("/>")
                return element
            if ch == ">":
                self._advance()
                break
            attr_name = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            element.set_attribute(attr_name, self._parse_attribute_value())
        # Content
        while True:
            if self._pos >= len(self._text):
                raise self._error(f"unterminated element <{name}>")
            if self._lookahead("</"):
                self._advance(2)
                close_name = self._parse_name()
                if close_name != name:
                    raise self._error(
                        f"mismatched closing tag </{close_name}> for <{name}>")
                self._skip_whitespace()
                self._expect(">")
                return element
            if self._lookahead("<!--"):
                element.append_child(self._parse_comment())
            elif self._lookahead("<![CDATA["):
                element.append_child(self._parse_cdata())
            elif self._lookahead("<?"):
                element.append_child(self._parse_pi())
            elif self._peek() == "<":
                element.append_child(self._parse_element())
            else:
                text = self._parse_text()
                if text.value:
                    element.append_child(text)

    def _parse_text(self) -> TextNode:
        end = self._text.find("<", self._pos)
        if end == -1:
            end = len(self._text)
        raw = self._text[self._pos:end]
        self._pos = end
        return TextNode(self._expand_entities(raw))

    def _parse_cdata(self) -> TextNode:
        self._expect("<![CDATA[")
        end = self._text.find("]]>", self._pos)
        if end == -1:
            raise self._error("unterminated CDATA section")
        value = self._text[self._pos:end]
        self._pos = end + 3
        return TextNode(value)

    def _parse_comment(self) -> CommentNode:
        self._expect("<!--")
        end = self._text.find("-->", self._pos)
        if end == -1:
            raise self._error("unterminated comment")
        value = self._text[self._pos:end]
        self._pos = end + 3
        return CommentNode(value)

    def _parse_pi(self) -> ProcessingInstructionNode:
        self._expect("<?")
        target = self._parse_name()
        end = self._text.find("?>", self._pos)
        if end == -1:
            raise self._error("unterminated processing instruction")
        value = self._text[self._pos:end].strip()
        self._pos = end + 2
        return ProcessingInstructionNode(target, value)


def parse_document(text: Union[str, bytes], uri: str = "") -> DocumentNode:
    """Parse ``text`` into a :class:`DocumentNode`.

    Raises :class:`repro.xmldb.errors.XmlParseError` on malformed input.
    """
    return XmlParser(text, uri=uri).parse()


def parse_fragment(text: Union[str, bytes]) -> List[XmlNode]:
    """Parse an XML fragment (zero or more top-level nodes)."""
    return XmlParser(text).parse_fragment()
