"""Exception hierarchy for the XML substrate.

All errors raised by :mod:`repro.xmldb` derive from :class:`XmlError`,
so callers can catch a single type.  Parse errors carry the position in
the input so that malformed workload documents are easy to locate.
"""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all XML substrate errors."""


class XmlParseError(XmlError):
    """Raised when the input text is not well-formed XML.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based position of the error in the input, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)


class XmlSerializeError(XmlError):
    """Raised when a node tree cannot be serialized back to text."""


class XmlNodeError(XmlError):
    """Raised on illegal node-tree manipulations (e.g. cycles)."""
