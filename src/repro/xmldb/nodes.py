"""Typed XML node tree with stable node identifiers.

The node model is deliberately close to the XQuery/XPath data model
subset that an XML path index needs:

* every node has a *node id* that is unique within its document and
  encodes document order (pre-order numbering), which is what a path
  index stores as its "row id";
* every node knows its *simple path* -- the ``/a/b/c`` chain of element
  names from the document root down to the node (attributes contribute a
  trailing ``@name`` step).  Simple paths are what DB2's XML statistics
  and XMLPATTERN indexes are keyed on, and they are the unit the advisor
  reasons about;
* element and attribute nodes expose typed value accessors
  (:meth:`XmlNode.typed_value`, :meth:`XmlNode.double_value`) because XML
  pattern indexes are declared ``AS SQL VARCHAR(n)`` / ``AS SQL DOUBLE``
  and only index nodes whose value can be cast to the declared type.

Node trees are built either by :mod:`repro.xmldb.parser` or
programmatically by the workload generators.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional, Sequence

from repro.xmldb.errors import XmlNodeError

#: Sentinel marking an unparsed DOUBLE cast (``None`` is a valid cached
#: result: it means "does not cast").
_DOUBLE_UNSET: object = object()


class NodeKind(enum.Enum):
    """Kinds of nodes in the XML data model subset we support."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


class XmlNode:
    """Base class of all nodes.

    Parameters
    ----------
    kind:
        The :class:`NodeKind` of this node.
    name:
        Node name (element tag or attribute name); empty for text,
        comment and document nodes.
    value:
        String value for attribute / text / comment / PI nodes.
    """

    __slots__ = (
        "kind",
        "name",
        "value",
        "parent",
        "children",
        "attributes",
        "node_id",
        "_simple_path",
        "_typed_value",
        "_double_value",
    )

    def __init__(self, kind: NodeKind, name: str = "", value: str = "") -> None:
        self.kind = kind
        self.name = name
        self.value = value
        self.parent: Optional[XmlNode] = None
        self.children: List[XmlNode] = []
        self.attributes: List[AttributeNode] = []
        self.node_id: int = -1
        self._simple_path: Optional[str] = None
        self._typed_value: Optional[str] = None
        self._double_value: object = _DOUBLE_UNSET

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def append_child(self, child: "XmlNode") -> "XmlNode":
        """Attach ``child`` as the last child of this node and return it."""
        if child is self:
            raise XmlNodeError("a node cannot be its own child")
        if child.kind == NodeKind.ATTRIBUTE:
            raise XmlNodeError("attributes must be added with set_attribute()")
        child.parent = self
        self.children.append(child)
        self._invalidate_cached_values()
        return child

    def _invalidate_cached_values(self) -> None:
        """Drop the cached typed value of this node and its ancestors.

        Called on every structural mutation; an element's typed value
        concatenates descendant text, so appending a child can change
        the value of every ancestor.
        """
        node: Optional[XmlNode] = self
        while node is not None:
            node._typed_value = None
            node._double_value = _DOUBLE_UNSET
            node = node.parent

    def set_attribute(self, name: str, value: str) -> "AttributeNode":
        """Add (or replace) an attribute and return its node."""
        for existing in self.attributes:
            if existing.name == name:
                existing.value = value
                existing._typed_value = None
                existing._double_value = _DOUBLE_UNSET
                return existing
        attr = AttributeNode(name, value)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    def get_attribute(self, name: str) -> Optional[str]:
        """Return the value of attribute ``name`` or ``None``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return None

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def element_children(self) -> Iterator["ElementNode"]:
        """Iterate over child nodes that are elements."""
        for child in self.children:
            if child.kind == NodeKind.ELEMENT:
                yield child  # type: ignore[misc]

    def child_elements(self, name: str) -> List["ElementNode"]:
        """Return child elements with the given tag name."""
        return [c for c in self.element_children() if c.name == name]

    def first_child_element(self, name: str) -> Optional["ElementNode"]:
        """Return the first child element named ``name`` or ``None``."""
        for child in self.element_children():
            if child.name == name:
                return child
        return None

    def descendants(self, include_self: bool = False) -> Iterator["XmlNode"]:
        """Yield descendant nodes in document order (elements, text, etc.)."""
        if include_self:
            yield self
        for child in self.children:
            yield child
            yield from child.descendants(include_self=False)

    def descendant_elements(self, include_self: bool = False) -> Iterator["ElementNode"]:
        """Yield descendant element nodes in document order."""
        if include_self and self.kind == NodeKind.ELEMENT:
            yield self  # type: ignore[misc]
        for child in self.children:
            if child.kind == NodeKind.ELEMENT:
                yield from child.descendant_elements(include_self=True)

    def ancestors(self, include_self: bool = False) -> Iterator["XmlNode"]:
        """Yield ancestors from the parent up to the document node."""
        node: Optional[XmlNode] = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    # ------------------------------------------------------------------
    # Values and paths
    # ------------------------------------------------------------------
    def string_value(self) -> str:
        """The XPath string value of this node.

        For elements this is the concatenation of all descendant text
        nodes; for other kinds it is the node's own value.
        """
        if self.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT,
                         NodeKind.PROCESSING_INSTRUCTION):
            return self.value
        parts: List[str] = []
        for node in self.descendants():
            if node.kind == NodeKind.TEXT:
                parts.append(node.value)
        return "".join(parts)

    def typed_value(self) -> str:
        """Whitespace-normalized string value used as index key.

        Cached: scan predicates, index builds and statistics all read
        the same values repeatedly.  The cache is invalidated by
        :meth:`append_child` / :meth:`set_attribute` (structural
        mutations walk the ancestor chain, since an element's value
        concatenates descendant text).
        """
        cached = self._typed_value
        if cached is None:
            cached = self._typed_value = " ".join(self.string_value().split())
        return cached

    def double_value(self) -> Optional[float]:
        """The value cast to DOUBLE, or ``None`` if it is not numeric.

        This mirrors DB2's behaviour for ``AS SQL DOUBLE`` pattern
        indexes: nodes whose value does not cast are simply not indexed.
        Cached alongside :meth:`typed_value` (same invalidation points):
        predicate scans and index builds cast the same nodes repeatedly,
        and ``None`` -- "does not cast" -- is itself a valid cached
        answer, hence the private sentinel.
        """
        cached = self._double_value
        if cached is not _DOUBLE_UNSET:
            return cached  # type: ignore[return-value]
        text = self.typed_value()
        if not text:
            result: Optional[float] = None
        else:
            try:
                result = float(text)
            except ValueError:
                result = None
        self._double_value = result
        return result

    def simple_path(self) -> str:
        """Return the rooted simple path of this node, e.g. ``/site/regions/africa/item``.

        Attribute nodes get a trailing ``@name`` step
        (``/site/regions/africa/item/@id``).  Text nodes share the path
        of their parent element.  The result is cached, and the parent's
        cached path is reused, so computing the paths of a whole document
        (as statistics collection, path-summary construction and index
        building do) is O(nodes) rather than O(nodes x depth).
        """
        if self._simple_path is not None:
            return self._simple_path
        if self.kind == NodeKind.DOCUMENT:
            self._simple_path = "/"
            return self._simple_path
        if self.kind == NodeKind.ELEMENT:
            own: Optional[str] = self.name
        elif self.kind == NodeKind.ATTRIBUTE:
            own = "@" + self.name
        else:
            # text/comment/PI nodes contribute no step of their own
            own = None
        parent = self.parent
        if parent is None:
            parent_path = "/"
        else:
            parent_path = parent.simple_path()
        if own is None:
            path = parent_path
        elif parent_path == "/":
            path = "/" + own
        else:
            path = parent_path + "/" + own
        self._simple_path = path
        return path

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == NodeKind.ELEMENT:
            return f"<ElementNode {self.name!r} id={self.node_id}>"
        if self.kind == NodeKind.ATTRIBUTE:
            return f"<AttributeNode {self.name!r}={self.value!r}>"
        return f"<{self.kind.value} {self.value[:20]!r}>"


class DocumentNode(XmlNode):
    """The document root.  Has exactly one element child in well-formed docs."""

    __slots__ = ("doc_id", "uri")

    def __init__(self, uri: str = "") -> None:
        super().__init__(NodeKind.DOCUMENT)
        self.doc_id: int = -1
        self.uri = uri

    @property
    def root_element(self) -> Optional["ElementNode"]:
        """The single top-level element of the document, if present."""
        for child in self.children:
            if child.kind == NodeKind.ELEMENT:
                return child  # type: ignore[return-value]
        return None

    def assign_node_ids(self) -> int:
        """(Re)number all nodes in document order; return the node count.

        Node ids are pre-order positions, so ``a.node_id < b.node_id``
        iff ``a`` precedes ``b`` in document order.  Attributes are
        numbered right after their owning element.
        """
        counter = itertools.count()
        self.node_id = next(counter)
        for node in self.descendants():
            node.node_id = next(counter)
            for attr in node.attributes:
                attr.node_id = next(counter)
        return self.node_id + sum(1 for _ in self.descendants()) + sum(
            len(n.attributes) for n in self.descendants()
        ) + 1

    def total_nodes(self) -> int:
        """Count all nodes (document, elements, attributes, text, ...)."""
        total = 1
        for node in self.descendants():
            total += 1 + len(node.attributes)
        return total


class ElementNode(XmlNode):
    """An element node."""

    __slots__ = ()

    def __init__(self, name: str) -> None:
        super().__init__(NodeKind.ELEMENT, name=name)

    def add_element(self, name: str, text: Optional[str] = None,
                    attributes: Optional[Dict[str, str]] = None) -> "ElementNode":
        """Convenience builder: append a child element, optionally with text/attrs."""
        child = ElementNode(name)
        self.append_child(child)
        if attributes:
            for key, value in attributes.items():
                child.set_attribute(key, value)
        if text is not None:
            child.append_child(TextNode(text))
        return child

    def add_text(self, text: str) -> "TextNode":
        """Append a text child."""
        node = TextNode(text)
        self.append_child(node)
        return node


class AttributeNode(XmlNode):
    """An attribute node (owned by an element, not part of ``children``)."""

    __slots__ = ()

    def __init__(self, name: str, value: str) -> None:
        super().__init__(NodeKind.ATTRIBUTE, name=name, value=value)


class TextNode(XmlNode):
    """A text node."""

    __slots__ = ()

    def __init__(self, value: str) -> None:
        super().__init__(NodeKind.TEXT, value=value)


class CommentNode(XmlNode):
    """A comment node (kept so round-tripping documents is lossless)."""

    __slots__ = ()

    def __init__(self, value: str) -> None:
        super().__init__(NodeKind.COMMENT, value=value)


class ProcessingInstructionNode(XmlNode):
    """A processing-instruction node."""

    __slots__ = ()

    def __init__(self, target: str, value: str) -> None:
        super().__init__(NodeKind.PROCESSING_INSTRUCTION, name=target, value=value)


def normalized_node_value(node: XmlNode) -> str:
    """The whitespace-normalized *direct* value of a node: an attribute's
    value, or an element's direct text children (descendant text is not
    concatenated -- only direct text counts as the element's indexable
    value).

    This is the single definition of "a node's recorded value" shared by
    the columnar store's values column and the statistics synopsis, so
    the two can never disagree on a value's bytes.
    """
    if node.kind == NodeKind.ATTRIBUTE:
        return " ".join(node.value.split())
    direct_text = "".join(child.value for child in node.children
                          if child.kind == NodeKind.TEXT)
    return " ".join(direct_text.split())


def build_document(root_name: str, uri: str = "") -> "tuple[DocumentNode, ElementNode]":
    """Create an empty document with a root element; return ``(doc, root)``.

    This is the entry point the synthetic data generators use.
    """
    doc = DocumentNode(uri=uri)
    root = ElementNode(root_name)
    doc.append_child(root)
    return doc, root


def iter_paths(doc: DocumentNode) -> Iterator[str]:
    """Yield the simple path of every element and attribute node in ``doc``."""
    for node in doc.descendant_elements():
        yield node.simple_path()
        for attr in node.attributes:
            yield attr.simple_path()


def distinct_paths(docs: Sequence[DocumentNode]) -> List[str]:
    """Return the sorted list of distinct simple paths over ``docs``."""
    seen = set()
    for doc in docs:
        for path in iter_paths(doc):
            seen.add(path)
    return sorted(seen)
