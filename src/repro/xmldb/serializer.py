"""Serialize node trees back to XML text.

Round-tripping is used by the document store when exporting generated
workload documents and by tests that check parser/serializer symmetry.
"""

from __future__ import annotations

from typing import List

from repro.xmldb.errors import XmlSerializeError
from repro.xmldb.nodes import NodeKind, XmlNode


def _escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(node: XmlNode, indent: bool = False) -> str:
    """Serialize ``node`` (document, element, or leaf) to an XML string.

    Parameters
    ----------
    node:
        The node to serialize.  Document nodes emit an XML declaration.
    indent:
        When true, elements are pretty-printed with two-space indents.
        Text content is emitted verbatim either way, so indentation only
        changes whitespace *between* elements that have no text children.
    """
    parts: List[str] = []
    if node.kind == NodeKind.DOCUMENT:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent:
            parts.append("\n")
        for child in node.children:
            _serialize_node(child, parts, indent, 0)
        return "".join(parts)
    _serialize_node(node, parts, indent, 0)
    return "".join(parts)


def _serialize_node(node: XmlNode, parts: List[str], indent: bool, depth: int) -> None:
    pad = "  " * depth if indent else ""
    if node.kind == NodeKind.TEXT:
        parts.append(_escape_text(node.value))
        return
    if node.kind == NodeKind.COMMENT:
        parts.append(f"{pad}<!--{node.value}-->")
        if indent:
            parts.append("\n")
        return
    if node.kind == NodeKind.PROCESSING_INSTRUCTION:
        parts.append(f"{pad}<?{node.name} {node.value}?>")
        if indent:
            parts.append("\n")
        return
    if node.kind == NodeKind.ATTRIBUTE:
        raise XmlSerializeError("attribute nodes cannot be serialized standalone")
    if node.kind != NodeKind.ELEMENT:
        raise XmlSerializeError(f"cannot serialize node of kind {node.kind}")

    attrs = "".join(
        f' {attr.name}="{_escape_attribute(attr.value)}"' for attr in node.attributes
    )
    if not node.children:
        parts.append(f"{pad}<{node.name}{attrs}/>")
        if indent:
            parts.append("\n")
        return

    has_element_children = any(c.kind == NodeKind.ELEMENT for c in node.children)
    has_text = any(c.kind == NodeKind.TEXT and c.value.strip() for c in node.children)
    mixed = has_text or not has_element_children

    parts.append(f"{pad}<{node.name}{attrs}>")
    if indent and not mixed:
        parts.append("\n")
    for child in node.children:
        if mixed:
            _serialize_node(child, parts, indent=False, depth=0)
        else:
            _serialize_node(child, parts, indent=indent, depth=depth + 1)
    if indent and not mixed:
        parts.append(pad)
    parts.append(f"</{node.name}>")
    if indent:
        parts.append("\n")
