"""Predicted-vs-actual cost accounting over traced queries.

Every traced execution pairs the optimizer's predicted ``CostModel``
estimate for the chosen plan with the measured wall-clock time, keyed
by *plan shape* (``document-scan`` vs ``index-plan[n]``).  The stream
accumulates into per-shape aggregates and an error series -- the direct
input the ROADMAP's self-calibrating cost model item needs: regress
measured seconds against predicted cost per shape and the calibration
constants fall out.

Observe-only: samples are copies of numbers already computed by the
executor and optimizer; recording one can never influence a plan.
Predicted costs and logical counts are deterministic; measured seconds
are wall-clock and therefore excluded from deterministic exports
(:meth:`CostAccounting.snapshot` drops them unless asked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["CostSample", "CostAccounting"]


@dataclass(frozen=True)
class CostSample:
    """One traced query's predicted estimate next to its measurement."""

    query_id: str
    plan_shape: str
    predicted_cost: float
    measured_seconds: float
    documents_examined: int
    index_entries_scanned: int


class CostAccounting:
    """Bounded in-memory stream of :class:`CostSample` records."""

    __slots__ = ("capacity", "_samples", "dropped")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: List[CostSample] = []
        #: Samples discarded after ``capacity`` was reached (oldest kept:
        #: calibration wants the steady-state prefix, not a moving window).
        self.dropped: int = 0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[CostSample, ...]:
        return tuple(self._samples)

    def record(self, *, query_id: str, plan_shape: str, predicted_cost: float,
               measured_seconds: float, documents_examined: int,
               index_entries_scanned: int) -> None:
        if len(self._samples) >= self.capacity:
            self.dropped += 1
            return
        self._samples.append(CostSample(
            query_id=query_id,
            plan_shape=plan_shape,
            predicted_cost=float(predicted_cost),
            measured_seconds=float(measured_seconds),
            documents_examined=int(documents_examined),
            index_entries_scanned=int(index_entries_scanned),
        ))

    def error_series(self) -> List[Tuple[str, str, float, float]]:
        """Per-sample ``(query_id, plan_shape, predicted, measured)``.

        The "error" is the pair itself: with the cost model's abstract
        units, only the per-shape *ratio* between the columns is
        meaningful, and the regression consuming this series owns that.
        """
        return [(s.query_id, s.plan_shape, s.predicted_cost,
                 s.measured_seconds) for s in self._samples]

    def by_plan_shape(self) -> Dict[str, Dict[str, float]]:
        """Shape-keyed aggregates: sample count, cost and time totals,
        and seconds-per-cost-unit (the calibration constant estimate)."""
        shapes: Dict[str, Dict[str, float]] = {}
        for sample in self._samples:
            agg = shapes.setdefault(sample.plan_shape, {
                "samples": 0,
                "predicted_cost_total": 0.0,
                "measured_seconds_total": 0.0,
            })
            agg["samples"] += 1
            agg["predicted_cost_total"] += sample.predicted_cost
            agg["measured_seconds_total"] += sample.measured_seconds
        for agg in shapes.values():
            cost = agg["predicted_cost_total"]
            agg["seconds_per_cost_unit"] = (
                agg["measured_seconds_total"] / cost if cost > 0 else 0.0)
        return shapes

    def snapshot(self, *, include_wall: bool = False) -> Dict[str, object]:
        """Deterministic summary (measured wall times dropped by default)."""
        shapes = {}
        for shape, agg in sorted(self.by_plan_shape().items()):
            entry: Dict[str, object] = {
                "samples": int(agg["samples"]),
                "predicted_cost_total": agg["predicted_cost_total"],
            }
            if include_wall:
                entry["measured_seconds_total"] = agg["measured_seconds_total"]
                entry["seconds_per_cost_unit"] = agg["seconds_per_cost_unit"]
            shapes[shape] = entry
        return {"samples": len(self._samples), "dropped": self.dropped,
                "by_plan_shape": shapes}

    def describe(self) -> str:
        lines = [f"cost accounting: {len(self._samples)} samples"
                 + (f" ({self.dropped} dropped at capacity)" if self.dropped else "")]
        for shape, agg in sorted(self.by_plan_shape().items()):
            lines.append(
                f"  {shape}: {int(agg['samples'])} samples, "
                f"predicted {agg['predicted_cost_total']:.1f} cost units, "
                f"measured {agg['measured_seconds_total'] * 1000.0:.3f}ms, "
                f"{agg['seconds_per_cost_unit']:.3e} s/cost-unit")
        return "\n".join(lines)
