"""The single audited wall-clock module.

Every wall-clock read in the library goes through :func:`wall_clock`;
this is the only module in the ``repro`` tree allowed to touch
``time.*`` directly.  The confinement is machine-checked: the module is
declared via :func:`repro.contracts.wall_clock_module`, and the
determinism checker flags a direct ``time.perf_counter()`` (or any
other clock read) anywhere else under ``repro``.

Keeping the clock behind one seam is what lets the rest of the
telemetry plane promise deterministic exports: every metric derived
from :func:`wall_clock` is tagged ``wall=True`` at creation and
excluded from deterministic snapshots by default.
"""

from __future__ import annotations

import time

from repro.contracts import wall_clock_module

wall_clock_module("repro.telemetry.clock")

__all__ = ["wall_clock"]


#: Monotonic wall-clock read in fractional seconds.  A direct alias for
#: ``time.perf_counter`` (no wrapper frame -- the read sits on query
#: hot paths): same epoch-free monotonic guarantees, usable only for
#: durations, never for timestamps.
wall_clock = time.perf_counter
