"""repro.telemetry -- the unified, observe-only telemetry plane.

Three coordinated pieces (PR 10):

* :mod:`repro.telemetry.registry` -- process-local metrics registry
  (counters, gauges, fixed-bound histograms) that every legacy ad-hoc
  counter migrated onto, chained instance -> component -> global so
  per-component values stay byte-identical to their old semantics.
* :mod:`repro.telemetry.trace` -- per-query span trees recorded by
  executor/optimizer hooks, surfaced as ``ExecutionResult.trace`` and
  ``xml-index-advisor explain --trace``.
* :mod:`repro.telemetry.accounting` -- the predicted-vs-actual cost
  stream pairing ``CostModel`` estimates with measured times per plan
  shape.

The package is **non-governing by contract**: declared observe-only
below, it may not import the governed packages (statically enforced by
the telemetry checker), wall-clock reads are confined to the audited
:mod:`repro.telemetry.clock`, and default exports exclude wall-derived
metrics so snapshots under logical time are deterministic.
"""

from repro.contracts import observe_only_package

observe_only_package(
    "repro.telemetry",
    "metrics/traces/cost accounting; records, never governs",
)

from repro.telemetry.accounting import CostAccounting, CostSample  # noqa: E402
from repro.telemetry.clock import wall_clock  # noqa: E402
from repro.telemetry.registry import (  # noqa: E402
    CacheStatistics,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.telemetry.trace import (  # noqa: E402
    TRACE_ENV_VAR,
    Span,
    span,
    tracing_armed,
)

__all__ = [
    "CacheStatistics",
    "CostAccounting",
    "CostSample",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TRACE_ENV_VAR",
    "global_registry",
    "reset_global_registry",
    "span",
    "tracing_armed",
    "wall_clock",
]
