"""Process-local metrics registry: counters, gauges, histograms.

One registry is a flat namespace of hierarchically *named* metrics
(``executor.scan.fallbacks``, ``optimizer.plan_cache.hits``, ...).
Registries chain: a component creates its own instance registry with
the process-global registry (or a caller-supplied one) as *parent*, and
every recording on an instance metric propagates to the same-named
metric on the parent chain.  The instance value keeps the legacy
per-component counter semantics byte-for-byte, while the parent
aggregates across components -- which is how the old ad-hoc counters
migrate onto the registry "without changing their current public
values".

Determinism contract: histograms take *fixed literal* bucket bounds at
creation (the telemetry checker rejects data-dependent bounds), and
metrics whose samples come from the wall clock are tagged ``wall=True``
so :meth:`MetricsRegistry.snapshot` can exclude them -- the default
JSON export under logical time is therefore byte-stable across runs.

The whole module is observe-only by contract
(:func:`repro.contracts.observe_only_package`): it imports nothing from
the governed packages and never mutates state outside itself.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CacheStatistics",
    "global_registry",
    "reset_global_registry",
]

Number = Union[int, float]


def _validate_name(name: str) -> str:
    if not name or any(
        not part or not all(ch.isalnum() or ch == "_" for ch in part)
        for part in name.split(".")
    ):
        raise ValueError(
            f"metric names are dotted words like 'executor.scan.fallbacks', got {name!r}"
        )
    return name


class Counter:
    """Monotonic counter.  ``inc`` propagates up the registry chain."""

    __slots__ = ("name", "wall", "value", "_parent")

    def __init__(self, name: str, *, wall: bool = False,
                 parent: Optional["Counter"] = None) -> None:
        self.name = name
        self.wall = wall
        self.value: int = 0
        self._parent = parent

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def reset(self, value: int = 0) -> None:
        """Reset the *local* value (legacy ``executor.counter = 0`` idiom).

        Parent aggregates keep their totals: a component zeroing its own
        window must not erase process-wide history.
        """
        self.value = value

    def export(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins value.  ``set`` propagates up the registry chain."""

    __slots__ = ("name", "wall", "value", "_parent")

    def __init__(self, name: str, *, wall: bool = False,
                 parent: Optional["Gauge"] = None) -> None:
        self.name = name
        self.wall = wall
        self.value: float = 0.0
        self._parent = parent

    def set(self, value: Number) -> None:
        self.value = float(value)
        if self._parent is not None:
            self._parent.set(value)

    def export(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound histogram: per-bucket counts plus count and sum.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches the rest.
    Bounds are fixed at creation -- by contract they must be literal in
    the declaring source (no data-dependent bucketing), which keeps
    bucket layout, and hence the export, deterministic.
    """

    __slots__ = ("name", "wall", "bounds", "bucket_counts", "count", "total",
                 "_parent")

    def __init__(self, name: str, bounds: Sequence[Number], *,
                 wall: bool = False,
                 parent: Optional["Histogram"] = None) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing: {edges}"
            )
        self.name = name
        self.wall = wall
        self.bounds: Tuple[float, ...] = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self._parent = parent

    def observe(self, value: Number) -> None:
        value = float(value)
        # bisect_left keeps upper edges inclusive (Prometheus `le`
        # semantics): observe(bound) lands in the bucket whose edge it
        # names, not the next one.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self._parent is not None:
            self._parent.observe(value)

    def export(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named set of metrics, optionally chained to a parent registry.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    name always returns the same metric object, and asking for an
    existing name with a different type (or different histogram bounds)
    is an error -- names are a process-wide schema, not ad-hoc keys.
    """

    __slots__ = ("parent", "_metrics")

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self.parent = parent
        self._metrics: Dict[str, Metric] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, *, wall: bool = False) -> Counter:
        return self._get_or_create(Counter, name, wall=wall)

    def gauge(self, name: str, *, wall: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, wall=wall)

    def histogram(self, name: str, bounds: Sequence[Number], *,
                  wall: bool = False) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__.lower()}, not histogram")
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} re-registered with different bounds")
            return existing
        # Parent propagation forwards the caller's (already literal)
        # bounds; the fixed-bounds rule is enforced at the declaring
        # call site, not at this structural pass-through.
        parent_metric = (self.parent.histogram(name, bounds, wall=wall)  # contract: allow[telemetry]
                         if self.parent is not None else None)
        metric = Histogram(_validate_name(name), bounds, wall=wall,
                           parent=parent_metric)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, *, wall: bool):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__.lower()}, not {cls.__name__.lower()}")
            return existing
        parent_metric = None
        if self.parent is not None:
            parent_metric = self.parent._get_or_create(cls, name, wall=wall)
        metric = cls(_validate_name(name), wall=wall, parent=parent_metric)
        self._metrics[name] = metric
        return metric

    # -- introspection and export ----------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str) -> Number:
        """Scalar value of a counter/gauge, 0 if never registered."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise ValueError(f"{name!r} is a histogram; read .export() instead")
        return metric.value

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self, *, include_wall: bool = False) -> Dict[str, Dict[str, object]]:
        """Name-sorted export of every metric.

        Wall-clock-derived metrics are excluded unless asked for, so the
        default snapshot is deterministic under logical time.
        """
        return {
            name: metric.export()
            for name, metric in sorted(self._metrics.items())
            if include_wall or not metric.wall
        }

    def to_json(self, *, include_wall: bool = False, indent: int = 2) -> str:
        return json.dumps(self.snapshot(include_wall=include_wall),
                          indent=indent, sort_keys=True)

    def to_prometheus(self, *, include_wall: bool = False) -> str:
        """Prometheus text exposition (dots flattened to underscores)."""
        lines: List[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.wall and not include_wall:
                continue
            flat = name.replace(".", "_")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {metric.value}")
            else:
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for bound, bucket in zip(metric.bounds, metric.bucket_counts):
                    cumulative += bucket
                    lines.append(f'{flat}_bucket{{le="{bound}"}} {cumulative}')
                cumulative += metric.bucket_counts[-1]
                lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{flat}_sum {metric.total}")
                lines.append(f"{flat}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass(frozen=True)
class CacheStatistics:
    """Plan-cache and evaluator-memo hit/miss totals at a point in time.

    Carried on ``TuningEvent`` records and printed by the ``tune`` CLI
    so cache behaviour stops being silent.  Pure data -- building one
    reads counters, never touches the caches themselves.
    """

    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0

    @staticmethod
    def _ratio(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def plan_cache_ratio(self) -> float:
        return self._ratio(self.plan_cache_hits, self.plan_cache_misses)

    @property
    def memo_ratio(self) -> float:
        return self._ratio(self.memo_hits, self.memo_misses)

    def describe(self) -> str:
        return (
            f"plan cache {self.plan_cache_hits}/"
            f"{self.plan_cache_hits + self.plan_cache_misses} hits "
            f"({self.plan_cache_ratio:.1%}), evaluator memo "
            f"{self.memo_hits}/{self.memo_hits + self.memo_misses} hits "
            f"({self.memo_ratio:.1%})"
        )


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global aggregate registry (root of every chain)."""
    return _GLOBAL_REGISTRY


def reset_global_registry() -> None:
    """Drop every process-global metric (test isolation helper).

    Parent links are resolved at metric creation, so components built
    *before* the reset keep propagating into orphaned metric objects --
    reset first, then build the components under test.
    """
    _GLOBAL_REGISTRY.clear()
