"""Per-query execution traces: a span tree recorded by executor hooks.

A trace is a tree of :class:`Span` nodes -- ``query`` at the root, with
children like ``parse``, ``plan``, ``route``, ``scan`` /
``index-probe`` / ``residual`` and ``extract`` -- each carrying a flat
attribute dict (plan shape, routing set, cache hit/miss attribution,
logical counts) plus an optional wall-clock duration.  Instrumented
code never builds spans directly; it calls :func:`span` with the
current parent, which is a no-op context manager when the parent is
``None`` (tracing off), so the disabled path costs one ``if``.

Tracing is armed per call (``execute(trace=True)``), per executor
(``QueryExecutor(trace=...)``), or process-wide via ``REPRO_TRACE=1``.
Spans are observe-only: they describe what the executor did and are
attached to ``ExecutionResult.trace``, never consulted by planning.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.telemetry.clock import wall_clock

__all__ = ["TRACE_ENV_VAR", "Span", "span", "tracing_armed"]

#: Environment switch arming tracing process-wide (any value but ""/"0").
TRACE_ENV_VAR = "REPRO_TRACE"


def tracing_armed() -> bool:
    """True when ``REPRO_TRACE`` arms tracing for every executor."""
    return os.environ.get(TRACE_ENV_VAR, "0") not in ("", "0")


class Span:
    """One node of an execution trace.

    Mutable on purpose -- instrumentation annotates a span as facts
    become known -- but plain data: no behaviour, no references into
    governed state, safe to hold on a result object indefinitely.
    ``elapsed_seconds`` stays 0.0 for spans that carry only logical
    attributes (separable wall timing would need per-item clock reads).
    """

    __slots__ = ("name", "attrs", "children", "elapsed_seconds")

    def __init__(self, name: str, **attrs: object) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs)
        self.children: List["Span"] = []
        self.elapsed_seconds: float = 0.0

    def child(self, name: str, **attrs: object) -> "Span":
        node = Span(name, **attrs)
        self.children.append(node)
        return node

    def annotate(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in depth-first order, else None."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self, *, include_wall: bool = True) -> Dict[str, object]:
        node: Dict[str, object] = {"name": self.name}
        if include_wall:
            node["elapsed_seconds"] = self.elapsed_seconds
        if self.attrs:
            node["attrs"] = {key: self.attrs[key] for key in sorted(self.attrs)}
        if self.children:
            node["children"] = [
                child.to_dict(include_wall=include_wall)
                for child in self.children
            ]
        return node

    def render(self, *, include_wall: bool = True) -> str:
        """Indented one-line-per-span tree for ``explain --trace``."""
        lines: List[str] = []
        self._render_into(lines, 0, include_wall)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], depth: int,
                     include_wall: bool) -> None:
        parts = [("  " * depth) + self.name]
        if include_wall and self.elapsed_seconds:
            parts.append(f"{self.elapsed_seconds * 1000.0:.3f}ms")
        for key in sorted(self.attrs):
            parts.append(f"{key}={self.attrs[key]!r}")
        lines.append("  ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1, include_wall)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, children={len(self.children)})"


@contextmanager
def span(parent: Optional[Span], name: str, **attrs: object):
    """Open a timed child span under ``parent``; no-op when parent is None.

    Yields the child span (annotate it inside the block) or ``None``
    when tracing is off, so call sites write ``with span(trace, "plan")
    as s: ...`` unconditionally.  The duration is recorded even when the
    body raises -- a replanned fault still shows up in the tree.
    """
    if parent is None:
        yield None
        return
    node = parent.child(name, **attrs)
    start = wall_clock()
    try:
        yield node
    finally:
        node.elapsed_seconds = wall_clock() - start
