"""Online tuning subsystem: the advisor's autonomous control plane.

The paper's advisor is an offline tool -- a DBA hands it a training
workload and receives a configuration.  This package closes the loop for
*evolving* systems: the workload is captured at the executor, compressed
into a bounded representative form, watched for drift against the
workload the live configuration was advised on, and migrated without a
human in the loop.

* :mod:`repro.tuning.monitor` -- the capture side: a
  :class:`~repro.tuning.monitor.WorkloadMonitor` hooked into
  :class:`~repro.executor.executor.QueryExecutor` keeps a bounded,
  exponentially-decayed frequency store of executed query templates.
* :mod:`repro.tuning.compressor` -- bounds the advisor's input:
  captured templates are clustered by pattern containment into at most
  ``cluster_cap`` representative queries with aggregated weights.
* :mod:`repro.tuning.drift` -- the trigger: combines workload drift
  (divergence from the advised-on snapshot) and data drift (changed
  paths reported by the PR 3 delta machinery) into one scalar score.
* :mod:`repro.tuning.controller` -- the loop: when drift crosses the
  policy threshold, re-advise on the compressed workload, diff against
  the live catalog configuration, and emit/apply an ordered
  :class:`~repro.tuning.controller.MigrationPlan` under disk and
  build-cost budgets, with a dry-run mode and a full audit trail.

Everything is deterministic by construction: time is the monitor's
injected step counter, never the wall clock.
"""

from repro.contracts import deterministic_package
from repro.tuning.compressor import CompressedWorkload, compress_snapshot
from repro.tuning.controller import (
    MigrationPlan,
    MigrationStep,
    TuningController,
    TuningEvent,
    TuningPolicy,
)
from repro.tuning.drift import DriftDetector, DriftReport
from repro.tuning.monitor import CapturedQuery, WorkloadMonitor, WorkloadSnapshot

# Determinism contract: nothing in this package may read the wall clock,
# draw unseeded randomness, or iterate a set into an emitted ordering --
# two runs over the same traffic must produce byte-identical plans.
# Machine-checked by ``xml-index-advisor lint`` (determinism checker).
deterministic_package("repro.tuning")

__all__ = [
    "CapturedQuery",
    "CompressedWorkload",
    "DriftDetector",
    "DriftReport",
    "MigrationPlan",
    "MigrationStep",
    "TuningController",
    "TuningEvent",
    "TuningPolicy",
    "WorkloadMonitor",
    "WorkloadSnapshot",
    "compress_snapshot",
]
