"""Workload compression: bound the advisor's input, whatever the traffic.

The monitor already aggregates re-executions of one template, but a
production stream can still surface more *distinct* templates than an
advisor run should chew on (ad-hoc literals, per-tenant paths, ...).
:func:`compress_snapshot` reduces a
:class:`~repro.tuning.monitor.WorkloadSnapshot` to at most
``cluster_cap`` representative queries with aggregated weights, in three
deterministic stages that engage only while the input still exceeds the
cap -- at or below it, compression is the identity (one cluster per
captured template), which is what lets the online loop's advisor input
stay byte-equal to the raw captured workload on ordinary traffic:

1. **literal folding** -- templates identical except for the compared
   literals merge (``quantity > 7`` and ``quantity > 9`` are one shape);
2. **containment clustering** -- clusters whose aligned predicate
   patterns are containment-related or pairwise-generalizable
   (:func:`repro.xpath.patterns.pattern_contains` /
   :func:`~repro.xpath.patterns.generalize_pair` -- the same machinery
   the advisor's generalization phase runs) merge greedily, most
   similar (longest common prefix) first;
3. **truncation** -- anything still beyond the cap is dropped
   lowest-weight-first, with the shed weight reported rather than
   silently vanishing.

Each cluster's representative is its highest-weight member, so the
compressed workload stays made of *real observed queries* (concrete
literals included) -- exactly what the what-if machinery can cost.
Below the cap, compression is the identity up to weight aggregation:
the property the online-vs-offline byte-identity tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.contracts import snapshot_contract
from repro.tuning.monitor import CapturedQuery, WorkloadSnapshot, template_key
from repro.xpath.patterns import (
    PathPattern,
    common_prefix_length,
    generalize_pair,
    pattern_contains,
)
from repro.xquery.model import NormalizedQuery

#: Default bound on the advisor input size.
DEFAULT_CLUSTER_CAP = 32


@snapshot_contract()
@dataclass(frozen=True)
class CompressedCluster:
    """One cluster of captured templates behind a single representative."""

    #: The highest-weight member's normalized query, re-weighted with the
    #: cluster's aggregate weight and re-identified deterministically.
    query: NormalizedQuery
    #: Aggregate decayed weight of every member.
    weight: float
    #: Template keys of the members this cluster absorbed.
    member_keys: Tuple[str, ...]
    #: Cost-proxy EMA of the representative member (observability).
    cost_proxy: Optional[float] = None

    @property
    def member_count(self) -> int:
        return len(self.member_keys)


@snapshot_contract()
@dataclass(frozen=True)
class CompressedWorkload:
    """The advisor-ready compressed form of one workload snapshot."""

    clusters: Tuple[CompressedCluster, ...]
    #: Step of the snapshot this was compressed from.
    step: int
    #: The bound the compression ran under.
    cluster_cap: int
    #: Distinct templates in the snapshot before compression.
    captured_templates: int
    #: Weight dropped by the truncation stage (0.0 when the clustering
    #: stages got under the cap on their own).
    truncated_weight: float = 0.0

    @property
    def queries(self) -> List[NormalizedQuery]:
        """The representative queries, weights as frequencies -- what the
        advisor pipeline consumes."""
        return [cluster.query for cluster in self.clusters]

    @property
    def total_weight(self) -> float:
        return sum(cluster.weight for cluster in self.clusters)

    def distribution(self) -> Dict[str, float]:
        """Representative query id -> normalized weight."""
        total = self.total_weight
        if total <= 0:
            return {}
        return {cluster.query.query_id: cluster.weight / total
                for cluster in self.clusters}

    def describe(self) -> str:
        lines = [f"compressed workload @step {self.step}: "
                 f"{self.captured_templates} template(s) -> "
                 f"{len(self.clusters)} cluster(s) (cap {self.cluster_cap})"]
        for cluster in self.clusters:
            lines.append(f"  {cluster.weight:8.2f} x{cluster.member_count:<3d} "
                         f"{cluster.query.text[:60]}")
        if self.truncated_weight:
            lines.append(f"  truncated weight: {self.truncated_weight:.2f}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cluster state used during compression
# ----------------------------------------------------------------------
@dataclass
class _Cluster:
    representative: CapturedQuery
    weight: float
    member_keys: List[str]

    def absorb(self, other: "_Cluster") -> None:
        if other.representative.weight > self.representative.weight or (
                other.representative.weight == self.representative.weight
                and other.representative.key < self.representative.key):
            self.representative = other.representative
        self.weight += other.weight
        self.member_keys.extend(other.member_keys)


def _aligned_predicates(first: NormalizedQuery, second: NormalizedQuery
                        ) -> Optional[List[Tuple[PathPattern, PathPattern]]]:
    """Pair up the two queries' predicate patterns, or ``None`` when the
    shapes cannot align (different counts, ops, or value types)."""
    if len(first.predicates) != len(second.predicates):
        return None
    lhs = sorted(first.predicates, key=lambda p: p.pattern.to_text())
    rhs = sorted(second.predicates, key=lambda p: p.pattern.to_text())
    pairs: List[Tuple[PathPattern, PathPattern]] = []
    for a, b in zip(lhs, rhs):
        a_op = a.op.value if a.op is not None else ""
        b_op = b.op.value if b.op is not None else ""
        if a_op != b_op or a.value_type is not b.value_type:
            return None
        pairs.append((a.pattern, b.pattern))
    return pairs


def _patterns_mergeable(first: PathPattern, second: PathPattern) -> bool:
    """Containment-related or pairwise-generalizable patterns cluster."""
    if first.to_text() == second.to_text():
        return True
    if pattern_contains(first, second) or pattern_contains(second, first):
        return True
    return generalize_pair(first, second) is not None


def _clusters_mergeable(first: _Cluster, second: _Cluster) -> bool:
    a, b = first.representative.query, second.representative.query
    if (a.update_kind is not None) != (b.update_kind is not None):
        return False
    if a.predicates or b.predicates:
        pairs = _aligned_predicates(a, b)
        if pairs is None:
            return False
        return all(_patterns_mergeable(x, y) for x, y in pairs)
    # Pure navigation (or update) templates: cluster on their routing
    # patterns instead.
    lhs, rhs = a.routing_patterns(), b.routing_patterns()
    if len(lhs) != len(rhs) or not lhs:
        return False
    lhs = sorted(lhs, key=PathPattern.to_text)
    rhs = sorted(rhs, key=PathPattern.to_text)
    return all(_patterns_mergeable(x, y) for x, y in zip(lhs, rhs))


def _similarity(first: _Cluster, second: _Cluster) -> int:
    """Merge preference: longest common pattern prefix first."""
    a = first.representative.query.routing_patterns()
    b = second.representative.query.routing_patterns()
    if not a or not b:
        return 0
    return max(common_prefix_length(x, y) for x in a for y in b)


def compress_snapshot(snapshot: WorkloadSnapshot,
                      cluster_cap: int = DEFAULT_CLUSTER_CAP,
                      query_id_prefix: str = "online"
                      ) -> CompressedWorkload:
    """Compress ``snapshot`` into at most ``cluster_cap`` weighted
    representative queries (see the module docstring for the stages)."""
    if cluster_cap < 1:
        raise ValueError("cluster_cap must be at least 1")
    captured = len(snapshot.entries)

    clusters: List[_Cluster] = [
        _Cluster(representative=entry, weight=entry.weight,
                 member_keys=[entry.key])
        for entry in snapshot.entries]

    # Stage 1: fold templates identical up to literals.  Entries arrive
    # weight-descending, so the first member of each shape is its
    # representative and cluster order stays deterministic.
    if len(clusters) > cluster_cap:
        by_shape: Dict[str, _Cluster] = {}
        folded: List[_Cluster] = []
        for cluster in clusters:
            shape = template_key(cluster.representative.query,
                                 include_literals=False)
            existing = by_shape.get(shape)
            if existing is None:
                by_shape[shape] = cluster
                folded.append(cluster)
            else:
                existing.absorb(cluster)
        clusters = folded

    # Stage 2: greedy containment clustering, most similar pair first.
    # Pair mergeability/similarity is memoized and only the merged
    # cluster's rows are recomputed after each merge, so the expensive
    # pattern-containment work is O(n^2) upfront plus O(n) per merge
    # instead of O(n^2) per merge.
    scores: Dict[Tuple[int, int], Optional[int]] = {}

    def pair_score(a: _Cluster, b: _Cluster) -> Optional[int]:
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        if key not in scores:
            scores[key] = _similarity(a, b) \
                if _clusters_mergeable(a, b) else None
        return scores[key]

    while len(clusters) > cluster_cap:
        best: Optional[Tuple[int, int, int]] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                score = pair_score(clusters[i], clusters[j])
                if score is None:
                    continue
                if best is None or score > best[0]:
                    best = (score, i, j)
        if best is None:
            break
        _, i, j = best
        removed = clusters.pop(j)
        survivor = clusters[i]
        survivor.absorb(removed)
        # The merge may have changed the survivor's representative, so
        # its memoized pair rows (and the removed cluster's) are stale.
        stale = {id(survivor), id(removed)}
        for key in [k for k in scores if k[0] in stale or k[1] in stale]:
            del scores[key]

    # Stage 3: truncate what clustering could not merge.
    clusters.sort(key=lambda c: (-c.weight, c.representative.key))
    truncated_weight = 0.0
    if len(clusters) > cluster_cap:
        truncated_weight = sum(c.weight for c in clusters[cluster_cap:])
        clusters = clusters[:cluster_cap]

    compressed: List[CompressedCluster] = []
    for position, cluster in enumerate(clusters, start=1):
        representative = replace(
            cluster.representative.query,
            query_id=f"{query_id_prefix}-q{position}",
            frequency=cluster.weight,
            predicates=list(cluster.representative.query.predicates),
            extraction_paths=list(
                cluster.representative.query.extraction_paths),
            touched_patterns=list(
                cluster.representative.query.touched_patterns))
        compressed.append(CompressedCluster(
            query=representative,
            weight=cluster.weight,
            member_keys=tuple(cluster.member_keys),
            cost_proxy=cluster.representative.cost_proxy))
    return CompressedWorkload(clusters=tuple(compressed),
                              step=snapshot.step,
                              cluster_cap=cluster_cap,
                              captured_templates=captured,
                              truncated_weight=truncated_weight)
