"""Workload capture: the executor-side observation store.

A :class:`WorkloadMonitor` attaches to a
:class:`~repro.executor.executor.QueryExecutor` (``monitor=`` at
construction or :meth:`QueryExecutor.attach_monitor`) and records every
executed query into a bounded, exponentially-decayed frequency store, so
the "current workload" is a first-class, continuously updated object
instead of a static training file.

Identity is the query *template*: the structural signature of a
normalized query (predicate patterns with operator kind, value type and
literal, plus extraction paths).  Re-executions of the same statement --
whatever ``query_id`` the caller normalized it under -- land on one
:class:`CapturedQuery` entry that accumulates weight.

Time is an injected logical step counter, never the wall clock:
:meth:`WorkloadMonitor.tick` advances it, and an entry recorded ``d``
steps ago has decayed by ``decay ** d``.  Records within one step are
undecayed relative to each other, so a workload replayed once per tick
yields weights exactly proportional to its per-round counts -- the
property the online-vs-offline byte-identity tests rely on.  The store
is bounded: above ``capacity`` distinct templates, the lowest-weight
entry is evicted (deterministic tie-break on the template key).

:meth:`snapshot` freezes the store into a :class:`WorkloadSnapshot` --
the unit the drift detector compares and the catalog records as
configuration provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.contracts import snapshot_contract
from repro.telemetry import MetricsRegistry, global_registry
from repro.xquery.model import NormalizedQuery

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.executor.executor import ExecutionResult

#: Default bound on distinct templates the monitor retains.
DEFAULT_CAPACITY = 256

#: Default per-step decay factor (1.0 disables decay entirely).
DEFAULT_DECAY = 0.9


def template_key(query: NormalizedQuery, include_literals: bool = True) -> str:
    """The structural identity of a normalized query.

    Two executions share a template exactly when their predicate
    signatures (pattern, operator, literal, value type) and extraction
    paths coincide -- ``query_id`` and declared frequency are ignored,
    so ad-hoc re-normalizations of the same statement aggregate.

    ``include_literals=False`` blanks the compared literals out,
    producing the *shape* identity the workload compressor's literal
    folding merges on (``quantity > 7`` and ``quantity > 9`` are one
    shape).
    """
    predicates = sorted(
        (predicate.pattern.to_text(),
         predicate.op.value if predicate.op is not None else "",
         repr(predicate.value) if include_literals else "",
         predicate.value_type.value)
        for predicate in query.predicates)
    extraction = sorted(pattern.to_text() for pattern in query.extraction_paths)
    touched = sorted(pattern.to_text() for pattern in query.touched_patterns)
    kind = query.update_kind.value if query.update_kind is not None else "query"
    return "|".join([kind,
                     ";".join("/".join(p) for p in predicates),
                     ";".join(extraction),
                     ";".join(touched)])


@snapshot_contract()
@dataclass(frozen=True, slots=True)
class CapturedQuery:
    """One captured query template with its decayed arrival weight.

    Immutable: the monitor absorbs arrivals by ``dataclasses.replace``,
    so entries handed out in snapshots can never be retroactively
    changed by later traffic.
    """

    key: str
    #: A representative normalized form (the first one observed); its
    #: ``frequency`` field is meaningless here -- weights live below.
    query: NormalizedQuery
    #: Exponentially-decayed arrival weight, valid as of ``last_step``.
    weight: float
    #: Undecayed arrival count (observability; never drives decisions).
    arrivals: int
    #: Step the entry last absorbed an arrival or decay.
    last_step: int
    #: Exponential moving average of the executor's measured cost proxy
    #: (documents examined + index entries scanned); ``None`` until a
    #: result has been observed.
    cost_proxy: Optional[float] = None

    def weight_at(self, step: int, decay: float) -> float:
        """The entry's weight decayed forward to ``step``."""
        if step <= self.last_step or decay >= 1.0:
            return self.weight
        return self.weight * decay ** (step - self.last_step)


@snapshot_contract()
@dataclass(frozen=True)
class WorkloadSnapshot:
    """An immutable view of the monitor's store at one step.

    Entries are ordered by descending weight (ties broken on the
    template key) so every consumer sees one deterministic order.
    """

    step: int
    entries: Tuple[CapturedQuery, ...]
    #: Weight not represented in ``entries``: capacity evictions
    #: accumulated by the store plus the weight this snapshot's prune
    #: floor excluded -- capture is bounded, never silently exact.
    shed_weight: float = 0.0

    @property
    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries)

    def distribution(self) -> Dict[str, float]:
        """Template key -> normalized weight (sums to 1; empty when no
        entries)."""
        total = self.total_weight
        if total <= 0:
            return {}
        return {entry.key: entry.weight / total for entry in self.entries}

    def describe(self) -> str:
        lines = [f"workload snapshot @step {self.step}: "
                 f"{len(self.entries)} template(s), "
                 f"total weight {self.total_weight:.2f}"]
        for entry in self.entries[:10]:
            lines.append(f"  {entry.weight:8.2f}  {entry.query.text[:70]}")
        if len(self.entries) > 10:
            lines.append(f"  ... and {len(self.entries) - 10} more")
        return "\n".join(lines)


class WorkloadMonitor:
    """Bounded, exponentially-decayed store of executed query templates.

    Parameters
    ----------
    capacity:
        Maximum distinct templates retained; the lowest-weight entry is
        evicted beyond it.
    decay:
        Per-step weight decay factor in ``(0, 1]``; ``1.0`` disables
        decay (weights are then plain arrival counts).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 decay: float = DEFAULT_DECAY,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("monitor capacity must be at least 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.capacity = capacity
        self.decay = decay
        #: Logical time: advanced only by :meth:`tick`, never by a clock.
        self.step = 0
        self._entries: Dict[str, CapturedQuery] = {}
        self._shed_weight = 0.0
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        #: Total record() calls (observability for tests/benchmarks).
        self._m_recorded = self.metrics.counter("tuning.monitor.recorded")
        #: Weight lost to capacity evictions, mirrored as a gauge.
        self._m_shed_weight = self.metrics.gauge("tuning.monitor.shed_weight")

    # ------------------------------------------------------------------
    # Legacy counter attributes -- byte-equal views of registry metrics
    # ------------------------------------------------------------------
    @property
    def recorded(self) -> int:
        return self._m_recorded.value

    @recorded.setter
    def recorded(self, value: int) -> None:
        self._m_recorded.reset(value)

    # ------------------------------------------------------------------
    def tick(self, steps: int = 1) -> int:
        """Advance logical time by ``steps``; returns the new step."""
        if steps < 0:
            raise ValueError("time only moves forward")
        self.step += steps
        return self.step

    def record(self, query: NormalizedQuery,
               result: Optional["ExecutionResult"] = None) -> CapturedQuery:
        """Absorb one executed query (called by the executor hook).

        The arrival weight is the query's declared ``frequency`` (1.0
        for ad-hoc normalizations), so replaying a weighted workload
        once records the same mass as executing each statement
        ``frequency`` times.
        """
        self._m_recorded.inc()
        key = template_key(query)
        entry = self._entries.get(key)
        increment = query.frequency if query.frequency > 0 else 1.0
        if entry is None:
            entry = CapturedQuery(key=key, query=query, weight=0.0,
                                  arrivals=0, last_step=self.step)
        cost_proxy = entry.cost_proxy
        if result is not None:
            proxy = float(result.documents_examined
                          + result.index_entries_scanned)
            cost_proxy = proxy if cost_proxy is None \
                else 0.5 * cost_proxy + 0.5 * proxy
        entry = replace(
            entry,
            weight=entry.weight_at(self.step, self.decay) + increment,
            arrivals=entry.arrivals + 1,
            last_step=self.step,
            cost_proxy=cost_proxy)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._evict_one(protect=key)
        return entry

    def _evict_one(self, protect: Optional[str] = None) -> None:
        """Drop the lowest-weight entry (deterministic tie-break).

        ``protect`` is the just-recorded template: evicting it would
        reset a newly-hot template to zero on every arrival, so it
        could never accumulate enough weight to displace residents --
        a full workload shift would stay invisible forever.  Protecting
        the newcomer lets it compete; the lowest-weight *resident* pays
        for the slot instead.
        """
        victim = min(
            (e for e in self._entries.values() if e.key != protect),
            key=lambda e: (e.weight_at(self.step, self.decay), e.key))
        self._shed_weight += victim.weight_at(self.step, self.decay)
        self._m_shed_weight.set(self._shed_weight)
        del self._entries[victim.key]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def shed_weight(self) -> float:
        """Weight lost to capacity evictions (snapshot pruning is
        reported per snapshot, not accumulated here)."""
        return self._shed_weight

    def snapshot(self, min_weight_fraction: float = 0.0) -> WorkloadSnapshot:
        """Freeze the store into an immutable, deterministic snapshot.

        ``min_weight_fraction`` excludes templates whose decayed weight
        has fallen below that fraction of the total -- how a superseded
        workload finally leaves the advisor's input once enough ticks
        have decayed it away.  Snapshotting never mutates the store:
        the excluded weight is reported in the snapshot's
        ``shed_weight`` (on top of the store's capacity evictions), and
        the entries themselves stay captured, so a template that
        regains traffic re-enters future snapshots.
        """
        entries: List[CapturedQuery] = []
        for entry in self._entries.values():
            weight = entry.weight_at(self.step, self.decay)
            if weight > 0:
                entries.append(replace(entry, weight=weight,
                                       last_step=self.step))
        pruned = 0.0
        total = sum(entry.weight for entry in entries)
        if min_weight_fraction > 0 and total > 0:
            floor = total * min_weight_fraction
            pruned = sum(entry.weight for entry in entries
                         if entry.weight < floor)
            entries = [entry for entry in entries if entry.weight >= floor]
        entries.sort(key=lambda e: (-e.weight, e.key))
        return WorkloadSnapshot(step=self.step, entries=tuple(entries),
                                shed_weight=self._shed_weight + pruned)

    def clear(self) -> None:
        """Forget everything (weights, arrivals, shed accounting)."""
        self._entries.clear()
        self._shed_weight = 0.0
        self._m_shed_weight.set(0.0)
        self._m_recorded.reset()
