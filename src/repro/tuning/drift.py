"""Drift detection: when does the live configuration stop fitting?

A configuration is advised for a (workload, data) pair; either half can
move.  The :class:`DriftDetector` scores both against what the current
configuration was advised on and combines them into one scalar:

* **workload drift** -- the total-variation distance between the
  monitor's current decayed template distribution and the distribution
  recorded as the configuration's provenance
  (:class:`~repro.tuning.monitor.WorkloadSnapshot`).  0 means the same
  traffic mix, 1 means completely disjoint traffic; a configuration
  that was never advised on any workload scores 1 the moment traffic
  exists.
* **data drift** -- the fraction of the database's distinct paths whose
  statistics changed since the configuration was advised, accumulated
  from the PR 3 delta machinery
  (:class:`~repro.storage.maintenance.DataChangeTracker` per-path
  change reports) -- no document walk, no wall clock.

``score = workload_weight * workload_drift + data_weight * data_drift``
(normalized by the weight sum), compared against the policy threshold by
the controller.  :meth:`DriftDetector.rebase` resets the accumulated
data changes after a migration, so each advised configuration is scored
against its own epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.contracts import snapshot_contract
from repro.storage.document_store import XmlDatabase
from repro.storage.maintenance import DataChangeTracker
from repro.tuning.monitor import WorkloadSnapshot


@snapshot_contract()
@dataclass(frozen=True)
class DriftReport:
    """One drift assessment, with the pieces the score combined."""

    #: Total-variation distance between current and advised-on workload
    #: distributions, in [0, 1].
    workload_drift: float
    #: Fraction of distinct paths changed since the last rebase, [0, 1].
    data_drift: float
    #: The combined scalar the controller thresholds on.
    score: float
    #: The threshold the report was assessed against.
    threshold: float
    #: Number of templates in the current snapshot.
    current_templates: int
    #: Number of templates in the advised-on snapshot (0 = never advised).
    baseline_templates: int
    #: Distinct changed paths accumulated since the last rebase.
    changed_paths: int

    @property
    def exceeded(self) -> bool:
        return self.score >= self.threshold

    def describe(self) -> str:
        flag = "DRIFTED" if self.exceeded else "stable"
        return (f"drift {self.score:.3f} (threshold {self.threshold:.3f}, "
                f"{flag}): workload {self.workload_drift:.3f} "
                f"[{self.baseline_templates} -> {self.current_templates} "
                f"template(s)], data {self.data_drift:.3f} "
                f"[{self.changed_paths} changed path(s)]")


def workload_distance(current: WorkloadSnapshot,
                      baseline: Optional[WorkloadSnapshot]) -> float:
    """Total-variation distance between two snapshots' distributions.

    ``baseline=None`` (no configuration provenance) counts as maximal
    drift as soon as any traffic has been captured -- an un-advised
    system with traffic should always trigger a first advising pass.
    """
    current_dist = current.distribution()
    if baseline is None:
        return 1.0 if current_dist else 0.0
    baseline_dist = baseline.distribution()
    if not current_dist and not baseline_dist:
        return 0.0
    # Sum in sorted key order: float addition is not associative, and
    # set iteration order varies across processes (hash randomization),
    # so an unsorted sum could make the drift score -- and therefore
    # the re-advise decision -- differ between identical runs.
    keys = set(current_dist) | set(baseline_dist)
    return 0.5 * sum(abs(current_dist.get(key, 0.0)
                         - baseline_dist.get(key, 0.0))
                     for key in sorted(keys))


class DriftDetector:
    """Scores workload + data drift for one database.

    Holds its own :class:`DataChangeTracker`, so polling here never
    steals change reports from the optimizer's or the evaluator's
    trackers.  Changed paths accumulate across polls until
    :meth:`rebase` (called by the controller after it migrates).
    """

    def __init__(self, database: XmlDatabase,
                 threshold: float = 0.25,
                 workload_weight: float = 1.0,
                 data_weight: float = 1.0) -> None:
        if threshold < 0:
            raise ValueError("drift threshold must be non-negative")
        if workload_weight < 0 or data_weight < 0 \
                or workload_weight + data_weight <= 0:
            raise ValueError("drift weights must be non-negative and not both 0")
        self.database = database
        self.threshold = threshold
        self.workload_weight = workload_weight
        self.data_weight = data_weight
        self._tracker = DataChangeTracker(database)
        self._changed_paths: Set[str] = set()

    # ------------------------------------------------------------------
    def poll_data_changes(self) -> int:
        """Absorb any pending data change; returns the accumulated
        changed-path count."""
        change = self._tracker.poll()
        if change is not None:
            self._changed_paths.update(change.changed_paths)
        return len(self._changed_paths)

    def data_drift(self) -> float:
        """Changed-path fraction since the last rebase, in [0, 1]."""
        self.poll_data_changes()
        if not self._changed_paths:
            return 0.0
        total_paths = len(self.database.statistics.path_stats)
        if total_paths <= 0:
            return 1.0
        return min(1.0, len(self._changed_paths) / total_paths)

    def assess(self, current: WorkloadSnapshot,
               baseline: Optional[WorkloadSnapshot],
               threshold: Optional[float] = None,
               workload_weight: Optional[float] = None,
               data_weight: Optional[float] = None) -> DriftReport:
        """Score ``current`` traffic against the advised-on ``baseline``.

        The threshold and weights default to the detector's own; callers
        holding them elsewhere (the controller's policy) pass them per
        call so there is a single source of truth for the knobs.
        """
        threshold = self.threshold if threshold is None else threshold
        workload_weight = self.workload_weight \
            if workload_weight is None else workload_weight
        data_weight = self.data_weight if data_weight is None else data_weight
        workload_drift = workload_distance(current, baseline)
        data_drift = self.data_drift()
        total_weight = workload_weight + data_weight
        score = (workload_weight * workload_drift
                 + data_weight * data_drift) / total_weight
        return DriftReport(
            workload_drift=workload_drift,
            data_drift=data_drift,
            score=score,
            threshold=threshold,
            current_templates=len(current.entries),
            baseline_templates=len(baseline.entries)
            if baseline is not None else 0,
            changed_paths=len(self._changed_paths))

    def rebase(self) -> None:
        """Start a fresh data-drift epoch (after a migration): pending
        changes are absorbed and the accumulated path set cleared."""
        self._tracker.poll()
        self._changed_paths.clear()
