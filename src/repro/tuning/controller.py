"""The autonomous tuning loop: drift in, migration plan out.

One :class:`TuningController` owns the whole online pipeline for a
database: it attaches a :class:`~repro.tuning.monitor.WorkloadMonitor`
to the executor, scores drift against the configuration's recorded
provenance each :meth:`run_cycle`, and -- when the policy threshold is
crossed -- re-advises on the compressed captured workload, diffs the
recommendation against the live catalog configuration, and emits an
ordered :class:`MigrationPlan` (drops first, then builds
cheapest-first under the per-cycle build budget).  In dry-run mode the
plan is only reported; otherwise it is applied through the executor
(so physical structures, catalog entries and provenance stay
coherent), and builds deferred by the build budget are resumed on
later cycles before any new advising happens.

Everything the loop decides is a function of (captured workload, data
statistics, policy): time is the monitor's step counter, no wall clock
is read, so two runs over the same traffic produce byte-identical
plans -- the property the online-vs-offline equivalence tests pin
down.  Every cycle appends a :class:`TuningEvent` to the audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.advisor.advisor import Recommendation, XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.contracts import builder, snapshot_contract
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexDefinition
from repro.storage.catalog import ConfigurationProvenance
from repro.storage.document_store import XmlDatabase
from repro.tuning.compressor import (
    DEFAULT_CLUSTER_CAP,
    CompressedWorkload,
    compress_snapshot,
)
from repro.tuning.drift import DriftDetector, DriftReport
from repro.tuning.monitor import (
    DEFAULT_CAPACITY,
    DEFAULT_DECAY,
    WorkloadMonitor,
    WorkloadSnapshot,
)
from repro.xquery.model import NormalizedQuery


@dataclass
class TuningPolicy:
    """Everything the autonomous loop is allowed to decide by."""

    #: Combined drift score at or above which the controller re-advises.
    drift_threshold: float = 0.25
    #: Relative weights of workload vs data drift in the combined score.
    workload_weight: float = 1.0
    data_weight: float = 1.0
    #: Bound on the compressed advisor input (representative queries).
    cluster_cap: int = DEFAULT_CLUSTER_CAP
    #: Templates below this fraction of total captured weight are pruned
    #: from advising snapshots (how superseded traffic finally ages out).
    min_weight_fraction: float = 0.01
    #: Do not advise before this much captured weight exists (a system
    #: with no traffic has nothing to tune for).
    min_captured_weight: float = 1.0
    #: Disk budget handed to the advisor (``None`` = unconstrained).
    disk_budget_bytes: Optional[float] = None
    #: Per-cycle build-cost budget: estimated bytes of index structure
    #: built per cycle (``None`` = build everything at once).  Drops are
    #: always applied -- they free resources.
    build_budget_bytes: Optional[float] = None
    #: Report migration plans without applying them.
    dry_run: bool = False
    #: Monitor sizing (used when the controller creates its own monitor).
    monitor_capacity: int = DEFAULT_CAPACITY
    decay: float = DEFAULT_DECAY

    def validate(self) -> None:
        if self.drift_threshold < 0:
            raise ValueError("drift threshold must be non-negative")
        if self.cluster_cap < 1:
            raise ValueError("cluster_cap must be at least 1")
        if not 0.0 <= self.min_weight_fraction < 1.0:
            raise ValueError("min_weight_fraction must be in [0, 1)")
        if self.build_budget_bytes is not None and self.build_budget_bytes <= 0:
            raise ValueError("build budget must be positive when set")


@snapshot_contract()
@dataclass(frozen=True)
class MigrationStep:
    """One ordered action of a migration plan."""

    action: str  # "build" | "drop"
    definition: IndexDefinition
    #: Estimated structure size -- the build-cost proxy the budget meters.
    size_bytes: float
    reason: str

    def describe(self) -> str:
        return (f"{self.action:5s} {self.definition.name} "
                f"({self.size_bytes / 1024:.1f} KiB): {self.reason}")


@snapshot_contract()
@dataclass
class MigrationPlan:
    """Ordered index drops and builds taking the catalog to the target.

    Snapshot contract: plans are assembled only inside the registered
    builder methods (:meth:`TuningController.plan_migration`,
    :meth:`TuningController._resume_pending`); once returned they are
    read-only.
    """

    #: Steps to run this cycle: all drops first, then budgeted builds.
    steps: List[MigrationStep] = field(default_factory=list)
    #: Builds pushed past the build budget, resumed on later cycles.
    deferred: List[MigrationStep] = field(default_factory=list)
    #: Index keys of the advised target configuration.
    target_keys: frozenset = frozenset()
    #: Index keys physically configured when the plan was computed.
    current_keys: frozenset = frozenset()

    @property
    def drops(self) -> List[MigrationStep]:
        return [step for step in self.steps if step.action == "drop"]

    @property
    def builds(self) -> List[MigrationStep]:
        return [step for step in self.steps if step.action == "build"]

    @property
    def is_empty(self) -> bool:
        return not self.steps and not self.deferred

    def describe(self) -> str:
        if self.is_empty:
            return "migration plan: configuration already matches (no-op)"
        lines = [f"migration plan: {len(self.drops)} drop(s), "
                 f"{len(self.builds)} build(s), {len(self.deferred)} deferred"]
        lines.extend("  " + step.describe() for step in self.steps)
        lines.extend("  (deferred) " + step.describe()
                     for step in self.deferred)
        return "\n".join(lines)


@snapshot_contract()
@dataclass(frozen=True)
class TuningEvent:
    """One audit-trail entry: what a cycle saw and did."""

    cycle: int
    step: int
    action: str  # "idle" | "no-change" | "planned" | "migrated" | "resumed"
    report: Optional[DriftReport] = None
    plan: Optional[MigrationPlan] = None
    recommendation: Optional[Recommendation] = None
    compressed: Optional[CompressedWorkload] = None
    applied: bool = False

    def describe(self) -> str:
        lines = [f"cycle {self.cycle} @step {self.step}: {self.action}"]
        if self.report is not None:
            lines.append("  " + self.report.describe())
        if self.compressed is not None:
            lines.append(f"  advisor input: {self.compressed.captured_templates}"
                         f" template(s) -> {len(self.compressed.clusters)}"
                         f" cluster(s) (cap {self.compressed.cluster_cap})")
        if self.plan is not None:
            lines.extend("  " + line for line in self.plan.describe().splitlines())
        return "\n".join(lines)


class TuningController:
    """Drives the observe -> detect -> advise -> migrate loop.

    Parameters
    ----------
    database:
        The database being tuned.
    executor:
        The executor serving traffic; created if not given.  The
        controller attaches its monitor to it, so ordinary
        ``executor.execute(...)`` calls feed the loop.
    policy:
        Loop policy; :class:`TuningPolicy` defaults otherwise.
    advisor_parameters:
        Advisor session parameters (copied, never mutated); a disk
        budget set on the policy overrides the one set here.  One
        advisor (and therefore one optimizer plan cache and one
        incremental evaluator substrate) lives across cycles.
    """

    def __init__(self, database: XmlDatabase,
                 executor: Optional[QueryExecutor] = None,
                 policy: Optional[TuningPolicy] = None,
                 advisor_parameters: Optional[AdvisorParameters] = None,
                 monitor: Optional[WorkloadMonitor] = None) -> None:
        self.database = database
        self.policy = policy or TuningPolicy()
        self.policy.validate()
        self.executor = executor or QueryExecutor(database)
        self.monitor = monitor or self.executor.monitor or WorkloadMonitor(
            capacity=self.policy.monitor_capacity, decay=self.policy.decay)
        self.executor.attach_monitor(self.monitor)
        parameters = replace(advisor_parameters) \
            if advisor_parameters is not None else AdvisorParameters()
        if self.policy.disk_budget_bytes is not None:
            parameters.disk_budget_bytes = self.policy.disk_budget_bytes
        self.advisor = XmlIndexAdvisor(database, parameters)
        # The drift knobs live on the policy only; the detector is handed
        # them per assessment (see _assess) so a runtime policy change
        # takes effect immediately.
        self.detector = DriftDetector(database)
        #: Audit trail: one event per cycle, in order.
        self.events: List[TuningEvent] = []
        self.cycles = 0
        self._pending: List[MigrationStep] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, queries: Sequence[NormalizedQuery],
                rounds: int = 1, tick: bool = True) -> int:
        """Convenience: execute ``queries`` through the monitored
        executor for ``rounds`` logical steps; returns executions made.

        Production traffic does not need this -- any execution through
        the attached executor is captured -- but replay-style callers
        (the CLI's ``tune`` command, tests, benchmarks) want the
        one-round-per-tick shape in one place.
        """
        executed = 0
        for _ in range(rounds):
            for query in queries:
                if query.is_update:
                    self.monitor.record(query)
                else:
                    self.executor.execute(query)
                executed += 1
            if tick:
                self.monitor.tick()
        return executed

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    @property
    def baseline_snapshot(self) -> Optional[WorkloadSnapshot]:
        """The advised-on snapshot from the catalog's provenance."""
        provenance = self.database.catalog.configuration_provenance
        if provenance is None:
            return None
        snapshot = provenance.workload_snapshot
        return snapshot if isinstance(snapshot, WorkloadSnapshot) else None

    def _assess(self, current: WorkloadSnapshot) -> DriftReport:
        return self.detector.assess(
            current, self.baseline_snapshot,
            threshold=self.policy.drift_threshold,
            workload_weight=self.policy.workload_weight,
            data_weight=self.policy.data_weight)

    def drift_report(self) -> DriftReport:
        """Score current captured traffic against the advised-on state."""
        return self._assess(
            self.monitor.snapshot(self.policy.min_weight_fraction))

    # ------------------------------------------------------------------
    # Advising + planning
    # ------------------------------------------------------------------
    def advise(self, compressed: Optional[CompressedWorkload] = None
               ) -> Recommendation:
        """Run the advisor pipeline on the compressed captured workload."""
        if compressed is None:
            snapshot = self.monitor.snapshot(self.policy.min_weight_fraction)
            compressed = compress_snapshot(snapshot, self.policy.cluster_cap)
        return self.advisor.recommend(compressed)

    @builder
    def plan_migration(self, recommendation: Recommendation) -> MigrationPlan:
        """Diff the recommendation against the live configuration."""
        current = {definition.key: definition
                   for definition in self.database.catalog.physical_indexes}
        target = {definition.key: definition
                  for definition in recommendation.configuration}
        plan = MigrationPlan(target_keys=frozenset(target),
                             current_keys=frozenset(current))
        for key in sorted(current):
            if key not in target:
                plan.steps.append(MigrationStep(
                    action="drop", definition=current[key], size_bytes=0.0,
                    reason="not in the advised configuration"))
        builds: List[MigrationStep] = []
        for key in sorted(target):
            if key in current:
                continue
            size = recommendation.benefit.index_sizes.get(key, 0.0)
            builds.append(MigrationStep(
                action="build", definition=target[key].as_physical(),
                size_bytes=size, reason="advised, not yet configured"))
        # Cheapest-first gets the most structures standing per budget
        # cycle; ties break on the definition key for determinism.
        builds.sort(key=lambda step: (step.size_bytes, step.definition.key))
        taken, deferred = self._meter_builds(builds)
        plan.steps.extend(taken)
        plan.deferred.extend(deferred)
        return plan

    def _meter_builds(self, builds: Sequence[MigrationStep]
                      ) -> Tuple[List[MigrationStep], List[MigrationStep]]:
        """Split ordered build steps into (this cycle, deferred) under
        the policy's per-cycle build budget.

        The first build of a cycle always runs even when it alone
        exceeds the budget -- a structure larger than the whole budget
        must not starve forever.
        """
        budget = self.policy.build_budget_bytes
        taken: List[MigrationStep] = []
        deferred: List[MigrationStep] = []
        spent = 0.0
        for step in builds:
            if budget is None or not taken \
                    or spent + step.size_bytes <= budget:
                taken.append(step)
                spent += step.size_bytes
            else:
                deferred.append(step)
        return taken, deferred

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, plan: MigrationPlan,
              snapshot: Optional[WorkloadSnapshot] = None) -> None:
        """Run ``plan`` through the executor and record provenance.

        Drops remove catalog entries and materialized structures; builds
        register and materialize.  The executor/optimizer plan caches
        stay coherent because plans are keyed to the visible index keys,
        which this changes.
        """
        drops = [step.definition.name for step in plan.drops]
        if drops:
            self.executor.drop_indexes(drops)
        builds = [step.definition for step in plan.builds]
        if builds:
            self.executor.create_indexes(builds)
        self._pending = list(plan.deferred)
        if snapshot is not None:
            self.database.catalog.record_configuration_provenance(
                ConfigurationProvenance(
                    index_keys=tuple(sorted(plan.target_keys)),
                    data_signature=self.database.data_signature(),
                    advised_step=snapshot.step,
                    workload_snapshot=snapshot))
            self.detector.rebase()

    @builder
    def _resume_pending(self) -> Optional[MigrationPlan]:
        """Continue a budget-deferred migration: as many pending builds
        as this cycle's build budget allows."""
        if not self._pending:
            return None
        plan = MigrationPlan(
            target_keys=frozenset(step.definition.key
                                  for step in self._pending),
            current_keys=frozenset(
                definition.key
                for definition in self.database.catalog.physical_indexes))
        taken, deferred = self._meter_builds(self._pending)
        plan.steps.extend(taken)
        plan.deferred.extend(deferred)
        return plan

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_cycle(self) -> TuningEvent:
        """One control-loop iteration; returns the audit event.

        Order: resume any budget-deferred builds first (the previous
        decision is still being executed), then assess drift, then --
        only above threshold and with enough captured traffic --
        advise, plan, and (unless dry-run) migrate.  Under a dry-run
        policy pending builds stay parked (nothing is ever applied), so
        the cycle goes straight to drift assessment instead of wedging
        on a resume that cannot make progress.
        """
        self.cycles += 1
        if not self.policy.dry_run:
            pending = self._resume_pending()
            if pending is not None:
                builds = [step.definition for step in pending.builds]
                if builds:
                    self.executor.create_indexes(builds)
                self._pending = list(pending.deferred)
                event = TuningEvent(cycle=self.cycles,
                                    step=self.monitor.step,
                                    action="resumed", plan=pending,
                                    applied=True)
                self.events.append(event)
                return event

        snapshot = self.monitor.snapshot(self.policy.min_weight_fraction)
        report = self._assess(snapshot)
        if not report.exceeded \
                or snapshot.total_weight < self.policy.min_captured_weight:
            event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                                action="idle", report=report)
            self.events.append(event)
            return event

        compressed = compress_snapshot(snapshot, self.policy.cluster_cap)
        recommendation = self.advise(compressed)
        plan = self.plan_migration(recommendation)
        if plan.is_empty:
            # Re-advising confirmed the live configuration; rebase the
            # provenance so the same drift does not re-trigger forever.
            if not self.policy.dry_run:
                self.apply(plan, snapshot)
            event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                                action="no-change", report=report, plan=plan,
                                recommendation=recommendation,
                                compressed=compressed,
                                applied=not self.policy.dry_run)
            self.events.append(event)
            return event

        applied = False
        if not self.policy.dry_run:
            self.apply(plan, snapshot)
            applied = True
        event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                            action="migrated" if applied else "planned",
                            report=report, plan=plan,
                            recommendation=recommendation,
                            compressed=compressed, applied=applied)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def audit_trail(self) -> str:
        """The full, human-readable event history."""
        if not self.events:
            return "no tuning cycles have run"
        return "\n".join(event.describe() for event in self.events)

    @property
    def live_configuration_keys(self) -> frozenset:
        return frozenset(definition.key for definition
                         in self.database.catalog.physical_indexes)
