"""The autonomous tuning loop: drift in, migration plan out.

One :class:`TuningController` owns the whole online pipeline for a
database: it attaches a :class:`~repro.tuning.monitor.WorkloadMonitor`
to the executor, scores drift against the configuration's recorded
provenance each :meth:`run_cycle`, and -- when the policy threshold is
crossed -- re-advises on the compressed captured workload, diffs the
recommendation against the live catalog configuration, and emits an
ordered :class:`MigrationPlan` (drops first, then builds
cheapest-first under the per-cycle build budget).  In dry-run mode the
plan is only reported; otherwise it is applied through the executor
(so physical structures, catalog entries and provenance stay
coherent), and builds deferred by the build budget are resumed on
later cycles before any new advising happens.

Everything the loop decides is a function of (captured workload, data
statistics, policy): time is the monitor's step counter, no wall clock
is read, so two runs over the same traffic produce byte-identical
plans -- the property the online-vs-offline equivalence tests pin
down.  Every cycle appends a :class:`TuningEvent` to the audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.advisor.advisor import Recommendation, XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.contracts import builder, snapshot_contract
from repro.executor.executor import QueryExecutor, RemovedIndex
from repro.faults import RobustnessReport, active_injector, guarded_fault_point
from repro.index.definition import IndexDefinition
from repro.index.physical import PhysicalPathIndex
from repro.storage.catalog import (
    BuildFailureRecord,
    ConfigurationProvenance,
    PendingBuild,
)
from repro.storage.document_store import XmlDatabase
from repro.telemetry import CacheStatistics, MetricsRegistry, global_registry
from repro.tuning.compressor import (
    DEFAULT_CLUSTER_CAP,
    CompressedWorkload,
    compress_snapshot,
)
from repro.tuning.drift import DriftDetector, DriftReport
from repro.tuning.monitor import (
    DEFAULT_CAPACITY,
    DEFAULT_DECAY,
    WorkloadMonitor,
    WorkloadSnapshot,
)
from repro.xquery.model import NormalizedQuery


@dataclass
class TuningPolicy:
    """Everything the autonomous loop is allowed to decide by."""

    #: Combined drift score at or above which the controller re-advises.
    drift_threshold: float = 0.25
    #: Relative weights of workload vs data drift in the combined score.
    workload_weight: float = 1.0
    data_weight: float = 1.0
    #: Bound on the compressed advisor input (representative queries).
    cluster_cap: int = DEFAULT_CLUSTER_CAP
    #: Templates below this fraction of total captured weight are pruned
    #: from advising snapshots (how superseded traffic finally ages out).
    min_weight_fraction: float = 0.01
    #: Do not advise before this much captured weight exists (a system
    #: with no traffic has nothing to tune for).
    min_captured_weight: float = 1.0
    #: Disk budget handed to the advisor (``None`` = unconstrained).
    disk_budget_bytes: Optional[float] = None
    #: Per-cycle build-cost budget: estimated bytes of index structure
    #: built per cycle (``None`` = build everything at once).  Drops are
    #: always applied -- they free resources.
    build_budget_bytes: Optional[float] = None
    #: Report migration plans without applying them.
    dry_run: bool = False
    #: Monitor sizing (used when the controller creates its own monitor).
    monitor_capacity: int = DEFAULT_CAPACITY
    decay: float = DEFAULT_DECAY
    #: Bounded retry of failed index builds: a definition is retried
    #: with exponential logical-step backoff (``retry_backoff_steps *
    #: 2**(attempts-1)`` monitor steps, capped at ``retry_backoff_cap``)
    #: and quarantined after ``max_build_attempts`` failures so advising
    #: stops re-planning the same poison index.
    max_build_attempts: int = 3
    retry_backoff_steps: int = 2
    retry_backoff_cap: int = 32

    def validate(self) -> None:
        if self.drift_threshold < 0:
            raise ValueError("drift threshold must be non-negative")
        if self.workload_weight < 0 or self.data_weight < 0:
            raise ValueError("drift weights must be non-negative")
        if self.workload_weight == 0 and self.data_weight == 0:
            raise ValueError("at least one drift weight must be positive")
        if self.cluster_cap < 1:
            raise ValueError("cluster_cap must be at least 1")
        if not 0.0 <= self.min_weight_fraction < 1.0:
            raise ValueError("min_weight_fraction must be in [0, 1)")
        if self.min_captured_weight < 0:
            raise ValueError("min_captured_weight must be non-negative")
        if self.disk_budget_bytes is not None and self.disk_budget_bytes <= 0:
            raise ValueError("disk budget must be positive when set")
        if self.build_budget_bytes is not None and self.build_budget_bytes <= 0:
            raise ValueError("build budget must be positive when set")
        if self.monitor_capacity < 1:
            raise ValueError("monitor_capacity must be at least 1")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.max_build_attempts < 1:
            raise ValueError("max_build_attempts must be at least 1")
        if self.retry_backoff_steps < 1:
            raise ValueError("retry_backoff_steps must be at least 1")
        if self.retry_backoff_cap < 1:
            raise ValueError("retry_backoff_cap must be at least 1")


@snapshot_contract()
@dataclass(frozen=True)
class MigrationStep:
    """One ordered action of a migration plan."""

    action: str  # "build" | "drop"
    definition: IndexDefinition
    #: Estimated structure size -- the build-cost proxy the budget meters.
    size_bytes: float
    reason: str

    def describe(self) -> str:
        return (f"{self.action:5s} {self.definition.name} "
                f"({self.size_bytes / 1024:.1f} KiB): {self.reason}")


@snapshot_contract()
@dataclass
class MigrationPlan:
    """Ordered index drops and builds taking the catalog to the target.

    Snapshot contract: plans are assembled only inside the registered
    builder methods (:meth:`TuningController.plan_migration`,
    :meth:`TuningController._resume_pending`); once returned they are
    read-only.
    """

    #: Steps to run this cycle: all drops first, then budgeted builds.
    steps: List[MigrationStep] = field(default_factory=list)
    #: Builds pushed past the build budget, resumed on later cycles.
    deferred: List[MigrationStep] = field(default_factory=list)
    #: Index keys of the advised target configuration.
    target_keys: frozenset = frozenset()
    #: Index keys physically configured when the plan was computed.
    current_keys: frozenset = frozenset()
    #: Advised keys excluded because their definitions are quarantined.
    quarantined_keys: frozenset = frozenset()

    @property
    def drops(self) -> List[MigrationStep]:
        return [step for step in self.steps if step.action == "drop"]

    @property
    def builds(self) -> List[MigrationStep]:
        return [step for step in self.steps if step.action == "build"]

    @property
    def is_empty(self) -> bool:
        return not self.steps and not self.deferred

    def describe(self) -> str:
        if self.is_empty:
            return "migration plan: configuration already matches (no-op)"
        lines = [f"migration plan: {len(self.drops)} drop(s), "
                 f"{len(self.builds)} build(s), {len(self.deferred)} deferred"]
        lines.extend("  " + step.describe() for step in self.steps)
        lines.extend("  (deferred) " + step.describe()
                     for step in self.deferred)
        lines.extend(f"  (quarantined, excluded) {key}"
                     for key in sorted(self.quarantined_keys))
        return "\n".join(lines)


@snapshot_contract()
@dataclass(frozen=True)
class MigrationOutcome:
    """What one :meth:`TuningController.apply` call actually did."""

    committed: bool
    rolled_back: bool = False
    built: Tuple[str, ...] = ()
    dropped: Tuple[str, ...] = ()
    #: Key of the definition whose build failed (rollback cause).
    failed_key: Optional[Tuple[str, str]] = None
    #: The failed definition crossed ``max_build_attempts`` and was
    #: quarantined.
    quarantined: bool = False
    error: Optional[str] = None


@snapshot_contract()
@dataclass(frozen=True)
class TuningEvent:
    """One audit-trail entry: what a cycle saw and did."""

    cycle: int
    step: int
    #: "idle" | "no-change" | "planned" | "migrated" | "resumed"
    #: | "rolled-back" (a plan failed and was undone)
    #: | "aborted" (the cycle itself failed; the loop survives)
    action: str
    report: Optional[DriftReport] = None
    plan: Optional[MigrationPlan] = None
    recommendation: Optional[Recommendation] = None
    compressed: Optional[CompressedWorkload] = None
    applied: bool = False
    error: Optional[str] = None
    #: Containment activity visible at the end of this cycle.
    robustness: Optional[RobustnessReport] = None
    #: Plan-cache / evaluator-memo hit ratios when the cycle ended.
    cache_stats: Optional[CacheStatistics] = None

    def describe(self) -> str:
        lines = [f"cycle {self.cycle} @step {self.step}: {self.action}"]
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        if self.report is not None:
            lines.append("  " + self.report.describe())
        if self.compressed is not None:
            lines.append(f"  advisor input: {self.compressed.captured_templates}"
                         f" template(s) -> {len(self.compressed.clusters)}"
                         f" cluster(s) (cap {self.compressed.cluster_cap})")
        if self.plan is not None:
            lines.extend("  " + line for line in self.plan.describe().splitlines())
        if self.robustness is not None and not self.robustness.is_clean:
            lines.extend("  " + line
                         for line in self.robustness.describe().splitlines())
        if self.cache_stats is not None:
            lines.append("  " + self.cache_stats.describe())
        return "\n".join(lines)


class TuningController:
    """Drives the observe -> detect -> advise -> migrate loop.

    Parameters
    ----------
    database:
        The database being tuned.
    executor:
        The executor serving traffic; created if not given.  The
        controller attaches its monitor to it, so ordinary
        ``executor.execute(...)`` calls feed the loop.
    policy:
        Loop policy; :class:`TuningPolicy` defaults otherwise.
    advisor_parameters:
        Advisor session parameters (copied, never mutated); a disk
        budget set on the policy overrides the one set here.  One
        advisor (and therefore one optimizer plan cache and one
        incremental evaluator substrate) lives across cycles.
    """

    def __init__(self, database: XmlDatabase,
                 executor: Optional[QueryExecutor] = None,
                 policy: Optional[TuningPolicy] = None,
                 advisor_parameters: Optional[AdvisorParameters] = None,
                 monitor: Optional[WorkloadMonitor] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.database = database
        self.policy = policy or TuningPolicy()
        self.policy.validate()
        #: Loop-level metrics; the advisor (and an executor the
        #: controller creates itself) chain their registries here.
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        self._m_migrations_applied = self.metrics.counter(
            "tuning.migration.applied")
        self._m_migrations_rolled_back = self.metrics.counter(
            "tuning.migration.rolled_back")
        self.executor = executor or QueryExecutor(database,
                                                  registry=self.metrics)
        self.monitor = monitor or self.executor.monitor or WorkloadMonitor(
            capacity=self.policy.monitor_capacity, decay=self.policy.decay,
            registry=self.metrics)
        self.executor.attach_monitor(self.monitor)
        parameters = replace(advisor_parameters) \
            if advisor_parameters is not None else AdvisorParameters()
        if self.policy.disk_budget_bytes is not None:
            parameters.disk_budget_bytes = self.policy.disk_budget_bytes
        self.advisor = XmlIndexAdvisor(database, parameters,
                                       registry=self.metrics)
        # The drift knobs live on the policy only; the detector is handed
        # them per assessment (see _assess) so a runtime policy change
        # takes effect immediately.
        self.detector = DriftDetector(database)
        #: Audit trail: one event per cycle, in order.
        self.events: List[TuningEvent] = []
        self.cycles = 0
        #: Containment counters for the robustness report.
        self.build_failures = 0
        self.rollbacks = 0

    @property
    def _pending(self) -> List[PendingBuild]:
        """Builds still owed (deferred or parked by a rollback) -- read
        from the catalog, so the state survives controller restarts."""
        return self.database.catalog.pending_builds

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, queries: Sequence[NormalizedQuery],
                rounds: int = 1, tick: bool = True) -> int:
        """Convenience: execute ``queries`` through the monitored
        executor for ``rounds`` logical steps; returns executions made.

        Production traffic does not need this -- any execution through
        the attached executor is captured -- but replay-style callers
        (the CLI's ``tune`` command, tests, benchmarks) want the
        one-round-per-tick shape in one place.
        """
        executed = 0
        for _ in range(rounds):
            for query in queries:
                if query.is_update:
                    self.monitor.record(query)
                else:
                    self.executor.execute(query)
                executed += 1
            if tick:
                self.monitor.tick()
        return executed

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    @property
    def baseline_snapshot(self) -> Optional[WorkloadSnapshot]:
        """The advised-on snapshot from the catalog's provenance."""
        provenance = self.database.catalog.configuration_provenance
        if provenance is None:
            return None
        snapshot = provenance.workload_snapshot
        return snapshot if isinstance(snapshot, WorkloadSnapshot) else None

    def _assess(self, current: WorkloadSnapshot) -> DriftReport:
        return self.detector.assess(
            current, self.baseline_snapshot,
            threshold=self.policy.drift_threshold,
            workload_weight=self.policy.workload_weight,
            data_weight=self.policy.data_weight)

    def drift_report(self) -> DriftReport:
        """Score current captured traffic against the advised-on state."""
        return self._assess(
            self.monitor.snapshot(self.policy.min_weight_fraction))

    # ------------------------------------------------------------------
    # Advising + planning
    # ------------------------------------------------------------------
    def advise(self, compressed: Optional[CompressedWorkload] = None
               ) -> Recommendation:
        """Run the advisor pipeline on the compressed captured workload."""
        if compressed is None:
            snapshot = self.monitor.snapshot(self.policy.min_weight_fraction)
            compressed = compress_snapshot(snapshot, self.policy.cluster_cap)
        excluded = self.database.catalog.quarantined_keys
        return self.advisor.recommend(
            compressed,
            excluded_keys=frozenset(excluded) if excluded else None)

    @builder
    def plan_migration(self, recommendation: Recommendation) -> MigrationPlan:
        """Diff the recommendation against the live configuration."""
        catalog = self.database.catalog
        current = {definition.key: definition
                   for definition in catalog.physical_indexes}
        target = {definition.key: definition
                  for definition in recommendation.configuration}
        # Quarantined definitions are excluded from advising already;
        # filtering here too keeps directly-supplied recommendations
        # (and older provenance) from re-planning a poison index.
        quarantined = frozenset(key for key in target
                                if catalog.is_quarantined(key))
        plan = MigrationPlan(target_keys=frozenset(target) - quarantined,
                             current_keys=frozenset(current),
                             quarantined_keys=quarantined)
        for key in sorted(current):
            if key not in target:
                plan.steps.append(MigrationStep(
                    action="drop", definition=current[key], size_bytes=0.0,
                    reason="not in the advised configuration"))
        builds: List[MigrationStep] = []
        for key in sorted(target):
            if key in current or key in quarantined:
                continue
            size = recommendation.benefit.index_sizes.get(key, 0.0)
            step = MigrationStep(
                action="build", definition=target[key].as_physical(),
                size_bytes=size, reason="advised, not yet configured")
            failure = catalog.build_failure(key)
            if failure is not None \
                    and failure.next_retry_step > self.monitor.step:
                # Still backing off after a failed build: park it in the
                # deferred list instead of retrying this cycle.
                plan.deferred.append(MigrationStep(
                    action="build", definition=step.definition,
                    size_bytes=size,
                    reason=f"backing off until step {failure.next_retry_step}"))
                continue
            builds.append(step)
        # Cheapest-first gets the most structures standing per budget
        # cycle; ties break on the definition key for determinism.
        builds.sort(key=lambda step: (step.size_bytes, step.definition.key))
        base_spent = 0.0
        if builds and not current:
            # First materialization from an empty configuration also
            # encodes the collections' columnar stores (index builds
            # lower onto them); the planning model charges that
            # footprint against the cycle's build budget regardless of
            # the executor's engine hatches, the same way the cost
            # model prices both modes identically.
            base_spent = float(self.database.statistics.columnar_bytes)
        taken, deferred = self._meter_builds(builds, base_spent=base_spent)
        plan.steps.extend(taken)
        plan.deferred.extend(deferred)
        return plan

    def _meter_builds(self, builds: Sequence[MigrationStep],
                      base_spent: float = 0.0
                      ) -> Tuple[List[MigrationStep], List[MigrationStep]]:
        """Split ordered build steps into (this cycle, deferred) under
        the policy's per-cycle build budget.

        ``base_spent`` is build work already owed this cycle before any
        index structure (the columnar encoding of a first
        materialization, estimated from the statistics synopsis --
        :attr:`~repro.storage.statistics.DatabaseStatistics.columnar_bytes`).
        The first build of a cycle always runs even when it alone (or
        the base charge) exceeds the budget -- a structure larger than
        the whole budget must not starve forever.
        """
        budget = self.policy.build_budget_bytes
        taken: List[MigrationStep] = []
        deferred: List[MigrationStep] = []
        spent = base_spent
        for step in builds:
            if budget is None or not taken \
                    or spent + step.size_bytes <= budget:
                taken.append(step)
                spent += step.size_bytes
            else:
                deferred.append(step)
        return taken, deferred

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, plan: MigrationPlan,
              snapshot: Optional[WorkloadSnapshot] = None) -> MigrationOutcome:
        """Apply ``plan`` transactionally and record provenance.

        Every build is *staged* first (materialized without touching the
        catalog); any staging failure rolls the whole plan back -- the
        pre-plan configuration is untouched, the failure is recorded for
        bounded logical-step backoff, and a definition that keeps
        failing is quarantined.  Only past the commit point are drops
        executed (with an undo log, so a failing drop also rolls back)
        and staged structures installed; the install half is pure dict
        inserts and cannot fail.  The executor/optimizer plan caches
        stay coherent because plans are keyed to the visible index keys,
        which this changes.
        """
        catalog = self.database.catalog
        now = self.monitor.step
        staged: List[Tuple[MigrationStep, PhysicalPathIndex]] = []
        for step in plan.builds:
            try:
                structure = self.executor.build_index_structure(step.definition)
            except Exception as exc:  # noqa: BLE001 -- containment: rollback
                self.build_failures += 1
                self.rollbacks += 1
                self._m_migrations_rolled_back.inc()
                quarantined = self._note_build_failure(step, exc, now)
                self._park_pending(plan)
                return MigrationOutcome(
                    committed=False, rolled_back=True,
                    failed_key=step.definition.key, quarantined=quarantined,
                    error=f"build of {step.definition.name!r} failed: {exc}")
            staged.append((step, structure))
        removed: List[RemovedIndex] = []
        try:
            # The commit point: a persistent fault aborts the plan here,
            # before any catalog mutation.
            guarded_fault_point("migration.commit")
            for step in plan.drops:
                record = self.executor.remove_index(step.definition.name)
                if record is not None:
                    removed.append(record)
        except Exception as exc:  # noqa: BLE001 -- containment: rollback
            for record in reversed(removed):
                self.executor.restore_index(record)
            self.rollbacks += 1
            self._m_migrations_rolled_back.inc()
            self._park_pending(plan)
            return MigrationOutcome(committed=False, rolled_back=True,
                                    error=f"migration commit failed: {exc}")
        # Past the point of no return: pure installs.
        for step, structure in staged:
            self.executor.install_index(step.definition, structure)
            catalog.clear_build_failure(step.definition.key)
            catalog.clear_pending_build(step.definition.key)
        catalog.record_pending_builds(
            PendingBuild(definition=step.definition,
                         size_bytes=step.size_bytes, reason=step.reason)
            for step in plan.deferred)
        if snapshot is not None:
            catalog.record_configuration_provenance(
                ConfigurationProvenance(
                    index_keys=tuple(sorted(plan.target_keys)),
                    data_signature=self.database.data_signature(),
                    advised_step=snapshot.step,
                    workload_snapshot=snapshot))
            self.detector.rebase()
        if not plan.is_empty:
            self._m_migrations_applied.inc()
        return MigrationOutcome(
            committed=True,
            built=tuple(step.definition.name for step, _ in staged),
            dropped=tuple(record.definition.name for record in removed))

    def _note_build_failure(self, step: MigrationStep, exc: Exception,
                            now: int) -> bool:
        """Record one failed build; returns True when the definition
        crossed the attempt bound and was quarantined."""
        catalog = self.database.catalog
        key = step.definition.key
        previous = catalog.build_failure(key)
        attempts = (previous.attempts if previous is not None else 0) + 1
        if attempts >= self.policy.max_build_attempts:
            catalog.quarantine_index(
                step.definition,
                f"build failed {attempts} time(s); last error: {exc}")
            return True
        backoff = min(self.policy.retry_backoff_steps * (2 ** (attempts - 1)),
                      self.policy.retry_backoff_cap)
        catalog.record_build_failure(BuildFailureRecord(
            definition=step.definition, attempts=attempts,
            next_retry_step=now + backoff, last_error=str(exc)))
        return False

    def _park_pending(self, plan: MigrationPlan) -> None:
        """After a rollback, record the plan's unbuilt builds as the
        catalog's pending set so later cycles (or a fresh controller)
        retry them -- minus anything built or quarantined meanwhile."""
        catalog = self.database.catalog
        current = {definition.key
                   for definition in catalog.physical_indexes}
        records = []
        for step in list(plan.builds) + list(plan.deferred):
            key = step.definition.key
            if key in current or catalog.is_quarantined(key):
                continue
            records.append(PendingBuild(
                definition=step.definition, size_bytes=step.size_bytes,
                reason="parked by rolled-back plan"))
        catalog.record_pending_builds(records)

    @builder
    def _resume_pending(self) -> Optional[MigrationPlan]:
        """Continue pending builds recorded in the catalog (deferred by
        budget, or parked by a rollback), as many as this cycle's build
        budget allows.

        Idempotent across controller restarts: the pending set lives in
        the catalog, so a fresh controller on the same database picks it
        up, and records already satisfied (built, or quarantined
        meanwhile) are cleared rather than re-applied.  Returns ``None``
        when nothing is ready (no pending work, or all of it still
        backing off after failed builds).
        """
        catalog = self.database.catalog
        pending = catalog.pending_builds
        if not pending:
            return None
        current = {definition.key
                   for definition in catalog.physical_indexes}
        ready: List[MigrationStep] = []
        backing_off: List[MigrationStep] = []
        for record in pending:
            key = record.key
            if key in current or catalog.is_quarantined(key):
                catalog.clear_pending_build(key)
                continue
            failure = catalog.build_failure(key)
            if failure is not None \
                    and failure.next_retry_step > self.monitor.step:
                backing_off.append(MigrationStep(
                    action="build", definition=record.definition.as_physical(),
                    size_bytes=record.size_bytes,
                    reason=f"backing off until step {failure.next_retry_step}"))
                continue
            ready.append(MigrationStep(
                action="build", definition=record.definition.as_physical(),
                size_bytes=record.size_bytes,
                reason=record.reason or "resumed pending build"))
        if not ready:
            # Nothing actionable this cycle; keep the records parked and
            # let the cycle proceed to drift assessment.
            return None
        ready.sort(key=lambda step: (step.size_bytes, step.definition.key))
        plan = MigrationPlan(
            target_keys=frozenset(step.definition.key
                                  for step in ready + backing_off),
            current_keys=frozenset(current))
        taken, deferred = self._meter_builds(ready)
        plan.steps.extend(taken)
        plan.deferred.extend(deferred)
        plan.deferred.extend(backing_off)
        return plan

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_cycle(self) -> TuningEvent:
        """One control-loop iteration; returns the audit event.

        Order: repair any unusable indexes and resume any pending builds
        first (the previous decision is still being executed), then
        assess drift, then -- only above threshold and with enough
        captured traffic -- advise, plan, and (unless dry-run) migrate.
        Under a dry-run policy pending builds stay parked (nothing is
        ever applied), so the cycle goes straight to drift assessment
        instead of wedging on a resume that cannot make progress.

        The loop is self-contained: any failure inside a cycle --
        injected or real -- is recorded as an ``aborted`` audit event
        instead of killing the autonomous loop.
        """
        self.cycles += 1
        try:
            return self._run_cycle_inner()
        except Exception as exc:  # noqa: BLE001 -- the loop must survive
            event = TuningEvent(cycle=self.cycles, step=self.monitor.step,
                                action="aborted", error=str(exc),
                                robustness=self.robustness_report(),
                                cache_stats=self.cache_statistics())
            self.events.append(event)
            return event

    def _run_cycle_inner(self) -> TuningEvent:
        if not self.policy.dry_run:
            if self.database.catalog.unusable_indexes:
                # Heal degraded structures before planning against them.
                self.executor.repair_indexes()
            pending = self._resume_pending()
            if pending is not None:
                outcome = self.apply(pending)
                event = TuningEvent(
                    cycle=self.cycles, step=self.monitor.step,
                    action="resumed" if outcome.committed else "rolled-back",
                    plan=pending, applied=outcome.committed,
                    error=outcome.error,
                    robustness=self.robustness_report(),
                    cache_stats=self.cache_statistics())
                self.events.append(event)
                return event

        snapshot = self.monitor.snapshot(self.policy.min_weight_fraction)
        report = self._assess(snapshot)
        if not report.exceeded \
                or snapshot.total_weight < self.policy.min_captured_weight:
            event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                                action="idle", report=report,
                                cache_stats=self.cache_statistics())
            self.events.append(event)
            return event

        compressed = compress_snapshot(snapshot, self.policy.cluster_cap)
        recommendation = self.advise(compressed)
        plan = self.plan_migration(recommendation)
        if plan.is_empty:
            # Re-advising confirmed the live configuration; rebase the
            # provenance so the same drift does not re-trigger forever.
            if not self.policy.dry_run:
                self.apply(plan, snapshot)
            event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                                action="no-change", report=report, plan=plan,
                                recommendation=recommendation,
                                compressed=compressed,
                                applied=not self.policy.dry_run,
                                cache_stats=self.cache_statistics())
            self.events.append(event)
            return event

        if self.policy.dry_run:
            event = TuningEvent(cycle=self.cycles, step=snapshot.step,
                                action="planned", report=report, plan=plan,
                                recommendation=recommendation,
                                compressed=compressed, applied=False,
                                cache_stats=self.cache_statistics())
            self.events.append(event)
            return event

        outcome = self.apply(plan, snapshot)
        event = TuningEvent(
            cycle=self.cycles, step=snapshot.step,
            action="migrated" if outcome.committed else "rolled-back",
            report=report, plan=plan, recommendation=recommendation,
            compressed=compressed, applied=outcome.committed,
            error=outcome.error, robustness=self.robustness_report(),
            cache_stats=self.cache_statistics())
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Cache observability
    # ------------------------------------------------------------------
    def cache_statistics(self) -> CacheStatistics:
        """Plan-cache and evaluator-memo hit/miss totals right now.

        Plan-cache counters come from both optimizers the loop drives
        (the executor's and the advisor's -- they are distinct caches);
        memo counters come from the advisor's registry, where every
        evaluator the advisor builds rolls its counters up.  Reading
        them never touches the caches themselves.
        """
        executor_opt = self.executor.optimizer
        advisor_opt = self.advisor.optimizer
        plan_hits = executor_opt.plan_cache_hits
        plan_misses = executor_opt.plan_cache_misses
        if advisor_opt is not executor_opt:
            plan_hits += advisor_opt.plan_cache_hits
            plan_misses += advisor_opt.plan_cache_misses
        return CacheStatistics(
            plan_cache_hits=plan_hits,
            plan_cache_misses=plan_misses,
            memo_hits=int(self.advisor.metrics.value("evaluator.memo.hits")),
            memo_misses=int(
                self.advisor.metrics.value("evaluator.memo.misses")))

    # ------------------------------------------------------------------
    # Robustness
    # ------------------------------------------------------------------
    def robustness_report(self) -> RobustnessReport:
        """Assemble the containment picture for the audit trail: what
        the fault harness injected, what the seams absorbed, and what
        the rollback/fallback/quarantine machinery did about the rest."""
        injector = active_injector()
        catalog = self.database.catalog
        quarantined = tuple(
            f"{key[0]} [{key[1]}]: {catalog.quarantine_reason(key)}"
            for key in catalog.quarantined_keys)
        unusable = tuple(f"{name}: {reason}" for name, reason
                         in sorted(catalog.unusable_indexes.items()))
        return RobustnessReport(
            faults_injected=injector.summary() if injector is not None else (),
            seam_retries=injector.absorbed_total if injector is not None else 0,
            build_failures=self.build_failures,
            rollbacks=self.rollbacks,
            fallbacks=tuple(self.executor.fallback_events),
            quarantined=quarantined,
            unusable=unusable)

    # ------------------------------------------------------------------
    def audit_trail(self) -> str:
        """The full, human-readable event history."""
        if not self.events:
            return "no tuning cycles have run"
        return "\n".join(event.describe() for event in self.events)

    @property
    def live_configuration_keys(self) -> frozenset:
        return frozenset(definition.key for definition
                         in self.database.catalog.physical_indexes)
