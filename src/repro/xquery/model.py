"""The workload model and the normalized query form.

A *workload* is a weighted list of statements (queries and updates), as
the DBA would hand to the advisor.  Each statement is lowered by the
front ends to a :class:`NormalizedQuery`:

* ``predicates`` -- the indexable path predicates, each an absolute
  simple path spine plus an optional comparison.  These are exactly the
  things an XML pattern index can help with, so they are what the
  optimizer's index matching and the advisor's candidate enumeration
  consume.
* ``extraction_paths`` -- paths that are navigated only to construct the
  result.  They contribute navigation cost but no index opportunity.
* update statements carry the paths they touch so the advisor can charge
  index maintenance cost for indexes whose patterns overlap them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.xpath.ast import BinaryOp, LocationPath
from repro.xpath.patterns import PathPattern
from repro.xquery.errors import WorkloadError


class QueryLanguage(enum.Enum):
    """The surface language of a workload statement."""

    XQUERY = "xquery"
    SQLXML = "sql/xml"
    XPATH = "xpath"


class ValueType(enum.Enum):
    """SQL type an XML pattern index is declared over.

    Mirrors DB2's ``GENERATE KEY USING XMLPATTERN ... AS SQL <type>``.
    The advisor picks the type from the literals the workload compares
    against: numeric comparisons want a DOUBLE index, everything else a
    VARCHAR index.
    """

    VARCHAR = "VARCHAR"
    DOUBLE = "DOUBLE"


class UpdateKind(enum.Enum):
    """Kinds of data-modification statements the workload can contain."""

    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class PathPredicate:
    """An indexable predicate: an absolute path plus an optional comparison.

    Attributes
    ----------
    pattern:
        The predicate's path spine as an index pattern (absolute, linear,
        predicate-free), e.g. ``/site/regions/africa/item/quantity``.
    op:
        Comparison operator, or ``None`` for a pure existence test.
    value:
        The literal compared against (string or float), when ``op`` is set.
    value_type:
        The index value type this predicate wants (DOUBLE for numeric
        comparisons, VARCHAR otherwise).
    selectivity_hint:
        Optional externally supplied selectivity (used by synthetic
        workloads); ``None`` means "estimate from statistics".
    """

    pattern: PathPattern
    op: Optional[BinaryOp] = None
    value: Optional[Union[str, float]] = None
    value_type: ValueType = ValueType.VARCHAR
    selectivity_hint: Optional[float] = None

    @property
    def is_equality(self) -> bool:
        return self.op is BinaryOp.EQ

    @property
    def is_range(self) -> bool:
        return self.op is not None and self.op.is_range

    @property
    def is_existence(self) -> bool:
        return self.op is None

    def describe(self) -> str:
        """Readable one-line rendering used in explain output and reports."""
        text = self.pattern.to_text()
        if self.op is None:
            return text
        value = self.value
        if isinstance(value, float) and value == int(value):
            value = int(value)
        return f"{text} {self.op.value} {value!r}"


@dataclass
class NormalizedQuery:
    """A workload statement lowered to the internal form."""

    query_id: str
    text: str
    language: QueryLanguage
    predicates: List[PathPredicate] = field(default_factory=list)
    extraction_paths: List[PathPattern] = field(default_factory=list)
    frequency: float = 1.0
    is_update: bool = False
    update_kind: Optional[UpdateKind] = None
    #: For updates: the simple-path subtrees touched by the modification.
    touched_patterns: List[PathPattern] = field(default_factory=list)

    @property
    def indexable_predicates(self) -> List[PathPredicate]:
        """Predicates that an XML pattern index could answer."""
        return list(self.predicates)

    def all_patterns(self) -> List[PathPattern]:
        """Every pattern the statement mentions (predicates + extraction)."""
        return [p.pattern for p in self.predicates] + list(self.extraction_paths)

    def routing_patterns(self) -> List[PathPattern]:
        """The patterns that decide which collections this statement can
        touch (the structural routing set).

        A read query with predicates only matches documents where *every*
        predicate path exists, so its predicates route it; a pure
        navigation query routes by its extraction paths; an update routes
        by the subtrees it touches (plus any predicates).
        """
        if self.is_update:
            return list(self.touched_patterns) + [p.pattern for p in self.predicates]
        if self.predicates:
            return [p.pattern for p in self.predicates]
        return list(self.extraction_paths)


@dataclass
class WorkloadStatement:
    """A raw workload entry as supplied by the user/DBA."""

    text: str
    frequency: float = 1.0
    language: Optional[QueryLanguage] = None
    statement_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise WorkloadError(
                f"statement frequency must be positive, got {self.frequency}")


class Workload:
    """An ordered collection of workload statements with frequencies.

    The workload is what the advisor tunes for: query frequencies weight
    estimated benefits, and update frequencies weight index maintenance
    costs.
    """

    def __init__(self, statements: Optional[Iterable[WorkloadStatement]] = None,
                 name: str = "workload") -> None:
        self.name = name
        self._statements: List[WorkloadStatement] = []
        if statements:
            for statement in statements:
                self.add(statement)

    # ------------------------------------------------------------------
    def add(self, statement: Union[WorkloadStatement, str],
            frequency: float = 1.0,
            language: Optional[QueryLanguage] = None) -> WorkloadStatement:
        """Add a statement (object or raw text) and return the stored entry."""
        if isinstance(statement, str):
            statement = WorkloadStatement(text=statement, frequency=frequency,
                                          language=language)
        if statement.statement_id is None:
            statement.statement_id = f"{self.name}-q{len(self._statements) + 1}"
        self._statements.append(statement)
        return statement

    def extend(self, statements: Iterable[Union[WorkloadStatement, str]]) -> None:
        for statement in statements:
            self.add(statement)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._statements)

    def __iter__(self) -> Iterator[WorkloadStatement]:
        return iter(self._statements)

    def __getitem__(self, index: int) -> WorkloadStatement:
        return self._statements[index]

    @property
    def statements(self) -> List[WorkloadStatement]:
        return list(self._statements)

    @property
    def total_frequency(self) -> float:
        return sum(s.frequency for s in self._statements)

    def scaled(self, factor: float) -> "Workload":
        """Return a copy with every frequency multiplied by ``factor``."""
        copy = Workload(name=self.name)
        for statement in self._statements:
            copy.add(WorkloadStatement(text=statement.text,
                                       frequency=statement.frequency * factor,
                                       language=statement.language,
                                       statement_id=statement.statement_id))
        return copy

    def merged_with(self, other: "Workload", name: Optional[str] = None) -> "Workload":
        """Return a new workload containing the statements of both."""
        merged = Workload(name=name or f"{self.name}+{other.name}")
        for statement in list(self._statements) + list(other.statements):
            merged.add(WorkloadStatement(text=statement.text,
                                         frequency=statement.frequency,
                                         language=statement.language))
        return merged

    def describe(self) -> str:
        """A short human-readable summary of the workload composition."""
        queries = sum(1 for s in self._statements
                      if not s.text.strip().lower().startswith(("insert", "delete", "update")))
        updates = len(self._statements) - queries
        return (f"workload {self.name!r}: {len(self._statements)} statements "
                f"({queries} queries, {updates} updates), "
                f"total frequency {self.total_frequency:g}")
