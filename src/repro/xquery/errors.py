"""Exceptions for the query front ends and workload handling."""

from __future__ import annotations


class QueryParseError(Exception):
    """Raised when a workload statement cannot be parsed.

    Attributes
    ----------
    statement:
        The offending statement text (possibly truncated for display).
    """

    def __init__(self, message: str, statement: str = "") -> None:
        self.statement = statement
        if statement:
            shown = statement if len(statement) < 120 else statement[:117] + "..."
            super().__init__(f"{message}: {shown!r}")
        else:
            super().__init__(message)


class WorkloadError(Exception):
    """Raised on invalid workload construction (e.g. non-positive frequency)."""
