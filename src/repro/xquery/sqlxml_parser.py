"""SQL/XML front end: extract XML predicates from SQL statements.

DB2 lets relational SQL statements query XML columns through
``XMLEXISTS`` (a predicate) and ``XMLQUERY`` (an extracting expression),
both of which embed an XPath/XQuery string and a ``PASSING`` clause that
binds the XML column to a variable:

.. code-block:: sql

    SELECT o.id
    FROM orders o
    WHERE XMLEXISTS('$d/FIXML/Order[@Side = "2"]' PASSING o.doc AS "d")

The advisor only cares about the embedded path expressions, so this
parser pulls them out, records whether each came from a predicate
context (``XMLEXISTS``, indexable) or an extraction context
(``XMLQUERY``, navigation only), and hands them to the normalizer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.xquery.errors import QueryParseError

_XMLEXISTS_RE = re.compile(r"XMLEXISTS\s*\(", re.IGNORECASE)
_XMLQUERY_RE = re.compile(r"XMLQUERY\s*\(", re.IGNORECASE)
_PASSING_VAR_RE = re.compile(
    r"""PASSING\s+[\w\."]+\s+AS\s+["']?(\w+)["']?""", re.IGNORECASE)


@dataclass
class SqlXmlExpression:
    """One embedded XML expression found in a SQL/XML statement."""

    xpath_text: str
    #: Variable name bound by the PASSING clause (e.g. ``d`` for ``$d/...``).
    passing_variable: Optional[str]
    #: True when the expression appeared inside XMLEXISTS (a predicate).
    is_predicate: bool


@dataclass
class SqlXmlAst:
    """Result of scanning a SQL/XML statement."""

    expressions: List[SqlXmlExpression] = field(default_factory=list)
    #: True if the statement is an INSERT/UPDATE/DELETE.
    is_update: bool = False


def _extract_call(text: str, open_paren_index: int) -> str:
    """Return the text between the parenthesis at ``open_paren_index`` and
    its matching close parenthesis."""
    depth = 0
    in_string: Optional[str] = None
    for i in range(open_paren_index, len(text)):
        ch = text[i]
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in ("'", '"'):
            in_string = ch
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_index + 1:i]
    raise QueryParseError("unbalanced parentheses in SQL/XML call", text)


def _first_string_literal(call_body: str) -> Optional[str]:
    """Return the contents of the first quoted string in ``call_body``."""
    for quote in ("'", '"'):
        start = call_body.find(quote)
        if start == -1:
            continue
        end = call_body.find(quote, start + 1)
        if end == -1:
            continue
        return call_body[start + 1:end]
    return None


def _scan_calls(statement: str, pattern: re.Pattern, is_predicate: bool,
                ast: SqlXmlAst) -> None:
    for match in pattern.finditer(statement):
        open_paren = statement.find("(", match.start())
        body = _extract_call(statement, open_paren)
        xpath_text = _first_string_literal(body)
        if xpath_text is None:
            raise QueryParseError(
                "XMLEXISTS/XMLQUERY call does not contain an XPath literal", statement)
        passing = _PASSING_VAR_RE.search(body)
        variable = passing.group(1) if passing else None
        ast.expressions.append(SqlXmlExpression(
            xpath_text=xpath_text.strip(),
            passing_variable=variable,
            is_predicate=is_predicate,
        ))


def looks_like_sqlxml(statement: str) -> bool:
    """Heuristic language sniffing used when the workload does not say."""
    upper = statement.upper()
    return ("SELECT" in upper or "INSERT" in upper or "UPDATE" in upper
            or "DELETE" in upper) and ("XMLEXISTS" in upper or "XMLQUERY" in upper
                                       or "FROM" in upper)


def parse_sqlxml(statement: str) -> SqlXmlAst:
    """Extract the XML expressions embedded in a SQL/XML statement."""
    if not statement or not statement.strip():
        raise QueryParseError("empty SQL/XML statement")
    ast = SqlXmlAst()
    upper = statement.strip().upper()
    ast.is_update = upper.startswith(("INSERT", "UPDATE", "DELETE", "MERGE"))
    _scan_calls(statement, _XMLEXISTS_RE, is_predicate=True, ast=ast)
    _scan_calls(statement, _XMLQUERY_RE, is_predicate=False, ast=ast)
    if not ast.expressions and not ast.is_update:
        raise QueryParseError(
            "SQL/XML statement contains no XMLEXISTS or XMLQUERY expression", statement)
    return ast
