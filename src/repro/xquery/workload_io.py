"""Reading and writing workload files.

The DBA-facing input of the advisor is a workload file, as in DB2's
``db2advis -i workload.sql``.  The format accepted here is plain text:

* statements are separated by lines containing only a semicolon, by a
  trailing ``;`` at the end of a line, or by one or more blank lines;
* a line starting with ``--`` is a comment.  A comment of the form
  ``-- frequency: N`` (or ``-- freq=N``) immediately *before* a statement
  sets that statement's frequency;
* statement language is auto-detected (XQuery / SQL-XML / XPath / update),
  exactly as for programmatically constructed workloads.

Example::

    -- frequency: 5
    for $i in doc("xmark.xml")/site/regions/namerica/item
    where $i/quantity > 7 return $i/name;

    -- frequency: 2
    SELECT 1 FROM xmark
    WHERE XMLEXISTS('$d/site/people/person[@id = "p1"]' PASSING doc AS "d");
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.xquery.errors import WorkloadError
from repro.xquery.model import Workload, WorkloadStatement

_FREQUENCY_RE = re.compile(r"^--\s*freq(?:uency)?\s*[:=]\s*([0-9]+(?:\.[0-9]+)?)\s*$",
                           re.IGNORECASE)


def parse_workload_text(text: str, name: str = "workload") -> Workload:
    """Parse workload-file text into a :class:`Workload`."""
    workload = Workload(name=name)
    pending_frequency: Optional[float] = None
    current_lines: List[str] = []

    def flush() -> None:
        nonlocal pending_frequency
        statement_text = "\n".join(current_lines).strip()
        current_lines.clear()
        if not statement_text:
            return
        workload.add(WorkloadStatement(text=statement_text,
                                       frequency=pending_frequency or 1.0))
        pending_frequency = None

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        stripped = line.strip()
        if not stripped:
            flush()
            continue
        frequency_match = _FREQUENCY_RE.match(stripped)
        if frequency_match:
            pending_frequency = float(frequency_match.group(1))
            continue
        if stripped.startswith("--"):
            continue
        if stripped == ";":
            flush()
            continue
        if stripped.endswith(";"):
            current_lines.append(line.rstrip(";"))
            flush()
            continue
        current_lines.append(line)
    flush()
    if len(workload) == 0:
        raise WorkloadError("workload file contains no statements")
    return workload


def load_workload_file(path: Union[str, Path], name: Optional[str] = None) -> Workload:
    """Load a workload file from disk."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    return parse_workload_text(text, name=name or path.stem)


def dump_workload_text(workload: Workload) -> str:
    """Serialize a workload back to the file format (round-trippable)."""
    blocks: List[str] = []
    for statement in workload:
        lines: List[str] = []
        if statement.frequency != 1.0:
            frequency = statement.frequency
            rendered = (str(int(frequency)) if float(frequency).is_integer()
                        else f"{frequency:g}")
            lines.append(f"-- frequency: {rendered}")
        lines.append(statement.text.rstrip(";") + ";")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def save_workload_file(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to disk in the text format."""
    Path(path).write_text(dump_workload_text(workload), encoding="utf-8")
