"""Lower workload statements to the internal normalized form.

The normalizer is the bridge between the surface languages (XQuery,
SQL/XML, raw XPath, and the XQuery Update Facility subset used for
update workloads) and the optimizer/advisor, which only understand
:class:`~repro.xquery.model.NormalizedQuery` objects: absolute path
predicates, extraction paths, and touched patterns for updates.

Responsibilities:

* language sniffing when the workload does not label statements;
* resolving XQuery variables (``$i/quantity``) against their ``for`` /
  ``let`` bindings to obtain absolute paths;
* flattening step predicates (``item[quantity > 5]``) and where-clause
  comparisons into :class:`~repro.xquery.model.PathPredicate` objects;
* choosing the index value type (VARCHAR vs DOUBLE) from the literal a
  predicate compares against;
* recognizing update statements and recording which patterns they touch
  so index maintenance cost can be charged.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.xpath.ast import (
    Axis,
    BinaryOp,
    ComparisonExpr,
    FunctionCall,
    Literal,
    LocationPath,
    PathExpr,
    Step,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.patterns import PathPattern, PatternStep
from repro.xquery.errors import QueryParseError
from repro.xquery.model import (
    NormalizedQuery,
    PathPredicate,
    QueryLanguage,
    UpdateKind,
    ValueType,
    Workload,
    WorkloadStatement,
)
from repro.xquery.sqlxml_parser import looks_like_sqlxml, parse_sqlxml
from repro.xquery.xquery_parser import parse_xquery, strip_doc_function

_UPDATE_INSERT_RE = re.compile(
    r"^\s*insert\s+nodes?\s+(.+?)\s+(?:into|as\s+(?:first|last)\s+into)\s+(.+?)\s*$",
    re.IGNORECASE | re.DOTALL)
_UPDATE_DELETE_RE = re.compile(
    r"^\s*delete\s+nodes?\s+(.+?)\s*$", re.IGNORECASE | re.DOTALL)
_UPDATE_REPLACE_RE = re.compile(
    r"^\s*replace\s+value\s+of\s+node\s+(.+?)\s+with\s+(.+?)\s*$",
    re.IGNORECASE | re.DOTALL)


# ----------------------------------------------------------------------
# Location path -> index pattern conversion
# ----------------------------------------------------------------------
def location_path_to_pattern(path: LocationPath) -> PathPattern:
    """Convert a resolved (absolute, variable-free) location path into an
    index pattern.

    ``text()`` steps are dropped: an index on an element path indexes the
    element's text value, so ``/a/b/text()`` and ``/a/b`` want the same
    index pattern.
    """
    steps: List[PatternStep] = []
    for step in path.steps:
        if step.is_text:
            continue
        descendant = step.axis is Axis.DESCENDANT_OR_SELF
        if step.axis is Axis.ATTRIBUTE:
            label = "@*" if step.node_test == "*" else "@" + step.node_test
        else:
            label = step.node_test
        steps.append(PatternStep(label=label, descendant=descendant))
    if not steps:
        # The document root itself: represent as the universal pattern so
        # downstream code never sees an empty pattern.
        return PathPattern.parse("//*")
    return PathPattern(steps=tuple(steps))


def _resolve(path: LocationPath, bindings: Dict[str, LocationPath],
             statement: str) -> LocationPath:
    """Resolve a (possibly variable-relative) path to an absolute path."""
    if path.variable is None:
        if path.absolute:
            return path
        # A bare relative path with no variable: treat as document-rooted
        # descendant path (e.g. ``item/name`` written loosely).
        return LocationPath(steps=list(path.steps), absolute=True)
    if path.variable not in bindings:
        raise QueryParseError(
            f"reference to unbound variable ${path.variable}", statement)
    base = bindings[path.variable]
    return LocationPath(steps=list(base.steps) + list(path.steps),
                        absolute=True)


def _literal_value_type(value: Union[str, float]) -> ValueType:
    return ValueType.DOUBLE if isinstance(value, float) else ValueType.VARCHAR


class _PredicateCollector:
    """Accumulates PathPredicates and extraction patterns for one statement."""

    def __init__(self, statement: str) -> None:
        self.statement = statement
        self.predicates: List[PathPredicate] = []
        self.extraction: List[PathPattern] = []
        self._seen_predicates: set = set()
        self._seen_extraction: set = set()

    # -- recording -----------------------------------------------------
    def add_predicate(self, pattern: PathPattern, op: Optional[BinaryOp],
                      value: Optional[Union[str, float]]) -> None:
        value_type = (_literal_value_type(value) if op is not None and value is not None
                      else ValueType.VARCHAR)
        if op is not None and op.is_range and isinstance(value, str):
            # Range comparisons against strings still use VARCHAR indexes.
            value_type = ValueType.VARCHAR
        key = (pattern, op, value, value_type)
        if key in self._seen_predicates:
            return
        self._seen_predicates.add(key)
        self.predicates.append(PathPredicate(pattern=pattern, op=op, value=value,
                                             value_type=value_type))

    def add_extraction(self, pattern: PathPattern) -> None:
        if pattern in self._seen_extraction:
            return
        self._seen_extraction.add(pattern)
        self.extraction.append(pattern)

    # -- walking -------------------------------------------------------
    def collect_path(self, path: LocationPath, bindings: Dict[str, LocationPath],
                     as_predicate: bool) -> PathPattern:
        """Process an absolute-or-resolvable path: flatten its step
        predicates into PathPredicates and record its spine.

        Returns the spine pattern of the full path.
        """
        resolved = _resolve(path, bindings, self.statement)
        spine_steps: List[Step] = []
        for step in resolved.steps:
            spine_steps.append(Step(step.axis, step.node_test))
            if step.predicates:
                context = LocationPath(steps=[Step(s.axis, s.node_test)
                                              for s in spine_steps], absolute=True)
                for predicate in step.predicates:
                    self._collect_expression(predicate.expression, context, bindings)
        spine = LocationPath(steps=spine_steps, absolute=True)
        pattern = location_path_to_pattern(spine)
        if as_predicate:
            self.add_predicate(pattern, None, None)
        else:
            self.add_extraction(pattern)
        return pattern

    def collect_where(self, expression: PathExpr,
                      bindings: Dict[str, LocationPath]) -> None:
        root = LocationPath(steps=[], absolute=True)
        self._collect_expression(expression, root, bindings)

    def _collect_expression(self, expression: PathExpr, context: LocationPath,
                            bindings: Dict[str, LocationPath]) -> None:
        if isinstance(expression, ComparisonExpr):
            if expression.op in (BinaryOp.AND, BinaryOp.OR):
                self._collect_expression(expression.left, context, bindings)
                self._collect_expression(expression.right, context, bindings)
                return
            self._collect_comparison(expression, context, bindings)
            return
        if isinstance(expression, LocationPath):
            pattern = self._pattern_for(expression, context, bindings)
            if pattern is not None:
                self.add_predicate(pattern, None, None)
            return
        if isinstance(expression, FunctionCall):
            # contains()/starts-with() etc.: the path argument is still a
            # structural index opportunity even though the value condition
            # cannot be answered from a value index.
            for argument in expression.arguments:
                if isinstance(argument, LocationPath):
                    pattern = self._pattern_for(argument, context, bindings)
                    if pattern is not None:
                        self.add_predicate(pattern, None, None)
                elif isinstance(argument, (ComparisonExpr, FunctionCall)):
                    self._collect_expression(argument, context, bindings)
            return
        if isinstance(expression, Literal):
            return

    def _collect_comparison(self, expression: ComparisonExpr, context: LocationPath,
                            bindings: Dict[str, LocationPath]) -> None:
        left, right = expression.left, expression.right
        op = expression.op
        path_side: Optional[LocationPath] = None
        literal_side: Optional[Literal] = None
        if isinstance(left, LocationPath) and isinstance(right, Literal):
            path_side, literal_side = left, right
        elif isinstance(right, LocationPath) and isinstance(left, Literal):
            path_side, literal_side = right, left
            op = _flip_operator(op)
        if path_side is not None and literal_side is not None:
            pattern = self._pattern_for(path_side, context, bindings)
            if pattern is not None:
                self.add_predicate(pattern, op, literal_side.value)
            return
        # Path-to-path comparisons (joins) or nested expressions: record
        # both sides as structural predicates.
        for side in (left, right):
            self._collect_expression(side, context, bindings)

    def _pattern_for(self, path: LocationPath, context: LocationPath,
                     bindings: Dict[str, LocationPath]) -> Optional[PathPattern]:
        if path.variable is not None:
            resolved = _resolve(path, bindings, self.statement)
        elif path.absolute:
            resolved = path
        else:
            resolved = context.append(path)
        resolved = resolved.without_predicates()
        if not resolved.steps:
            return None
        return location_path_to_pattern(resolved)


def _flip_operator(op: BinaryOp) -> BinaryOp:
    flips = {BinaryOp.LT: BinaryOp.GT, BinaryOp.LE: BinaryOp.GE,
             BinaryOp.GT: BinaryOp.LT, BinaryOp.GE: BinaryOp.LE}
    return flips.get(op, op)


# ----------------------------------------------------------------------
# Language detection
# ----------------------------------------------------------------------
def detect_language(statement: str) -> QueryLanguage:
    """Best-effort language sniffing for unlabeled workload statements."""
    text = statement.strip()
    lowered = text.lower()
    if looks_like_sqlxml(text):
        return QueryLanguage.SQLXML
    if (lowered.startswith(("for ", "let ", "for$", "let$"))
            or re.match(r"^\s*for\s+\$", lowered)
            or lowered.startswith(("insert node", "delete node", "replace value"))):
        return QueryLanguage.XQUERY
    if lowered.startswith(("doc(", "collection(", "fn:doc(", "db2-fn:")):
        return QueryLanguage.XQUERY
    return QueryLanguage.XPATH


def _is_update_statement(statement: str) -> Optional[UpdateKind]:
    lowered = statement.strip().lower()
    if lowered.startswith("insert node") or lowered.startswith("insert nodes"):
        return UpdateKind.INSERT
    if lowered.startswith("delete node") or lowered.startswith("delete nodes"):
        return UpdateKind.DELETE
    if lowered.startswith("replace value of node"):
        return UpdateKind.UPDATE
    if lowered.startswith(("insert into", "delete from", "update ")):
        return (UpdateKind.INSERT if lowered.startswith("insert")
                else UpdateKind.DELETE if lowered.startswith("delete")
                else UpdateKind.UPDATE)
    return None


# ----------------------------------------------------------------------
# Per-language normalization
# ----------------------------------------------------------------------
def _normalize_update(statement: WorkloadStatement, query_id: str,
                      kind: UpdateKind) -> NormalizedQuery:
    text = statement.text.strip()
    touched: List[PathPattern] = []
    target_text: Optional[str] = None
    match = _UPDATE_INSERT_RE.match(text)
    if match:
        target_text = match.group(2)
    else:
        match = _UPDATE_REPLACE_RE.match(text)
        if match:
            target_text = match.group(1)
        else:
            match = _UPDATE_DELETE_RE.match(text)
            if match:
                target_text = match.group(1)
    if target_text:
        stripped = strip_doc_function(target_text.strip())
        try:
            parsed = parse_xpath(stripped)
        except Exception:
            parsed = None
        if isinstance(parsed, LocationPath):
            spine = parsed.without_predicates()
            pattern = location_path_to_pattern(spine)
            touched.append(pattern)
            if kind in (UpdateKind.INSERT, UpdateKind.DELETE):
                # Inserting or deleting a subtree touches every index whose
                # pattern lies underneath the target.
                touched.append(pattern.append_step("*", descendant=True))
    if not touched:
        # SQL-level inserts of whole documents: every index is affected.
        touched.append(PathPattern.parse("//*"))
        touched.append(PathPattern.parse("//@*"))
    return NormalizedQuery(query_id=query_id, text=statement.text,
                           language=QueryLanguage.XQUERY,
                           frequency=statement.frequency,
                           is_update=True, update_kind=kind,
                           touched_patterns=touched)


def _normalize_xquery(statement: WorkloadStatement, query_id: str) -> NormalizedQuery:
    ast = parse_xquery(statement.text)
    collector = _PredicateCollector(statement.text)
    bindings: Dict[str, LocationPath] = {}
    for binding in ast.bindings:
        resolved = _resolve(binding.source, bindings, statement.text)
        bindings[binding.variable] = resolved.without_predicates()
        collector.collect_path(resolved, bindings, as_predicate=False)
    if ast.body_path is not None:
        collector.collect_path(ast.body_path, bindings, as_predicate=False)
    if ast.where is not None:
        collector.collect_where(ast.where, bindings)
    for path in ast.order_by + ast.return_paths:
        try:
            collector.collect_path(path, bindings, as_predicate=False)
        except QueryParseError:
            continue
    return NormalizedQuery(query_id=query_id, text=statement.text,
                           language=QueryLanguage.XQUERY,
                           predicates=collector.predicates,
                           extraction_paths=collector.extraction,
                           frequency=statement.frequency)


def _normalize_sqlxml(statement: WorkloadStatement, query_id: str) -> NormalizedQuery:
    ast = parse_sqlxml(statement.text)
    collector = _PredicateCollector(statement.text)
    for expression in ast.expressions:
        bindings: Dict[str, LocationPath] = {}
        if expression.passing_variable:
            bindings[expression.passing_variable] = LocationPath(steps=[], absolute=True)
        try:
            parsed = parse_xpath(expression.xpath_text)
        except Exception as exc:
            raise QueryParseError(
                f"cannot parse embedded XPath ({exc})", statement.text) from exc
        root = LocationPath(steps=[], absolute=True)
        if isinstance(parsed, LocationPath):
            collector.collect_path(parsed, bindings,
                                   as_predicate=expression.is_predicate)
        else:
            collector._collect_expression(parsed, root, bindings)
    return NormalizedQuery(query_id=query_id, text=statement.text,
                           language=QueryLanguage.SQLXML,
                           predicates=collector.predicates,
                           extraction_paths=collector.extraction,
                           frequency=statement.frequency,
                           is_update=ast.is_update,
                           update_kind=UpdateKind.INSERT if ast.is_update else None,
                           touched_patterns=[PathPattern.parse("//*"),
                                             PathPattern.parse("//@*")]
                           if ast.is_update else [])


def _normalize_xpath(statement: WorkloadStatement, query_id: str) -> NormalizedQuery:
    collector = _PredicateCollector(statement.text)
    stripped = strip_doc_function(statement.text)
    parsed = parse_xpath(stripped)
    root = LocationPath(steps=[], absolute=True)
    if isinstance(parsed, LocationPath):
        collector.collect_path(parsed, {}, as_predicate=False)
    else:
        collector._collect_expression(parsed, root, {})
    return NormalizedQuery(query_id=query_id, text=statement.text,
                           language=QueryLanguage.XPATH,
                           predicates=collector.predicates,
                           extraction_paths=collector.extraction,
                           frequency=statement.frequency)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def normalize_statement(statement: Union[WorkloadStatement, str],
                        query_id: Optional[str] = None) -> NormalizedQuery:
    """Normalize one workload statement into the internal form.

    Raises :class:`QueryParseError` when the statement cannot be parsed
    by any front end.
    """
    if isinstance(statement, str):
        statement = WorkloadStatement(text=statement)
    query_id = query_id or statement.statement_id or "q"
    update_kind = _is_update_statement(statement.text)
    if update_kind is not None and not looks_like_sqlxml(statement.text):
        return _normalize_update(statement, query_id, update_kind)
    language = statement.language or detect_language(statement.text)
    if language is QueryLanguage.SQLXML:
        return _normalize_sqlxml(statement, query_id)
    if language is QueryLanguage.XQUERY:
        return _normalize_xquery(statement, query_id)
    return _normalize_xpath(statement, query_id)


def normalize_workload(workload: Workload) -> List[NormalizedQuery]:
    """Normalize every statement of a workload, preserving order."""
    normalized: List[NormalizedQuery] = []
    for index, statement in enumerate(workload, start=1):
        query_id = statement.statement_id or f"{workload.name}-q{index}"
        normalized.append(normalize_statement(statement, query_id=query_id))
    return normalized
