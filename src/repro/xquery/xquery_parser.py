"""Parser for the FLWOR XQuery subset used by the benchmark workloads.

The subset covers the style of queries XMark and TPoX use (and that the
paper's demonstration issues against DB2):

.. code-block:: text

    for $i in doc("xmark.xml")/site/regions/africa/item
    let $d = $i/description
    where $i/quantity > 5 and $i/payment = "Creditcard"
    order by $i/name
    return <result>{$i/name}{$d}</result>

Supported clauses: any interleaving of ``for`` / ``let`` bindings, an
optional ``where`` clause, an optional ``order by`` clause (parsed but
only its paths are retained), and a mandatory ``return`` clause.  Plain
path expressions (optionally wrapped in ``doc(...)``) are also accepted
and represented as a degenerate FLWOR with no bindings.

The parser performs *syntactic* analysis only; resolving variables to
absolute paths happens in :mod:`repro.xquery.normalizer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.xpath.ast import LocationPath, PathExpr
from repro.xpath.parser import parse_xpath
from repro.xquery.errors import QueryParseError

#: Clause keywords recognized at nesting depth zero.
_CLAUSE_KEYWORDS = ("for", "let", "where", "order by", "stable order by", "return")

_DOC_PREFIX_RE = re.compile(
    r"""^\s*(?:fn:)?(?:doc|collection)\(\s*['"][^'"]*['"]\s*\)|"""
    r"""^\s*db2-fn:(?:xmlcolumn|sqlquery)\(\s*['"][^'"]*['"]\s*\)""",
    re.IGNORECASE,
)

_VARIABLE_PATH_RE = re.compile(r"\$[A-Za-z_][\w\-]*(?:/{1,2}[@\w\*][\w\-\.:\(\)@]*)*")


@dataclass
class Binding:
    """A ``for`` or ``let`` binding: variable name plus its source expression."""

    variable: str
    source: LocationPath
    kind: str = "for"  # "for" or "let"


@dataclass
class XQueryAst:
    """Result of parsing an XQuery statement."""

    bindings: List[Binding] = field(default_factory=list)
    where: Optional[PathExpr] = None
    order_by: List[LocationPath] = field(default_factory=list)
    return_paths: List[LocationPath] = field(default_factory=list)
    #: Set for degenerate "just a path" queries.
    body_path: Optional[LocationPath] = None


def strip_doc_function(expression: str) -> str:
    """Remove a leading ``doc("...")`` / ``collection("...")`` wrapper.

    ``doc("xmark.xml")/site/regions`` becomes ``/site/regions``.  If no
    wrapper is present, the text is returned unchanged.
    """
    match = _DOC_PREFIX_RE.match(expression)
    if not match:
        return expression.strip()
    rest = expression[match.end():].strip()
    if not rest:
        return "/"
    if not rest.startswith("/"):
        rest = "/" + rest
    return rest


def _split_clauses(text: str) -> List[Tuple[str, str]]:
    """Split a FLWOR body into ``(keyword, clause_text)`` pairs.

    Splitting only happens at nesting depth zero (outside parentheses,
    brackets, braces, and string literals), so paths with predicates and
    element constructors in the return clause do not confuse it.
    """
    lowered = text.lower()
    positions: List[Tuple[int, str]] = []
    depth = 0
    in_string: Optional[str] = None
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == in_string:
                in_string = None
            i += 1
            continue
        if ch in ("'", '"'):
            in_string = ch
            i += 1
            continue
        if ch in "([{":
            depth += 1
            i += 1
            continue
        if ch in ")]}":
            depth -= 1
            i += 1
            continue
        if depth == 0:
            for keyword in _CLAUSE_KEYWORDS:
                if lowered.startswith(keyword, i):
                    before_ok = i == 0 or not (text[i - 1].isalnum() or text[i - 1] in "_$")
                    after_index = i + len(keyword)
                    after_ok = (after_index >= len(text)
                                or not (text[after_index].isalnum() or text[after_index] == "_"))
                    if before_ok and after_ok:
                        positions.append((i, keyword))
                        i = after_index
                        break
            else:
                i += 1
                continue
            continue
        i += 1
    if not positions:
        return []
    clauses: List[Tuple[str, str]] = []
    for index, (pos, keyword) in enumerate(positions):
        start = pos + len(keyword)
        end = positions[index + 1][0] if index + 1 < len(positions) else len(text)
        clauses.append((keyword, text[start:end].strip()))
    return clauses


def _parse_path_expression(text: str, statement: str) -> LocationPath:
    """Parse a source expression (possibly doc()-wrapped) as a location path."""
    stripped = strip_doc_function(text)
    try:
        parsed = parse_xpath(stripped)
    except Exception as exc:
        raise QueryParseError(f"cannot parse path expression ({exc})", statement) from exc
    if not isinstance(parsed, LocationPath):
        raise QueryParseError("binding source must be a path expression", statement)
    return parsed


def _parse_bindings(keyword: str, clause: str, statement: str) -> List[Binding]:
    bindings: List[Binding] = []
    for part in _split_top_level(clause, ","):
        part = part.strip()
        if not part:
            continue
        if keyword == "for":
            match = re.match(r"^\$([\w\-]+)\s+in\s+(.+)$", part, re.DOTALL)
            if not match:
                raise QueryParseError("malformed for clause", statement)
        else:
            match = re.match(r"^\$([\w\-]+)\s*:=\s*(.+)$", part, re.DOTALL)
            if not match:
                raise QueryParseError("malformed let clause", statement)
        variable, source_text = match.group(1), match.group(2)
        bindings.append(Binding(variable=variable,
                                source=_parse_path_expression(source_text, statement),
                                kind=keyword))
    return bindings


def _split_top_level(text: str, separator: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    in_string: Optional[str] = None
    current: List[str] = []
    for ch in text:
        if in_string:
            current.append(ch)
            if ch == in_string:
                in_string = None
            continue
        if ch in ("'", '"'):
            in_string = ch
            current.append(ch)
            continue
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _extract_return_paths(clause: str, statement: str) -> List[LocationPath]:
    """Pull the variable-relative paths out of a return clause.

    Element constructors and commas are ignored; only ``$var/...``
    references matter for costing (they are navigation, not predicates).
    """
    paths: List[LocationPath] = []
    for match in _VARIABLE_PATH_RE.finditer(clause):
        text = match.group(0)
        try:
            parsed = parse_xpath(text)
        except Exception:
            continue
        if isinstance(parsed, LocationPath):
            paths.append(parsed)
    return paths


def parse_xquery(statement: str) -> XQueryAst:
    """Parse an XQuery statement from the supported FLWOR subset.

    Raises :class:`QueryParseError` when the statement cannot be
    understood.
    """
    if not statement or not statement.strip():
        raise QueryParseError("empty XQuery statement")
    text = statement.strip()
    clauses = _split_clauses(text)
    if not clauses:
        # Degenerate case: a plain (possibly doc()-wrapped) path expression.
        path = _parse_path_expression(text, statement)
        return XQueryAst(body_path=path, return_paths=[path])

    ast = XQueryAst()
    saw_return = False
    for keyword, clause in clauses:
        if keyword == "for" or keyword == "let":
            ast.bindings.extend(_parse_bindings(keyword, clause, statement))
        elif keyword == "where":
            try:
                ast.where = parse_xpath(clause)
            except Exception as exc:
                raise QueryParseError(f"cannot parse where clause ({exc})",
                                      statement) from exc
        elif keyword in ("order by", "stable order by"):
            for part in _split_top_level(clause, ","):
                part = part.strip()
                # Strip trailing direction modifiers.
                part = re.sub(r"\s+(ascending|descending)$", "", part, flags=re.IGNORECASE)
                if not part:
                    continue
                try:
                    parsed = parse_xpath(part)
                except Exception:
                    continue
                if isinstance(parsed, LocationPath):
                    ast.order_by.append(parsed)
        elif keyword == "return":
            saw_return = True
            ast.return_paths.extend(_extract_return_paths(clause, statement))
    if ast.bindings and not saw_return:
        raise QueryParseError("FLWOR expression is missing its return clause", statement)
    return ast
