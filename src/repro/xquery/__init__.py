"""Query front ends and the workload model.

The paper's advisor supports both query languages DB2 supports --
XQuery and SQL/XML -- because it delegates all query understanding to
the optimizer.  This package mirrors that: both front ends lower to the
same *normalized query* form (a set of absolute path predicates plus
extraction paths), and everything downstream (optimizer, advisor,
executor) works only with that form.

Contents
--------
* :mod:`repro.xquery.model` -- ``PathPredicate``, ``NormalizedQuery``,
  ``WorkloadStatement``, ``Workload``.
* :mod:`repro.xquery.xquery_parser` -- a FLWOR-subset XQuery parser.
* :mod:`repro.xquery.sqlxml_parser` -- SQL/XML (``XMLEXISTS`` /
  ``XMLQUERY``) extraction.
* :mod:`repro.xquery.normalizer` -- lowering of either language (or raw
  XPath) to :class:`~repro.xquery.model.NormalizedQuery`.
"""

from repro.xquery.errors import QueryParseError, WorkloadError
from repro.xquery.model import (
    NormalizedQuery,
    PathPredicate,
    QueryLanguage,
    UpdateKind,
    ValueType,
    Workload,
    WorkloadStatement,
)
from repro.xquery.normalizer import normalize_statement, normalize_workload
from repro.xquery.sqlxml_parser import parse_sqlxml
from repro.xquery.workload_io import (
    dump_workload_text,
    load_workload_file,
    parse_workload_text,
    save_workload_file,
)
from repro.xquery.xquery_parser import parse_xquery

__all__ = [
    "NormalizedQuery",
    "PathPredicate",
    "QueryLanguage",
    "QueryParseError",
    "UpdateKind",
    "ValueType",
    "Workload",
    "WorkloadError",
    "WorkloadStatement",
    "dump_workload_text",
    "load_workload_file",
    "normalize_statement",
    "normalize_workload",
    "parse_workload_text",
    "save_workload_file",
    "parse_sqlxml",
    "parse_xquery",
]
