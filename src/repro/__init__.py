"""repro -- reproduction of "An XML Index Advisor for DB2" (SIGMOD 2008).

The package implements the paper's XML Index Advisor together with every
substrate it needs to run without DB2: an XML document store with path
statistics, XML path/value indexes (physical and virtual), a cost-based
optimizer with the Enumerate Indexes / Evaluate Indexes EXPLAIN modes,
XQuery and SQL/XML front ends, XMark- and TPoX-style workload
generators, and a query executor for end-to-end validation.

Quickstart::

    from repro import (XmlIndexAdvisor, AdvisorParameters, SearchAlgorithm,
                       generate_xmark_database, xmark_query_workload)

    database = generate_xmark_database()
    workload = xmark_query_workload()
    advisor = XmlIndexAdvisor(database,
                              AdvisorParameters(disk_budget_bytes=256 * 1024))
    recommendation = advisor.recommend(workload)
    print(recommendation.describe())
    for ddl in recommendation.ddl_statements():
        print(ddl)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
experiment-by-experiment reproduction record.
"""

from repro.advisor import (
    AdvisorParameters,
    Recommendation,
    RecommendationAnalysis,
    SearchAlgorithm,
    XmlIndexAdvisor,
)
from repro.executor import QueryExecutor, measure_workload
from repro.index import IndexConfiguration, IndexDefinition
from repro.optimizer import (
    ExplainMode,
    Optimizer,
    enumerate_indexes,
    evaluate_indexes,
)
from repro.storage import XmlDatabase
from repro.tuning import TuningController, TuningPolicy, WorkloadMonitor
from repro.workloads import (
    generate_tpox_database,
    generate_xmark_database,
    tpox_workload,
    xmark_query_workload,
    xmark_unseen_queries,
)
from repro.xpath import PathPattern
from repro.xquery import Workload, WorkloadStatement, normalize_statement

__version__ = "1.0.0"

__all__ = [
    "AdvisorParameters",
    "ExplainMode",
    "IndexConfiguration",
    "IndexDefinition",
    "Optimizer",
    "PathPattern",
    "QueryExecutor",
    "Recommendation",
    "RecommendationAnalysis",
    "SearchAlgorithm",
    "TuningController",
    "TuningPolicy",
    "Workload",
    "WorkloadMonitor",
    "WorkloadStatement",
    "XmlDatabase",
    "XmlIndexAdvisor",
    "__version__",
    "enumerate_indexes",
    "evaluate_indexes",
    "generate_tpox_database",
    "generate_xmark_database",
    "measure_workload",
    "normalize_statement",
    "tpox_workload",
    "xmark_query_workload",
    "xmark_unseen_queries",
]
