"""Workload-level execution measurement (experiment E5).

Runs a normalized workload twice -- without indexes and with a given
index configuration materialized -- and reports the aggregate work done
in each case, so the "actual execution time" step of the demonstration
can be reproduced as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.executor.executor import ExecutionResult, QueryExecutor
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.xquery.model import NormalizedQuery, Workload
from repro.xquery.normalizer import normalize_workload


@dataclass
class WorkloadMeasurement:
    """Aggregate execution metrics for one workload run."""

    label: str
    total_seconds: float
    documents_examined: int
    index_entries_scanned: int
    queries_using_indexes: int
    per_query: List[ExecutionResult] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.per_query)

    def describe(self) -> str:
        return (f"{self.label}: {self.query_count} queries in "
                f"{self.total_seconds * 1000:.1f} ms, "
                f"{self.documents_examined} docs examined, "
                f"{self.index_entries_scanned} index entries, "
                f"{self.queries_using_indexes} queries used indexes")


def _run(executor: QueryExecutor, queries: Sequence[NormalizedQuery],
         label: str) -> WorkloadMeasurement:
    start = wall_clock()
    results = executor.execute_workload(queries)
    elapsed = wall_clock() - start
    return WorkloadMeasurement(
        label=label,
        total_seconds=elapsed,
        documents_examined=sum(r.documents_examined for r in results),
        index_entries_scanned=sum(r.index_entries_scanned for r in results),
        queries_using_indexes=sum(1 for r in results if r.used_index_plan),
        per_query=results,
    )


def measure_workload(database: XmlDatabase,
                     workload: Union[Workload, Sequence[NormalizedQuery]],
                     configuration: Union[IndexConfiguration,
                                          Iterable[IndexDefinition], None] = None
                     ) -> Dict[str, WorkloadMeasurement]:
    """Execute ``workload`` without indexes and (optionally) with
    ``configuration`` materialized; return both measurements.

    The returned dict has keys ``"no-indexes"`` and (when a configuration
    is given) ``"recommended"``.
    """
    if isinstance(workload, Workload):
        queries = normalize_workload(workload)
    else:
        queries = list(workload)
    queries = [q for q in queries if not q.is_update]

    results: Dict[str, WorkloadMeasurement] = {}
    baseline_executor = QueryExecutor(database)
    baseline_executor.drop_all_indexes()
    results["no-indexes"] = _run(baseline_executor, queries, "no-indexes")

    if configuration is not None:
        indexed_executor = QueryExecutor(database)
        indexed_executor.create_indexes(configuration)
        results["recommended"] = _run(indexed_executor, queries, "recommended")
        # Leave the catalog as we found it so repeated measurements and
        # later advisor runs start from a clean slate.
        indexed_executor.drop_all_indexes()
    return results


def measure_scan_modes(database: XmlDatabase,
                       workload: Union[Workload, Sequence[NormalizedQuery]]
                       ) -> Dict[str, WorkloadMeasurement]:
    """Execute ``workload`` as document scans under both scan engines.

    Returns measurements keyed ``"scan-interpretive"`` (the legacy
    per-document XPath interpreter) and ``"scan-summary"`` (path lookups
    answered from each collection's structural path summary), so
    benchmarks can report the structural-summary speedup.  No indexes
    are used in either run.
    """
    if isinstance(workload, Workload):
        queries = normalize_workload(workload)
    else:
        queries = list(workload)
    queries = [q for q in queries if not q.is_update]

    results: Dict[str, WorkloadMeasurement] = {}
    for label, use_summary in (("scan-interpretive", False),
                               ("scan-summary", True)):
        executor = QueryExecutor(database, use_path_summary=use_summary)
        executor.drop_all_indexes()
        executor.execute_workload(queries)  # warm caches and summaries
        results[label] = _run(executor, queries, label)
    return results
