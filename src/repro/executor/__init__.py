"""Query execution: actually running workloads against the document store.

The demonstration's last step creates the recommended indexes and shows
the *actual* execution time of the workload queries.  This package makes
that reproducible:

* :class:`~repro.executor.executor.QueryExecutor` builds physical
  index structures for the catalog's physical definitions, asks the
  optimizer for a plan, and interprets it -- either a full document scan
  with the XPath evaluator, or index probes followed by residual
  evaluation on the fetched documents;
* :mod:`repro.executor.measurement` runs whole workloads under different
  configurations and reports wall-clock times, documents examined and
  index entries touched (experiment E5).
"""

from repro.executor.executor import ExecutionResult, QueryExecutor
from repro.executor.measurement import (
    WorkloadMeasurement,
    measure_scan_modes,
    measure_workload,
)

__all__ = [
    "ExecutionResult",
    "QueryExecutor",
    "WorkloadMeasurement",
    "measure_scan_modes",
    "measure_workload",
]
