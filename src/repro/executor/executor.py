"""Query executor over the document store.

Execution follows the optimizer's plan choice:

* **Document scan plans** check the query's predicates and extraction
  paths against every document *of the plan's routing set* -- the
  collections whose path summary/synopsis can match the query's
  patterns (structural routing; a query rooted in one collection no
  longer walks the others, and ``use_collection_routing=False``
  restores the walk-everything behaviour).  The per-document node sets
  come from the collection's columnar pre/post store
  (:class:`~repro.storage.columnar.ColumnarStore` -- every linear
  spine, with exact descendant-or-self ``//`` semantics) or its
  structural :class:`~repro.storage.path_summary.PathSummary`
  (dictionary lookups) whenever the path shape allows it; the
  interpretive XPath evaluator handles the residue (see
  :mod:`repro.xpath.compiler`).
* **Index plans** probe the physical indexes chosen by the optimizer to
  obtain candidate document ids, intersect them across predicates
  (index ANDing), and then evaluate the full query only on the
  candidates inside the routing set (residual filtering + extraction);
  entries a general index returns from unrouted collections are skipped
  without residual evaluation.

The executor reports what it did (documents examined, index entries
touched, result count, wall-clock time) so the E5 benchmark can compare
runs with and without the recommended indexes.

Maintenance: when the database's data signature moves between
executions, the executor catches its materialized indexes up from each
changed collection's delta journal
(:meth:`~repro.storage.document_store.XmlCollection.deltas_since`) --
one merge/retract per changed document -- instead of rebuilding every
index from scratch, and records the signature each structure now
reflects in the catalog (per-index staleness tracking).  A journal gap
(trimmed history, in-place edits, ``use_incremental_maintenance=False``)
falls back to the full rebuild.

Extraction: ``execute(query, extract=True)`` additionally returns the
nodes selected by the query's extraction paths in document order --
``(collection, document, node id)`` -- served by the summary's ordered
multi-path merges (``CompiledXPath.select_nodes(ordered=True)``).

Vectorized predicates: with ``use_vectorized_predicates`` (the
default), scan plans never touch ``XmlNode`` objects at all.  Each
predicate becomes one call to
:meth:`~repro.storage.columnar.ColumnarStore.matching_documents` --
two bisects over the path's value-sorted posting permutation -- and the
per-predicate document sets are intersected, so a scan costs
O(matching postings) instead of O(documents x predicate nodes).
Index-plan residual checks ride the same sets, and
``execute(extract_values=True)`` serves the extraction paths'
*normalized values* straight from the values column
(``ExecutionResult.extracted_values``) without materializing nodes.
The ``scan_node_materializations`` counter proves it: zero on the
vectorized path, positive on every legacy path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.contracts import cache_contract, escape_hatch
from repro.faults import FaultError, guarded_fault_point
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.physical import PhysicalPathIndex, build_physical_index
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import IndexScan, QueryPlan
from repro.storage.columnar import ColumnarStore
from repro.storage.document_store import XmlDatabase
from repro.storage.path_summary import PathSummary
from repro.telemetry import (
    CostAccounting,
    MetricsRegistry,
    Span,
    global_registry,
    span,
    tracing_armed,
    wall_clock,
)
from repro.xmldb.nodes import DocumentNode, XmlNode, normalized_node_value
from repro.xpath.compiler import compile_pattern
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern
from repro.xquery.model import NormalizedQuery, PathPredicate
from repro.xquery.normalizer import normalize_statement

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.tuning.monitor import WorkloadMonitor

escape_hatch("use_path_summary",
             "legacy per-document interpretive scans instead of the "
             "structural path-summary engine")
escape_hatch("use_collection_routing",
             "walk every collection instead of pruning by the plan's "
             "structural routing set")
escape_hatch("use_columnar",
             "answer path spines from the object-tree summary/interpreter "
             "instead of the columnar pre/post axis engine")
escape_hatch("use_vectorized_predicates",
             "evaluate value predicates per document over materialized "
             "XmlNode objects instead of the columnar store's set-at-a-time "
             "value projections")

#: Fixed bucket bounds (seconds) for the per-query wall-clock latency
#: histogram -- literal by the telemetry contract (no data-dependent
#: bucketing), so bucket layout never varies run to run.
_QUERY_SECONDS_BOUNDS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
                         0.1, 0.5, 1.0, 5.0)
#: Fixed bucket bounds for the per-query documents-examined histogram.
_DOCS_EXAMINED_BOUNDS = (1, 10, 100, 1000, 10000, 100000)


def _plan_shape(plan: QueryPlan) -> str:
    """Cost-accounting key: one bucket per structural plan kind."""
    if not plan.uses_indexes:
        return "document-scan"
    return f"index-plan[{len(plan.used_indexes)}]"


@dataclass
class ExecutionResult:
    """Outcome of executing one query."""

    query_id: str
    result_count: int
    documents_examined: int
    index_entries_scanned: int
    used_indexes: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    used_index_plan: bool = False
    #: Nodes selected by the query's extraction paths, in document order
    #: per path per document; only populated by ``execute(extract=True)``.
    extracted_nodes: Optional[List[XmlNode]] = None
    #: Normalized string values of the nodes the extraction paths select,
    #: in the same order as ``extracted_nodes``; only populated by
    #: ``execute(extract_values=True)``.  On the vectorized path these
    #: come straight from the columnar values column -- byte-identical
    #: to ``normalized_node_value`` over the extracted nodes.
    extracted_values: Optional[List[str]] = None
    #: Span tree recorded by ``execute(trace=True)`` (or with tracing
    #: armed executor/process-wide): parse/compile/plan/route/scan or
    #: index-probe/residual/extract, with plan shape, routing set,
    #: plan-cache attribution and wall/logical timings.  Observe-only
    #: data; ``None`` when tracing is off.
    trace: Optional[Span] = None

    @property
    def extracted_count(self) -> int:
        return len(self.extracted_nodes) if self.extracted_nodes else 0

    def describe(self) -> str:
        plan = "index plan" if self.used_index_plan else "document scan"
        return (f"{self.query_id}: {self.result_count} result doc(s) via {plan}, "
                f"{self.documents_examined} doc(s) examined, "
                f"{self.index_entries_scanned} index entries, "
                f"{self.elapsed_seconds * 1000:.1f} ms")


@dataclass(frozen=True)
class RemovedIndex:
    """Undo record for one dropped index (migration rollback)."""

    definition: IndexDefinition
    structure: Optional[PhysicalPathIndex]
    maintained_signature: Optional[Tuple[Tuple[str, int], ...]]
    unusable_reason: Optional[str]


class _IndexProbeError(Exception):
    """Internal: one index raised while being probed; carries the name
    so degraded-mode execution can mark exactly that index unusable."""

    def __init__(self, name: str, error: Exception) -> None:
        super().__init__(f"index {name!r} probe failed: {error}")
        self.name = name
        self.error = error


@cache_contract(memos={
    "_doc_lookup": {"policy": "revalidate",
                    "revalidators": ("_maintain_derived_state",
                                     "_refresh_document_lookup")},
    "_lookup_signature": {"policy": "revalidate",
                          "revalidators": ("_maintain_derived_state",
                                           "_refresh_document_lookup")},
    "_collection_rank": {"policy": "push",
                         "readers": ("_execute_index_plan",),
                         "refreshers": ("_refresh_document_lookup",)},
    "_summaries": {"policy": "push",
                   "readers": ("_summary_for",),
                   "refreshers": ("_on_collection_change",)},
    "_columnars": {"policy": "push",
                   "readers": ("_columnar_for",),
                   "refreshers": ("_on_collection_change",)},
})
class QueryExecutor:
    """Executes normalized queries against a database's documents.

    ``use_path_summary`` selects the scan engine: ``True`` (default)
    answers path lookups from each collection's structural
    :class:`~repro.storage.path_summary.PathSummary`; ``False`` forces
    the legacy per-document interpretive evaluation (kept for
    benchmarking and equivalence testing).  ``use_columnar`` layers the
    columnar pre/post axis engine on top: linear spines -- including
    the summary-unsafe ``//`` shapes the summary cannot answer -- are
    served from each collection's
    :class:`~repro.storage.columnar.ColumnarStore` instead of the
    summary or the interpreter.  Defaults to the ``REPRO_USE_COLUMNAR``
    environment switch (on unless set to ``"0"``).
    """

    def __init__(self, database: XmlDatabase,
                 optimizer: Optional[Optimizer] = None,
                 use_path_summary: bool = True,
                 use_incremental_maintenance: bool = True,
                 use_collection_routing: bool = True,
                 use_columnar: Optional[bool] = None,
                 use_vectorized_predicates: Optional[bool] = None,
                 monitor: Optional["WorkloadMonitor"] = None,
                 registry: Optional[MetricsRegistry] = None,
                 trace: Optional[bool] = None) -> None:
        self.database = database
        self.optimizer = optimizer or Optimizer(database, registry=registry)
        #: Online-tuning capture hook: when attached, every executed
        #: query (and its measured work) is recorded into the monitor's
        #: decayed frequency store (see :mod:`repro.tuning.monitor`).
        self.monitor = monitor
        self.use_path_summary = use_path_summary
        #: Maintain materialized indexes from the collections' delta
        #: journals on data change; ``False`` restores the legacy
        #: rebuild-every-index behaviour for equivalence testing.
        self.use_incremental_maintenance = use_incremental_maintenance
        #: Structural routing: scan only the collections recorded in the
        #: plan's routing set (the collections whose synopsis can match
        #: the query's patterns) and skip candidate documents outside it
        #: during index-plan residual checks.  Routing never changes
        #: results -- a pruned collection provably contains no match --
        #: only the work done.  ``False`` restores the walk-everything
        #: behaviour for benchmarking and equivalence testing.
        self.use_collection_routing = use_collection_routing
        #: Columnar pre/post engine: serve linear path spines from each
        #: collection's ColumnarStore (exact descendant-or-self ``//``
        #: semantics) instead of the summary/interpreter.  Only active
        #: together with ``use_path_summary`` so the legacy interpretive
        #: mode stays purely interpretive for equivalence benchmarks.
        if use_columnar is None:
            use_columnar = os.environ.get("REPRO_USE_COLUMNAR", "1") != "0"
        self.use_columnar = use_columnar
        #: Set-at-a-time value predicates: evaluate each predicate as two
        #: bisects over the columnar store's value-sorted projection and
        #: intersect the resulting document sets, instead of materializing
        #: XmlNode objects per document and comparing one at a time.
        #: Rides on top of the columnar engine, so it only activates where
        #: ``_columnar_for`` yields a store (hatches on, no fault
        #: degradation).  Defaults to the ``REPRO_USE_VECTORIZED``
        #: environment switch (on unless set to ``"0"``).
        if use_vectorized_predicates is None:
            use_vectorized_predicates = (
                os.environ.get("REPRO_USE_VECTORIZED", "1") != "0")
        self.use_vectorized_predicates = use_vectorized_predicates
        #: Physical index structures keyed by definition key.
        self._indexes: Dict[Tuple[str, str], PhysicalPathIndex] = {}
        self._doc_lookup: Dict[Tuple[str, int], DocumentNode] = {}
        self._lookup_signature: Optional[Tuple[Tuple[str, int], ...]] = None
        #: Memoized per-collection state: the collection insertion-order
        #: rank (for ordered extraction) and the current path summaries.
        #: Both are invalidated by the collections' own version
        #: listeners instead of being re-derived on every plan
        #: execution.
        self._collection_rank: Dict[str, int] = {}
        self._summaries: Dict[str, PathSummary] = {}
        self._columnars: Dict[str, ColumnarStore] = {}
        self._subscribed: set = set()
        #: Instance-scoped metrics registry (the telemetry plane).  The
        #: legacy ad-hoc counters live here now as registry metrics --
        #: instance values keep their old per-executor semantics
        #: byte-for-byte (read them through the properties below) while
        #: every recording also aggregates into ``registry`` (the
        #: process-global registry by default).
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        self._m_index_rebuilds = self.metrics.counter(
            "executor.index.rebuilds")
        self._m_index_delta_maintenances = self.metrics.counter(
            "executor.index.delta_maintenances")
        self._m_index_repairs = self.metrics.counter(
            "executor.index.repairs")
        self._m_documents_routed_out = self.metrics.counter(
            "executor.scan.documents_routed_out")
        self._m_scan_fallbacks = self.metrics.counter(
            "executor.scan.fallbacks")
        self._m_interpretive_spine_fallbacks = self.metrics.counter(
            "executor.scan.interpretive_spine_fallbacks")
        self._m_scan_node_materializations = self.metrics.counter(
            "executor.scan.node_materializations")
        self._m_queries_executed = self.metrics.counter(
            "executor.queries.executed")
        self._m_queries_traced = self.metrics.counter(
            "executor.queries.traced")
        self._m_query_seconds = self.metrics.histogram(
            "executor.query.seconds", _QUERY_SECONDS_BOUNDS, wall=True)
        self._m_documents_examined = self.metrics.histogram(
            "executor.query.documents_examined", _DOCS_EXAMINED_BOUNDS)
        #: Human-readable trail of every degraded-mode containment event.
        self.fallback_events: List[str] = []
        #: Default tracing state for :meth:`execute` calls that do not
        #: pass ``trace=``; seeded from the ``REPRO_TRACE`` environment
        #: switch when the constructor argument is ``None``.
        self.trace_by_default = tracing_armed() if trace is None else trace
        #: Predicted-vs-actual cost accounting over traced queries: each
        #: traced execution pairs the chosen plan's ``CostModel``
        #: estimate with the measured wall-clock time, per plan shape.
        self.cost_accounting = CostAccounting()
        self._refresh_document_lookup()

    # ------------------------------------------------------------------
    # Legacy counter attributes -- byte-equal views of registry metrics
    # ------------------------------------------------------------------
    # Each property reads the instance metric the old ad-hoc counter
    # migrated onto; the setters keep the historical reset idiom
    # (``executor.scan_node_materializations = 0``) working by resetting
    # the *instance* value only -- parent aggregates keep their totals.

    @property
    def index_rebuilds(self) -> int:
        """Indexes rebuilt from scratch since construction
        (observability for tests and benchmarks)."""
        return self._m_index_rebuilds.value

    @index_rebuilds.setter
    def index_rebuilds(self, value: int) -> None:
        self._m_index_rebuilds.reset(value)

    @property
    def index_delta_maintenances(self) -> int:
        """Indexes caught up via delta journals since construction."""
        return self._m_index_delta_maintenances.value

    @index_delta_maintenances.setter
    def index_delta_maintenances(self, value: int) -> None:
        self._m_index_delta_maintenances.reset(value)

    @property
    def index_repairs(self) -> int:
        """Unusable indexes successfully rebuilt by :meth:`repair_indexes`."""
        return self._m_index_repairs.value

    @index_repairs.setter
    def index_repairs(self, value: int) -> None:
        self._m_index_repairs.reset(value)

    @property
    def documents_routed_out(self) -> int:
        """Documents skipped by structural routing (scan path and
        index-plan residual checks), for the benchmarks/tests."""
        return self._m_documents_routed_out.value

    @documents_routed_out.setter
    def documents_routed_out(self, value: int) -> None:
        self._m_documents_routed_out.reset(value)

    @property
    def scan_fallbacks(self) -> int:
        """Queries answered by a fallback scan after an index or
        planner failure (degraded-mode observability)."""
        return self._m_scan_fallbacks.value

    @scan_fallbacks.setter
    def scan_fallbacks(self, value: int) -> None:
        self._m_scan_fallbacks.reset(value)

    @property
    def interpretive_spine_fallbacks(self) -> int:
        """Path spines answered by the interpretive evaluator because
        neither the columnar store nor the summary could back them
        (the E13 benchmark asserts this stays zero on the columnar
        path)."""
        return self._m_interpretive_spine_fallbacks.value

    @interpretive_spine_fallbacks.setter
    def interpretive_spine_fallbacks(self, value: int) -> None:
        self._m_interpretive_spine_fallbacks.reset(value)

    @property
    def scan_node_materializations(self) -> int:
        """XmlNode list materializations performed while matching or
        extracting (every ``select_nodes`` call on a legacy path).  The
        E14 benchmark and the vectorized equivalence tests assert this
        stays zero on the vectorized scan path -- the proof that
        predicates and value extraction never left the columns."""
        return self._m_scan_node_materializations.value

    @scan_node_materializations.setter
    def scan_node_materializations(self, value: int) -> None:
        self._m_scan_node_materializations.reset(value)

    # ------------------------------------------------------------------
    # Index materialization
    # ------------------------------------------------------------------
    def create_indexes(self, definitions: Union[IndexConfiguration,
                                                Iterable[IndexDefinition]]) -> List[str]:
        """Register and build physical indexes for ``definitions``.

        Definitions are added to the catalog (if absent) and materialized;
        returns the names of the indexes built.
        """
        built: List[str] = []
        if self.database.data_signature() != self._lookup_signature:
            # Bring the already-materialized indexes current *before*
            # building new ones, so a later delta catch-up never replays
            # documents a fresh build already contains.
            self._maintain_derived_state()
        for definition in definitions:
            physical = definition.as_physical()
            structure = self._indexes.get(physical.key)
            if structure is None:
                # Build before touching the catalog: a failed build must
                # never strand a definition without a structure.
                structure = build_physical_index(physical, self.database,
                                                 use_columnar=self.use_columnar)
                built.append(physical.name)
            self.install_index(physical, structure)
        return built

    def build_index_structure(self, definition: IndexDefinition) -> PhysicalPathIndex:
        """Materialize (but do not install) ``definition``'s structure.

        The staging half of a transactional migration: a failure here
        leaves the catalog and the executor completely untouched.
        """
        if self.database.data_signature() != self._lookup_signature:
            self._maintain_derived_state()
        return build_physical_index(definition.as_physical(), self.database,
                                    use_columnar=self.use_columnar)

    def install_index(self, definition: IndexDefinition,
                      structure: PhysicalPathIndex) -> None:
        """Publish a staged structure: catalog entry plus materialized map.

        The commit half of a migration: pure dict inserts, so a plan
        that reaches its commit point always completes.
        """
        physical = definition.as_physical()
        catalog = self.database.catalog
        if not catalog.has_index(physical.name):
            catalog.add_index(physical)  # contract: allow[fault-coverage] -- post-commit install; covered by migration.commit upstream
        self._indexes[physical.key] = structure
        catalog.clear_index_unusable(physical.name)
        self._mark_maintained(physical.name, self.database.data_signature())

    def remove_index(self, name: str) -> Optional[RemovedIndex]:
        """Drop one physical index, returning an undo record (or ``None``
        when no such physical index exists)."""
        catalog = self.database.catalog
        definition = next((candidate for candidate in catalog.physical_indexes
                           if candidate.name == name), None)
        if definition is None:
            return None
        # Consulted before any mutation: a persistent fault aborts the
        # drop with catalog and structures untouched.
        guarded_fault_point("index.drop")
        removed = RemovedIndex(
            definition=definition,
            structure=self._indexes.get(definition.key),
            maintained_signature=catalog.index_maintained_signature(name),
            unusable_reason=catalog.unusable_indexes.get(name))
        catalog.drop_index(name)
        self._indexes.pop(definition.key, None)
        return removed

    def restore_index(self, removed: RemovedIndex) -> None:
        """Undo one :meth:`remove_index` (the migration rollback path;
        pure dict inserts, infallible by design)."""
        catalog = self.database.catalog
        catalog.add_index(removed.definition)  # contract: allow[fault-coverage] -- rollback undo must not itself fault
        if removed.structure is not None:
            self._indexes[removed.definition.key] = removed.structure
        if removed.maintained_signature is not None:
            catalog.mark_index_maintained(removed.definition.name,
                                          removed.maintained_signature)
        if removed.unusable_reason is not None:
            catalog.mark_index_unusable(removed.definition.name,
                                        removed.unusable_reason)

    def repair_indexes(self) -> List[str]:
        """Try to rebuild every unusable index; returns the repaired names.

        A repair that fails leaves the index unusable (still served by
        the fallback scan path) to be retried on a later cycle.
        """
        repaired: List[str] = []
        catalog = self.database.catalog
        for name in sorted(catalog.unusable_indexes):
            definition = catalog.index(name)
            try:
                structure = self.build_index_structure(definition)
            except Exception:  # noqa: BLE001 -- containment: stay degraded
                continue
            self.install_index(definition, structure)
            self._m_index_repairs.inc()
            self._note_fallback(f"index {name!r} repaired (rebuilt)")
            repaired.append(name)
        return repaired

    def _degrade_index(self, name: str, reason: str) -> None:
        """Mark one physical index unusable and drop its structure; the
        optimizer plans around it until a repair succeeds."""
        catalog = self.database.catalog
        definition = next((candidate for candidate in catalog.physical_indexes
                           if candidate.name == name), None)
        if definition is not None:
            self._indexes.pop(definition.key, None)
            catalog.mark_index_unusable(name, reason)
        self._note_fallback(f"index {name!r} unusable: {reason}")

    def _note_fallback(self, event: str) -> None:
        self.fallback_events.append(event)

    def _rebuild_indexes(self) -> None:
        """Re-materialize every built index against the current documents.

        A structure whose rebuild fails is degraded (unusable, served by
        scans) instead of failing the maintenance pass: one broken index
        must not take the executor down."""
        signature = self.database.data_signature()
        for key, physical in list(self._indexes.items()):
            try:
                rebuilt = build_physical_index(physical.definition, self.database,
                                               use_columnar=self.use_columnar)
            except Exception as exc:  # noqa: BLE001 -- containment: degrade
                self._degrade_index(physical.definition.name,
                                    f"rebuild failed: {exc}")
                continue
            self._indexes[key] = rebuilt
            self._m_index_rebuilds.inc()
            self._mark_maintained(physical.definition.name, signature)

    def _mark_maintained(self, name: str,
                         signature: Tuple[Tuple[str, int], ...]) -> None:
        if self.database.catalog.has_index(name):
            self.database.catalog.mark_index_maintained(name, signature)

    def _maintain_derived_state(self) -> None:
        """Bring the document lookup and materialized indexes up to the
        current data signature -- via the collections' delta journals
        when possible, falling back to full rebuilds otherwise."""
        old_signature = self._lookup_signature
        self._refresh_document_lookup()  # O(documents): always cheap
        if not self._indexes:
            return
        if not self.use_incremental_maintenance or old_signature is None:
            self._rebuild_indexes()
            return
        old_versions = dict(old_signature)
        new_versions = dict(self._lookup_signature or ())
        if set(old_versions) - set(new_versions):
            # A collection disappeared: entries cannot be retracted
            # without its journal, rebuild.
            self._rebuild_indexes()
            return
        pending = []
        for name, version in new_versions.items():
            previous = old_versions.get(name, 0)
            if version == previous:
                continue
            deltas = self.database.collection(name).deltas_since(previous)
            if deltas is None:
                self._rebuild_indexes()
                return
            pending.extend(deltas)
        # Replay is order-insensitive across collections (each delta
        # only touches its own collection's keys) but must stay ordered
        # within one, which deltas_since guarantees.
        signature = self.database.data_signature()
        try:
            guarded_fault_point("journal.replay")
        except FaultError as exc:
            self._note_fallback(
                f"journal replay failed ({exc}); rebuilding indexes")
            self._rebuild_indexes()
            return
        for key, index in list(self._indexes.items()):
            name = index.definition.name
            try:
                for delta in pending:
                    index.apply_collection_delta(delta)
            except Exception as exc:  # noqa: BLE001 -- containment: rebuild
                # The structure may be half-maintained: rebuild just this
                # index, and degrade it only if the rebuild fails too.
                self._note_fallback(
                    f"delta maintenance of index {name!r} failed ({exc}); "
                    "rebuilding")
                try:
                    self._indexes[key] = build_physical_index(
                        index.definition, self.database,
                        use_columnar=self.use_columnar)
                except Exception as rebuild_exc:  # noqa: BLE001
                    self._degrade_index(
                        name, "rebuild after failed delta maintenance "
                              f"failed: {rebuild_exc}")
                    continue
                self._m_index_rebuilds.inc()
            else:
                self._m_index_delta_maintenances.inc()
            self._mark_maintained(name, signature)

    def drop_indexes(self, names: Iterable[str]) -> List[str]:
        """Drop specific physical indexes (catalog entries and any
        materialized structures); returns the names actually dropped.

        This is the migration-plan primitive of the online tuning
        controller: after the drop, subsequent :meth:`execute` calls
        plan against the reduced catalog (the optimizer's plan cache is
        keyed to the visible index keys, so stale plans cannot be
        served).
        """
        dropped: List[str] = []
        for name in names:
            if self.remove_index(name) is not None:
                dropped.append(name)
        return dropped

    def drop_all_indexes(self) -> None:
        """Drop every physical index (catalog entries and structures)."""
        for definition in list(self.database.catalog.physical_indexes):
            self.remove_index(definition.name)
        self._indexes.clear()

    # ------------------------------------------------------------------
    # Workload capture (online tuning)
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor: Optional["WorkloadMonitor"]) -> None:
        """Attach (or, with ``None``, detach) the workload capture hook."""
        self.monitor = monitor

    @property
    def materialized_index_count(self) -> int:
        return len(self._indexes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Union[NormalizedQuery, str],
                extract: bool = False,
                extract_values: bool = False,
                trace: Optional[bool] = None) -> ExecutionResult:
        """Execute a query (normalized or raw statement text).

        With ``extract=True``, the result additionally carries the nodes
        selected by the query's extraction paths in every matching
        document, in document order (``ExecutionResult.extracted_nodes``).
        With ``extract_values=True``, it carries those nodes' normalized
        string values instead (``ExecutionResult.extracted_values``) --
        on the vectorized path served straight from the columnar values
        column, with no node materialization at all.

        With ``trace=True`` (or tracing armed executor/process-wide,
        see ``REPRO_TRACE``), the result carries a span tree on
        ``ExecutionResult.trace`` and the execution feeds the
        predicted-vs-actual :attr:`cost_accounting` stream.  Tracing is
        observe-only: results are byte-identical either way.
        """
        traced = self.trace_by_default if trace is None else trace
        root: Optional[Span] = None
        if isinstance(query, str):
            parse_start = wall_clock()
            statement_chars = len(query)
            query = normalize_statement(query)
            if traced:
                root = Span("query", query_id=query.query_id)
                parse_span = root.child("parse",
                                        statement_chars=statement_chars)
                parse_span.elapsed_seconds = wall_clock() - parse_start
        elif traced:
            root = Span("query", query_id=query.query_id)
        if query.is_update:
            raise ValueError(
                "the executor runs read queries; updates are costed by the optimizer")
        if root is not None:
            # Pattern compilation is memoized and interleaved with
            # matching, so the compile span carries the logical shape
            # only (no separable wall time).
            root.child("compile", predicates=len(query.predicates),
                       extraction_paths=len(query.extraction_paths))
        start = wall_clock()
        if self._lookup_signature != self.database.data_signature():
            # Documents were added/removed since the executor's derived
            # state was built: refresh the document lookup and catch the
            # materialized indexes up (via the delta journals, or by
            # rebuilding), so index plans neither miss new documents nor
            # return entries with reassigned document ids.
            with span(root, "maintain"):
                self._maintain_derived_state()
        plan: Optional[QueryPlan] = None
        while True:
            cache_hits_before = self.optimizer.plan_cache_hits
            try:
                with span(root, "plan") as plan_span:
                    plan = self.optimizer.optimize(
                        query,
                        candidate_indexes=self.database.catalog.usable_physical_indexes)
                    if plan_span is not None:
                        plan_span.annotate(
                            plan_cache=("hit" if self.optimizer.plan_cache_hits
                                        > cache_hits_before else "miss"),
                            plan_shape=_plan_shape(plan),
                            predicted_cost=plan.total_cost,
                            routing=(sorted(plan.routing)
                                     if plan.routing is not None else None),
                            indexes=[index.name
                                     for index in plan.used_indexes])
            except FaultError as exc:
                # Infrastructure failure while planning (statistics or
                # synopsis publish): degrade to an unrouted document
                # scan -- results unchanged, just slower.
                plan = None
                self._note_fallback(
                    f"optimizer unavailable ({exc}); full document scan")
                self._m_scan_fallbacks.inc()
                if root is not None:
                    root.annotate(planner_fallback=True)
                result = self._execute_scan(query, extract, None,
                                            extract_values, trace=root)
                break
            if plan.uses_indexes and self._plan_indexes_materialized(plan):
                try:
                    result = self._execute_index_plan(query, plan, extract,
                                                      extract_values,
                                                      trace=root)
                    break
                except _IndexProbeError as failure:
                    # Degraded mode: a raising index must not fail the
                    # query.  Mark it unusable and re-plan without it;
                    # each pass removes one index, so this terminates.
                    self._degrade_index(failure.name,
                                        f"probe raised: {failure.error}")
                    self._m_scan_fallbacks.inc()
                    continue
            result = self._execute_scan(query, extract, plan.routing,
                                        extract_values, trace=root)
            break
        elapsed = wall_clock() - start
        result.elapsed_seconds = elapsed
        self._m_queries_executed.inc()
        self._m_query_seconds.observe(elapsed)
        self._m_documents_examined.observe(result.documents_examined)
        if root is not None:
            self._m_queries_traced.inc()
            root.elapsed_seconds = elapsed
            root.annotate(result_count=result.result_count,
                          documents_examined=result.documents_examined,
                          index_entries_scanned=result.index_entries_scanned,
                          used_index_plan=result.used_index_plan)
            result.trace = root
            if plan is not None:
                # Planner-fallback scans have no prediction to pair with,
                # so only planned executions feed the accounting stream.
                self.cost_accounting.record(
                    query_id=query.query_id,
                    plan_shape=_plan_shape(plan),
                    predicted_cost=plan.total_cost,
                    measured_seconds=elapsed,
                    documents_examined=result.documents_examined,
                    index_entries_scanned=result.index_entries_scanned)
        if self.monitor is not None:
            # Online-tuning capture: the monitor aggregates by query
            # template, so repeated executions of one statement fold
            # into a single decayed-weight entry.
            self.monitor.record(query, result)
        return result

    def execute_workload(self, queries: Sequence[NormalizedQuery],
                         extract: bool = False,
                         extract_values: bool = False) -> List[ExecutionResult]:
        """Execute every (non-update) query of a normalized workload."""
        return [self.execute(query, extract=extract,
                             extract_values=extract_values)
                for query in queries if not query.is_update]

    # ------------------------------------------------------------------
    # Scan execution
    # ------------------------------------------------------------------
    def _execute_scan(self, query: NormalizedQuery, extract: bool = False,
                      routing: Optional[Tuple[str, ...]] = None,
                      extract_values: bool = False,
                      trace: Optional[Span] = None) -> ExecutionResult:
        matching_docs = 0
        examined = 0
        extracted: Optional[List[XmlNode]] = [] if extract else None
        values: Optional[List[str]] = [] if extract_values else None
        collections = self.database.collections
        routed_out = 0
        if self.use_collection_routing and routing is not None:
            # Structural pruning: a collection outside the plan's
            # routing set provably contains no matching document (its
            # synopsis cannot satisfy the query's patterns), so the
            # scan does not visit it at all.
            routed = frozenset(routing)
            pruned = [c for c in collections if c.name in routed]
            routed_out = sum(
                len(c) for c in collections if c.name not in routed)
            self._m_documents_routed_out.inc(routed_out)
            collections = pruned
        if trace is not None:
            trace.child("route",
                        routing=(sorted(routing)
                                 if routing is not None else None),
                        collections=len(collections),
                        documents_routed_out=routed_out)
        scan_span: Optional[Span] = None
        scan_start = 0.0
        if trace is not None:
            scan_span = trace.child(
                "scan", vectorized=self.use_vectorized_predicates)
            scan_start = wall_clock()
        for collection in collections:
            summary = self._summary_for(collection.name)
            columnar = self._columnar_for(collection.name)
            if columnar is not None and self.use_vectorized_predicates:
                # Set-at-a-time: one document set per predicate (two
                # bisects over the path's value-sorted projection),
                # intersected -- no per-document loop, no XmlNode hop.
                doc_keys = self._vectorized_document_keys(columnar, query)
                examined += len(collection)
                matching_docs += len(doc_keys)
                if extracted is None and values is None:
                    continue
                # Collections iterate in ascending doc-id order, so the
                # sorted key walk reproduces the legacy extraction
                # stream exactly.
                for doc_key in sorted(doc_keys):
                    if values is not None:
                        for pattern in query.extraction_paths:
                            values.extend(columnar.values_for_pattern(
                                pattern, doc_key, ordered=True))
                    if extracted is not None:
                        document = self._doc_lookup.get(
                            (collection.name, doc_key))
                        if document is not None:
                            extracted.extend(self._extract_nodes(
                                document, query, summary, columnar))
                continue
            for document in collection:
                examined += 1
                if self._document_matches(document, query, summary, columnar):
                    matching_docs += 1
                    if extracted is not None:
                        extracted.extend(self._extract_nodes(
                            document, query, summary, columnar))
                    if values is not None:
                        values.extend(self._extract_values(
                            document, query, summary, columnar))
        if scan_span is not None:
            scan_span.elapsed_seconds = wall_clock() - scan_start
            scan_span.annotate(documents_examined=examined,
                               matching_documents=matching_docs)
        if trace is not None and (extract or extract_values):
            trace.child(
                "extract",
                extracted_nodes=len(extracted) if extracted is not None else 0,
                extracted_values=len(values) if values is not None else 0)
        return ExecutionResult(query_id=query.query_id, result_count=matching_docs,
                               documents_examined=examined, index_entries_scanned=0,
                               used_index_plan=False, extracted_nodes=extracted,
                               extracted_values=values)

    def _vectorized_document_keys(self, columnar: ColumnarStore,
                                  query: NormalizedQuery) -> Set[int]:
        """Document keys of one collection matching every predicate.

        Each predicate costs two bisects over its paths' value-sorted
        projections plus one pass over the matching postings
        (:meth:`ColumnarStore.matching_documents`); the per-predicate
        sets are intersected with an empty-set early exit.  A pure
        navigation query matches where any extraction path has a
        posting (:meth:`ColumnarStore.documents_with_match` -- a
        skip-scan, one probe per distinct document).  Byte-identical to
        `_document_matches` over every document by construction: the
        projections sort the same ``typed_value``/``double_value``
        results ``_compare_node`` reads.
        """
        docs: Optional[Set[int]] = None
        for predicate in query.predicates:
            matched = columnar.matching_documents(
                predicate.pattern, predicate.op, predicate.value)
            docs = matched if docs is None else docs & matched
            if not docs:
                return set()
        if docs is None:
            # Pure navigation query: a document qualifies when any
            # extraction path selects at least one node.
            docs = set()
            for pattern in query.extraction_paths:
                docs |= columnar.documents_with_match(pattern)
        return docs

    # ------------------------------------------------------------------
    # Index plan execution
    # ------------------------------------------------------------------
    def _plan_indexes_materialized(self, plan: QueryPlan) -> bool:
        return all(index.key in self._indexes for index in plan.used_indexes)

    def _execute_index_plan(self, query: NormalizedQuery, plan: QueryPlan,
                            extract: bool = False,
                            extract_values: bool = False,
                            trace: Optional[Span] = None) -> ExecutionResult:
        candidate_docs: Optional[Set[Tuple[str, int]]] = None
        entries_scanned = 0
        used_names: List[str] = []
        with span(trace, "index-probe") as probe_span:
            for operator in self._index_scans(plan):
                index = self._indexes[operator.index.key]
                used_names.append(operator.index.name)
                try:
                    entries = self._probe(index, operator.predicate)
                except Exception as exc:  # noqa: BLE001 -- attributed, contained by execute()
                    raise _IndexProbeError(operator.index.name, exc) from exc
                entries_scanned += len(entries)
                docs = {(entry.collection, entry.doc_id) for entry in entries}
                candidate_docs = docs if candidate_docs is None else candidate_docs & docs
                if not candidate_docs:
                    break
            candidate_docs = candidate_docs or set()
            if probe_span is not None:
                probe_span.annotate(indexes=list(used_names),
                                    entries_scanned=entries_scanned,
                                    candidate_documents=len(candidate_docs))
        routed_out = 0
        if self.use_collection_routing and plan.routing is not None:
            # The index may be more general than the query's patterns
            # and return entries from collections the query cannot
            # match; routing skips their residual checks entirely.
            routed = frozenset(plan.routing)
            before = len(candidate_docs)
            candidate_docs = {key for key in candidate_docs
                              if key[0] in routed}
            routed_out = before - len(candidate_docs)
            self._m_documents_routed_out.inc(routed_out)
        if trace is not None:
            trace.child("route",
                        routing=(sorted(plan.routing)
                                 if plan.routing is not None else None),
                        documents_routed_out=routed_out)
        matching = 0
        examined = 0
        extracted: Optional[List[XmlNode]] = [] if extract else None
        values: Optional[List[str]] = [] if extract_values else None
        # Candidate sets are unordered; extraction iterates them in
        # (collection insertion order, doc id) order -- the same order
        # the scan path visits documents -- so plan choice never changes
        # the extraction stream.  The rank map is memoized behind the
        # per-collection version listeners (`_refresh_document_lookup`).
        if extract or extract_values:
            rank = self._collection_rank
            ordered_docs: Iterable[Tuple[str, int]] = sorted(
                candidate_docs,
                key=lambda key: (rank.get(key[0], len(rank)), key[1]))
        else:
            ordered_docs = candidate_docs
        # Residual checks on the vectorized path: the full matching-key
        # set is computed once per collection (the same intersected
        # bisect sets the scan path uses) and each candidate becomes a
        # set-membership probe instead of a per-document node walk.
        vectorized_keys: Dict[str, Set[int]] = {}
        residual_span: Optional[Span] = None
        residual_start = 0.0
        if trace is not None:
            residual_span = trace.child(
                "residual", vectorized=self.use_vectorized_predicates)
            residual_start = wall_clock()
        for key in ordered_docs:
            document = self._doc_lookup.get(key)
            if document is None:
                continue
            summary = self._summary_for(key[0])
            columnar = self._columnar_for(key[0])
            examined += 1
            if columnar is not None and self.use_vectorized_predicates:
                matched_keys = vectorized_keys.get(key[0])
                if matched_keys is None:
                    matched_keys = self._vectorized_document_keys(
                        columnar, query)
                    vectorized_keys[key[0]] = matched_keys
                matched = key[1] in matched_keys
            else:
                matched = self._document_matches(document, query, summary,
                                                 columnar)
            if matched:
                matching += 1
                if extracted is not None:
                    extracted.extend(self._extract_nodes(
                        document, query, summary, columnar))
                if values is not None:
                    if columnar is not None and self.use_vectorized_predicates:
                        for pattern in query.extraction_paths:
                            values.extend(columnar.values_for_pattern(
                                pattern, key[1], ordered=True))
                    else:
                        values.extend(self._extract_values(
                            document, query, summary, columnar))
        if residual_span is not None:
            residual_span.elapsed_seconds = wall_clock() - residual_start
            residual_span.annotate(documents_examined=examined,
                                   matching_documents=matching)
        if trace is not None and (extract or extract_values):
            trace.child(
                "extract",
                extracted_nodes=len(extracted) if extracted is not None else 0,
                extracted_values=len(values) if values is not None else 0)
        return ExecutionResult(query_id=query.query_id, result_count=matching,
                               documents_examined=examined,
                               index_entries_scanned=entries_scanned,
                               used_indexes=used_names, used_index_plan=True,
                               extracted_nodes=extracted,
                               extracted_values=values)

    def _index_scans(self, plan: QueryPlan) -> List[IndexScan]:
        scans: List[IndexScan] = []
        stack = [plan.root]
        while stack:
            operator = stack.pop()
            if isinstance(operator, IndexScan):
                scans.append(operator)
            stack.extend(operator.children())
        return scans

    def _probe(self, index: PhysicalPathIndex, predicate: PathPredicate):
        if predicate is None or predicate.op is None or predicate.value is None:
            entries = index.scan()
        elif predicate.op is BinaryOp.EQ:
            entries = index.lookup_equal(predicate.value)
        else:
            entries = index.lookup_range(predicate.op, predicate.value)
        # The index may be more general than the predicate: post-filter on
        # the node's path by re-checking the predicate pattern against the
        # entry's document when patterns differ.  Entries do not carry the
        # path, so the residual document check below handles it; here we
        # only prune by key.
        return entries

    # ------------------------------------------------------------------
    # Residual evaluation
    # ------------------------------------------------------------------
    def _document_matches(self, document: DocumentNode, query: NormalizedQuery,
                          summary: Optional[PathSummary] = None,
                          columnar: Optional[ColumnarStore] = None) -> bool:
        evaluator: Optional[XPathEvaluator] = None

        def nodes_for(pattern: PathPattern) -> List[XmlNode]:
            # Compiled patterns answer from the columnar store (every
            # linear spine, including summary-unsafe ``//`` shapes) or
            # the summary; without either (legacy mode, non-linear
            # expressions) the compiled form delegates to the
            # interpretive evaluator, which is created once per
            # document and reused.
            nonlocal evaluator
            compiled = compile_pattern(pattern)
            backed = ((columnar is not None and compiled.is_columnar_backed)
                      or (summary is not None and compiled.is_summary_backed))
            if not backed:
                self._m_interpretive_spine_fallbacks.inc()
                if evaluator is None:
                    evaluator = XPathEvaluator(document)
            self._m_scan_node_materializations.inc()
            return compiled.select_nodes(summary, document, evaluator,
                                         columnar=columnar)

        for predicate in query.predicates:
            if not self._predicate_holds(nodes_for(predicate.pattern), predicate):
                return False
        if not query.predicates:
            # Pure navigation query: the document qualifies when the first
            # extraction path is non-empty.  Only existence is needed, so
            # columnar-backed spines answer from the postings early-exit
            # instead of materializing the node list.
            for pattern in query.extraction_paths:
                compiled = compile_pattern(pattern)
                backed = ((columnar is not None
                           and compiled.is_columnar_backed)
                          or (summary is not None
                              and compiled.is_summary_backed))
                if not backed:
                    self._m_interpretive_spine_fallbacks.inc()
                    if evaluator is None:
                        evaluator = XPathEvaluator(document)
                if compiled.has_match(summary, document, evaluator,
                                      columnar=columnar):
                    return True
            return False
        return True

    def _extract_nodes(self, document: DocumentNode, query: NormalizedQuery,
                       summary: Optional[PathSummary],
                       columnar: Optional[ColumnarStore] = None
                       ) -> List[XmlNode]:
        """The nodes the query's extraction paths select in ``document``,
        per path in document order.

        Ordered extraction is what the summary's node-id merges (and the
        columnar store's postings merges) exist for: a multi-path
        pattern (``/site/regions/*/item/name``) comes back as one
        document-ordered stream instead of grouped by distinct path
        (``CompiledXPath.select_nodes(ordered=True)``).  The
        interpretive fallback already yields step-expansion order, which
        is document order for these linear paths.
        """
        evaluator: Optional[XPathEvaluator] = None
        nodes: List[XmlNode] = []
        for pattern in query.extraction_paths:
            compiled = compile_pattern(pattern)
            backed = ((columnar is not None and compiled.is_columnar_backed)
                      or (summary is not None and compiled.is_summary_backed))
            if not backed:
                self._m_interpretive_spine_fallbacks.inc()
                if evaluator is None:
                    evaluator = XPathEvaluator(document)
            self._m_scan_node_materializations.inc()
            nodes.extend(compiled.select_nodes(summary, document, evaluator,
                                               ordered=True, columnar=columnar))
        return nodes

    def _extract_values(self, document: DocumentNode, query: NormalizedQuery,
                        summary: Optional[PathSummary],
                        columnar: Optional[ColumnarStore] = None
                        ) -> List[str]:
        """Normalized values of the extraction-path nodes -- the legacy
        (object-hop) counterpart of reading the columnar values column;
        byte-identical by construction, since the column stores exactly
        ``normalized_node_value`` per node."""
        return [normalized_node_value(node) for node in
                self._extract_nodes(document, query, summary, columnar)]

    @staticmethod
    def _predicate_holds(nodes: List[XmlNode],
                         predicate: PathPredicate) -> bool:
        if predicate.op is None or predicate.value is None:
            return bool(nodes)
        for node in nodes:
            if _compare_node(node, predicate):
                return True
        return False

    def _refresh_document_lookup(self) -> None:
        self._doc_lookup.clear()
        self._collection_rank.clear()
        for position, collection in enumerate(self.database.collections):
            self._collection_rank[collection.name] = position
            if collection.name not in self._subscribed:
                # Per-collection version listener: drop the memoized
                # summary the moment the collection's data changes, so
                # `_summary_for` can hold snapshots across executions
                # without ever serving a stale one.  Subscribed weakly:
                # executors are often shorter-lived than the database,
                # and must not be pinned by the listener list.
                self._subscribed.add(collection.name)
                collection.subscribe(self._on_collection_change, weak=True)
            for document in collection:
                self._doc_lookup[(collection.name, document.doc_id)] = document
        self._lookup_signature = self.database.data_signature()

    def _on_collection_change(self, collection) -> None:
        self._summaries.pop(collection.name, None)
        self._columnars.pop(collection.name, None)

    def _summary_for(self, collection_name: str) -> Optional[PathSummary]:
        """The collection's current path summary (memoized behind the
        per-collection version listeners), or ``None`` in legacy
        interpretive-scan mode."""
        if not self.use_path_summary:
            return None
        summary = self._summaries.get(collection_name)
        if summary is None:
            try:
                summary = self.database.collection(collection_name).path_summary
            except FaultError as exc:
                # Degraded mode: when the summary cannot be (re)built,
                # fall back to interpretive per-document evaluation --
                # provably the same results, without the summary.
                self._note_fallback(
                    f"path summary for {collection_name!r} unavailable "
                    f"({exc}); interpretive evaluation")
                return None
            self._summaries[collection_name] = summary
        return summary

    def _columnar_for(self, collection_name: str) -> Optional[ColumnarStore]:
        """The collection's current columnar store (memoized behind the
        per-collection version listeners), or ``None`` when the columnar
        engine is off or the store cannot be (re)built.

        Gated on *both* hatches: legacy interpretive mode
        (``use_path_summary=False``) must stay purely interpretive, so
        the columnar engine only activates alongside the summary engine.
        """
        if not (self.use_path_summary and self.use_columnar):
            return None
        columnar = self._columnars.get(collection_name)
        if columnar is None:
            try:
                columnar = self.database.collection(collection_name).columnar_store
            except FaultError as exc:
                # Degraded mode: when the columnar snapshot cannot be
                # (re)built, fall back to the summary/interpreter --
                # provably the same results, without the axis engine.
                self._note_fallback(
                    f"columnar store for {collection_name!r} unavailable "
                    f"({exc}); summary/interpretive evaluation")
                return None
            self._columnars[collection_name] = columnar
        return columnar


def _compare_node(node, predicate: PathPredicate) -> bool:
    value = predicate.value
    if isinstance(value, float):
        node_value = node.double_value()
        if node_value is None:
            return False
    else:
        node_value = node.typed_value()
    op = predicate.op
    if op is BinaryOp.EQ:
        return node_value == value
    if op is BinaryOp.NE:
        return node_value != value
    if op is BinaryOp.LT:
        return node_value < value
    if op is BinaryOp.LE:
        return node_value <= value
    if op is BinaryOp.GT:
        return node_value > value
    if op is BinaryOp.GE:
        return node_value >= value
    return False
