"""The optimizer's cost model.

Costs are abstract units ("timerons"): a weighted sum of page I/O and
per-node/per-entry CPU work, derived entirely from the path statistics.
The absolute values are not meant to match DB2's; what matters for the
reproduction is that the *relative* behaviour is right:

* scanning the whole database costs proportionally to its size;
* probing an index costs a few random pages plus work proportional to
  the entries the predicate selects;
* a more general index (more entries) is somewhat more expensive to use
  for the same predicate than an exact index, but still far cheaper than
  a scan when the predicate is selective;
* fetching candidate documents costs random I/O per document, which is
  what makes unselective index plans lose to scans;
* maintaining an index on update costs work proportional to the entries
  the update touches.

All constants live in :class:`CostParameters` so ablation benchmarks and
tests can build variant models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.contracts import cache_contract, snapshot_contract
from repro.index.definition import IndexDefinition
from repro.index.sizing import estimate_entry_count, estimate_key_width
from repro.storage import pages
from repro.storage.statistics import DatabaseStatistics
from repro.xpath.compiler import pattern_summary_safe
from repro.xpath.patterns import PathPattern
from repro.xquery.model import NormalizedQuery, PathPredicate

#: A routing set: the collections a query's structural patterns can
#: match, sorted.  ``None`` stands for "every collection" -- used when
#: collection-scoped costing is disabled, when the statistics carry no
#: per-collection sub-synopses, or when a query's patterns genuinely
#: cover every collection.  Summary-unsafe ``//`` shapes no longer
#: widen the set: their descendant-or-self semantics are decided
#: exactly against each collection's path synopsis
#: (:meth:`~repro.xpath.patterns.PathPattern.matches_evaluator`).
RoutingSet = Optional[Tuple[str, ...]]


@snapshot_contract()
@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model."""

    #: Cost of reading one page sequentially.
    sequential_page_cost: float = 1.0
    #: Cost of reading one page at a random position.
    random_page_cost: float = 4.0
    #: CPU cost of visiting one XML node during navigation.
    cpu_node_cost: float = 0.01
    #: CPU cost of processing one index entry during a scan.
    cpu_index_entry_cost: float = 0.004
    #: CPU cost of inserting/removing one index entry (maintenance).
    cpu_index_maintenance_cost: float = 0.02
    #: Approximate B-tree fanout, used to derive the number of levels.
    btree_fanout: int = 128
    #: Fraction of a document that must be navigated to evaluate residual
    #: predicates and extraction paths once the document is fetched.
    residual_navigation_fraction: float = 0.25
    #: Base cost of applying one data modification (locating the target).
    update_base_cost: float = 2.0


@cache_contract(memos={
    "_scoped": {"policy": "object-keyed"},
    "_pattern_routes": {"policy": "object-keyed"},
})
class CostModel:
    """Statistics-driven cost estimation for plans and index maintenance.

    With ``use_collection_costing`` (the default) every cost term is
    computed against the merged synopsis of the query's *routing set* --
    the collections whose path summary/synopsis can match the query's
    patterns (:meth:`routing_set` / :meth:`scoped`) -- instead of the
    whole-database aggregates.  On a single-collection database (or when
    a query routes to every collection) the scoped synopsis *is* the
    whole-database synopsis, so the model reduces to the legacy one
    byte-identically; ``use_collection_costing=False`` forces the legacy
    whole-database model everywhere.
    """

    def __init__(self, statistics: DatabaseStatistics,
                 parameters: Optional[CostParameters] = None,
                 use_collection_costing: bool = True) -> None:
        self.statistics = statistics
        self.parameters = parameters or CostParameters()
        self.use_collection_costing = use_collection_costing
        #: Memo of routing set -> scoped CostModel (shares parameters).
        self._scoped: Dict[Tuple[str, ...], "CostModel"] = {}
        #: Memo of pattern -> matching collections (None = conservative
        #: "every collection" for summary-unsafe shapes).
        self._pattern_routes: Dict[PathPattern, Optional[FrozenSet[str]]] = {}

    # ------------------------------------------------------------------
    # Structural routing
    # ------------------------------------------------------------------
    def collections_for_pattern(self, pattern: PathPattern
                                ) -> Optional[FrozenSet[str]]:
        """The collections whose synopsis ``pattern`` can match.

        Summary-safe patterns are decided by strict pattern matching
        over each collection's path synopsis.  Summary-unsafe ``//``
        shapes -- where a descendant step can match its own context --
        are decided by the *loose* matcher
        (:meth:`~repro.xpath.patterns.PathPattern.matches_evaluator`),
        which implements the interpreter's (and the columnar store's)
        exact descendant-or-self semantics per simple path, so routing
        stays sound without widening to every collection.
        """
        cached = self._pattern_routes.get(pattern)
        if cached is None and pattern not in self._pattern_routes:
            if pattern_summary_safe(pattern):
                cached = frozenset(
                    name for name, stats in self.statistics.collection_stats.items()
                    if stats.paths_matching(pattern))
            else:
                cached = frozenset(
                    name for name, stats in self.statistics.collection_stats.items()
                    if any(pattern.matches_evaluator(path)
                           for path in stats.path_stats))
            self._pattern_routes[pattern] = cached
        return cached

    def routing_set(self, query: NormalizedQuery) -> RoutingSet:
        """The collections ``query`` can touch, or ``None`` for all.

        Read queries with predicates route to the collections where
        *every* predicate path can match (a document must satisfy all
        predicates); pure navigation queries and updates route to the
        *union* of their pattern matches.  An empty tuple means the
        query provably matches nothing anywhere.
        """
        if not self.use_collection_costing:
            return None
        names = self.statistics.collection_stats
        if not names:
            return None
        if not query.is_update and query.predicates:
            routed: Optional[FrozenSet[str]] = None  # None = universe
            for predicate in query.predicates:
                matched = self.collections_for_pattern(predicate.pattern)
                if matched is None:
                    continue
                routed = matched if routed is None else (routed & matched)
                if not routed:
                    return ()
            if routed is None or len(routed) >= len(names):
                return None
            return tuple(sorted(routed))
        patterns = query.routing_patterns()
        if not patterns:
            return None
        union: set = set()
        for pattern in patterns:
            if query.is_update:
                # Updates are costed purely by pattern matching over
                # the synopsis (they never run through the executor's
                # interpretive paths), so the summary-safety guard does
                # not apply: match the pattern against each collection's
                # paths directly.
                matched = frozenset(
                    name for name, stats in names.items()
                    if stats.paths_matching(pattern))
            else:
                matched = self.collections_for_pattern(pattern)
            if matched is None:
                return None
            union.update(matched)
        if len(union) >= len(names):
            return None
        return tuple(sorted(union))

    def scoped(self, routing: RoutingSet) -> "CostModel":
        """The cost model over the merged synopsis of ``routing``.

        ``None`` (all collections), full coverage, and the empty set all
        return ``self`` -- an empty routing set is priced against the
        whole database, which keeps the model byte-identical to the
        legacy one on single-collection databases in every case.
        """
        if routing is None or not routing or not self.use_collection_costing:
            return self
        names = self.statistics.collection_stats
        if not names or len(routing) >= len(names):
            return self
        cached = self._scoped.get(routing)
        if cached is None:
            cached = CostModel(self.statistics.merged_over(routing),
                               self.parameters, use_collection_costing=False)
            self._scoped[routing] = cached
        return cached

    def for_query(self, query: NormalizedQuery) -> Tuple["CostModel", RoutingSet]:
        """Convenience: the routing set and the scoped model for ``query``."""
        routing = self.routing_set(query)
        return self.scoped(routing), routing

    # ------------------------------------------------------------------
    # Database-level quantities
    # ------------------------------------------------------------------
    @property
    def data_pages(self) -> float:
        return max(1.0, self.statistics.total_data_bytes / pages.PAGE_SIZE_BYTES)

    @property
    def document_count(self) -> int:
        return max(1, self.statistics.document_count)

    @property
    def average_document_nodes(self) -> float:
        return self.statistics.total_node_count / self.document_count

    @property
    def average_document_pages(self) -> float:
        return max(1.0, self.data_pages / self.document_count)

    # ------------------------------------------------------------------
    # Full document scan
    # ------------------------------------------------------------------
    def document_scan_cost(self, query: NormalizedQuery) -> Tuple[float, float]:
        """Cost and output cardinality of answering ``query`` by scanning.

        Every document is read sequentially and fully navigated to
        evaluate the query's paths and predicates.
        """
        io_cost = self.data_pages * self.parameters.sequential_page_cost
        cpu_cost = self.statistics.total_node_count * self.parameters.cpu_node_cost
        result_cardinality = self._result_cardinality(query)
        return io_cost + cpu_cost, result_cardinality

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------
    def index_probe_cost(self, index: IndexDefinition) -> float:
        """Cost of descending the index B-tree to the first qualifying key."""
        entries = max(1, estimate_entry_count(index, self.statistics))
        levels = max(1.0, math.log(entries, self.parameters.btree_fanout))
        return levels * self.parameters.random_page_cost

    def index_scan_cost(self, index: IndexDefinition,
                        predicate: PathPredicate) -> Tuple[float, float, float]:
        """Cost of answering ``predicate`` with ``index``.

        Returns ``(cost, qualifying_nodes, entries_scanned)`` where
        ``qualifying_nodes`` is the number of nodes that satisfy both the
        predicate's path and its value condition (i.e. the cardinality
        flowing out of the index scan).
        """
        index_entries = estimate_entry_count(index, self.statistics)
        if index_entries <= 0:
            return self.index_probe_cost(index), 0.0, 0.0
        key_selectivity = self._key_selectivity(index, predicate)
        entries_scanned = max(1.0, index_entries * key_selectivity)
        # Path post-filtering: a more general index also returns entries
        # whose paths the predicate does not accept.
        predicate_nodes = self.statistics.cardinality(predicate.pattern)
        path_fraction = (predicate_nodes / index_entries) if index_entries else 0.0
        path_fraction = min(1.0, path_fraction) if predicate_nodes else 0.0
        value_selectivity = self.statistics.predicate_selectivity(
            predicate.pattern, predicate.op, predicate.value)
        qualifying_nodes = predicate_nodes * value_selectivity
        key_width = estimate_key_width(index, self.statistics)
        leaf_pages = (entries_scanned * pages.index_entry_bytes(key_width)
                      / pages.PAGE_SIZE_BYTES)
        cost = (self.index_probe_cost(index)
                + leaf_pages * self.parameters.sequential_page_cost
                + entries_scanned * self.parameters.cpu_index_entry_cost)
        return cost, qualifying_nodes, entries_scanned

    def _key_selectivity(self, index: IndexDefinition,
                         predicate: PathPredicate) -> float:
        """Fraction of the *index's* entries the key range covers."""
        if predicate.selectivity_hint is not None:
            return min(1.0, max(0.0, predicate.selectivity_hint))
        return self.statistics.predicate_selectivity(
            index.pattern, predicate.op, predicate.value)

    # ------------------------------------------------------------------
    # Fetch / residual work
    # ------------------------------------------------------------------
    def fetch_cost(self, documents_fetched: float) -> float:
        """Random I/O cost of retrieving ``documents_fetched`` documents."""
        return (documents_fetched * self.average_document_pages
                * self.parameters.random_page_cost)

    def residual_cost(self, documents_fetched: float,
                      residual_predicates: int, extraction_paths: int) -> float:
        """CPU cost of navigating fetched documents for residual work."""
        work_items = max(1, residual_predicates + extraction_paths)
        nodes_visited = (documents_fetched * self.average_document_nodes
                         * self.parameters.residual_navigation_fraction)
        return nodes_visited * self.parameters.cpu_node_cost * work_items

    def documents_for_nodes(self, qualifying_nodes: float,
                            pattern: PathPattern) -> float:
        """Estimate how many distinct documents contain ``qualifying_nodes``
        nodes matched by ``pattern`` (capped by the documents that contain
        the pattern at all)."""
        containing = self.statistics.documents_containing(pattern)
        if containing <= 0:
            return 0.0
        nodes_per_doc = max(1.0, self.statistics.cardinality(pattern) / containing)
        return min(float(containing), max(0.0, qualifying_nodes) / nodes_per_doc)

    # ------------------------------------------------------------------
    # Updates / index maintenance
    # ------------------------------------------------------------------
    def update_base_cost(self, query: NormalizedQuery) -> float:
        """Cost of the data modification itself (excluding index upkeep)."""
        locate_cost = (self.average_document_pages
                       * self.parameters.random_page_cost)
        return self.parameters.update_base_cost + locate_cost

    def maintenance_entries(self, index: IndexDefinition,
                            touched: Sequence[PathPattern]) -> float:
        """Entries of ``index`` affected by one execution of an update that
        touches the ``touched`` patterns.

        Computed against the actual path synopsis: paths matched by both
        the index pattern and any touched pattern contribute their
        per-document node counts.
        """
        affected_paths = set()
        for path in self.statistics.paths_matching(index.pattern):
            for touched_pattern in touched:
                if touched_pattern.matches(path):
                    affected_paths.add(path)
                    break
        if not affected_paths:
            return 0.0
        total_nodes = sum(self.statistics.path_stats[p].node_count
                          for p in affected_paths)
        # One update statement touches (roughly) one document's worth of
        # those nodes.
        return max(1.0, total_nodes / self.document_count)

    def maintenance_cost(self, index: IndexDefinition,
                         touched: Sequence[PathPattern]) -> Tuple[float, float]:
        """Cost and affected-entry count of maintaining ``index`` for one update."""
        affected = self.maintenance_entries(index, touched)
        if affected <= 0.0:
            return 0.0, 0.0
        cost = (self.index_probe_cost(index)
                + affected * self.parameters.cpu_index_maintenance_cost)
        return cost, affected

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _result_cardinality(self, query: NormalizedQuery) -> float:
        """Rough output cardinality: documents surviving all predicates."""
        doc_count = float(self.document_count)
        fraction = 1.0
        for predicate in query.predicates:
            containing = self.statistics.documents_containing(predicate.pattern)
            doc_fraction = containing / doc_count if doc_count else 0.0
            value_selectivity = self.statistics.predicate_selectivity(
                predicate.pattern, predicate.op, predicate.value)
            fraction *= min(1.0, doc_fraction) * max(value_selectivity, 1e-6) ** 0.5
        return max(0.0, doc_count * fraction)
