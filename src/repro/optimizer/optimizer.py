"""Plan selection: choose between document scans and index plans.

The optimizer mirrors (at a much smaller scale) how DB2 plans XML
queries: for every indexable predicate it looks for applicable indexes
via index matching, builds index-scan legs, combines the selective legs
with index ANDing, adds fetch and residual-filter costs, and compares
the result against a full document scan.  Whatever is cheaper wins.

Because the catalog can contain *virtual* indexes, exactly the same code
path serves normal planning, the Enumerate Indexes mode (planning with a
universal virtual index), and the Evaluate Indexes mode (planning with a
hypothetical configuration).  That is the "tight coupling" of the paper:
the advisor gets index enumeration and configuration costing from the
optimizer for free.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.contracts import cache_contract, escape_hatch
from repro.index.definition import IndexDefinition
from repro.index.matching import IndexMatch, usable_indexes
from repro.optimizer.cost_model import CostModel, CostParameters, RoutingSet
from repro.optimizer.plans import (
    DocumentScan,
    Fetch,
    IndexAnding,
    IndexMaintenance,
    IndexScan,
    PlanOperator,
    QueryPlan,
    ResidualFilter,
    UpdatePlan,
)
from repro.storage.document_store import XmlDatabase
from repro.telemetry import MetricsRegistry, global_registry
from repro.storage.maintenance import DataChange, DataChangeTracker
from repro.xquery.model import NormalizedQuery, PathPredicate

#: Index legs whose document selectivity exceeds this fraction are not
#: worth ANDing in (they would barely reduce the fetch set but still pay
#: their scan cost).
_MAX_USEFUL_LEG_SELECTIVITY = 0.9


#: Cache key for one what-if planning call: (query id, query text,
#: the set of index keys visible to the planner).
_PlanKey = Tuple[str, str, FrozenSet[Tuple[str, str]]]

#: Collection-scoped costing and routed plan invalidation; ``False``
#: restores the legacy whole-database cost model.
escape_hatch("use_collection_costing")


@cache_contract(memos={
    "_plan_cache": {"policy": "revalidate",
                    "revalidators": ("_plan_cache_key",
                                     "_revalidate_plan_cache",
                                     "clear_plan_cache")},
    "_update_plan_cache": {"policy": "revalidate",
                           "revalidators": ("_plan_cache_key",
                                            "_revalidate_plan_cache",
                                            "clear_plan_cache")},
    "_plan_cache_signature": {"policy": "revalidate",
                              "revalidators": ("_revalidate_plan_cache",
                                               "clear_plan_cache")},
    "_cost_model": {"policy": "revalidate", "revalidators": ("cost_model",)},
    "_statistics_token": {"policy": "revalidate",
                          "revalidators": ("cost_model",)},
})
class Optimizer:
    """Cost-based plan selection over a database's catalog and statistics.

    When ``enable_plan_cache`` is True (the default), planning calls made
    with an *explicit* candidate index list -- the what-if calls issued by
    the Evaluate Indexes mode and the advisor's benefit evaluator -- are
    memoized by ``(query_id, query text, relevant index keys)`` and
    revalidated against the database's
    :meth:`~repro.storage.document_store.XmlDatabase.data_signature`.
    Catalog-defaulted calls (``candidate_indexes=None``) are never cached,
    because catalog contents can change without the data signature moving.

    Invalidation is *collection-scoped* when
    ``enable_fine_grained_invalidation`` is on (the default): a
    signature move is diffed by a
    :class:`~repro.storage.maintenance.DataChangeTracker`, and only the
    cached plans whose statistics inputs actually changed are evicted --
    plans whose query patterns and candidate index patterns touch no
    changed path survive.  With ``use_collection_costing`` (the
    default) each cached plan is additionally keyed to its recorded
    routing set: a plan is priced only against the synopses of the
    collections its query can touch, so a change confined to *other*
    collections leaves it byte-exact and cached even when the
    whole-database aggregates moved.  With the legacy global model
    (``use_collection_costing=False``) any aggregates change still
    drops the cache wholesale (the exactness guard), and the
    fine-grained path pays off only for signature churn that leaves
    the synopsis intact (RUNSTATS, empty-collection DDL, net-zero
    batches).  ``enable_fine_grained_invalidation=False`` restores the
    legacy drop-everything behaviour.

    :attr:`plan_calls` counts plans actually computed and
    :attr:`plan_cache_hits` counts calls served from the cache; the
    advisor benchmarks use the two to report what-if evaluation savings.
    """

    def __init__(self, database: XmlDatabase,
                 parameters: Optional[CostParameters] = None,
                 enable_plan_cache: bool = True,
                 enable_fine_grained_invalidation: bool = True,
                 use_collection_costing: bool = True,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.database = database
        self.parameters = parameters
        self.enable_plan_cache = enable_plan_cache
        self.enable_fine_grained_invalidation = enable_fine_grained_invalidation
        #: Price every query against the merged synopsis of its routing
        #: set (the collections its patterns can match) instead of the
        #: whole-database aggregates, and revalidate cached plans
        #: against only those collections' data versions.  ``False``
        #: restores the legacy global cost model and the aggregates
        #: cache guard (the escape hatch the equivalence tests use).
        self.use_collection_costing = use_collection_costing
        self._cost_model: Optional[CostModel] = None
        self._statistics_token: Optional[int] = None
        #: Instance-scoped metrics registry (telemetry plane); the
        #: legacy planning counters live here as registry metrics and
        #: are read back through the properties below.
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        self._m_plan_calls = self.metrics.counter("optimizer.plan.calls")
        self._m_plan_cache_hits = self.metrics.counter(
            "optimizer.plan_cache.hits")
        self._m_plan_cache_misses = self.metrics.counter(
            "optimizer.plan_cache.misses")
        self._m_plan_cache_evictions = self.metrics.counter(
            "optimizer.plan_cache.evictions")
        self._m_plan_cache_flushes = self.metrics.counter(
            "optimizer.plan_cache.flushes")
        self._plan_cache: Dict[_PlanKey, QueryPlan] = {}
        self._update_plan_cache: Dict[_PlanKey, UpdatePlan] = {}
        self._plan_cache_signature: Optional[Tuple[Tuple[str, int], ...]] = None
        self._tracker: Optional[DataChangeTracker] = None

    # ------------------------------------------------------------------
    # Legacy counter attributes -- byte-equal views of registry metrics
    # ------------------------------------------------------------------
    @property
    def plan_calls(self) -> int:
        """Number of plans actually computed (query + update plans)."""
        return self._m_plan_calls.value

    @plan_calls.setter
    def plan_calls(self, value: int) -> None:
        self._m_plan_calls.reset(value)

    @property
    def plan_cache_hits(self) -> int:
        """Planning calls served from the what-if plan cache."""
        return self._m_plan_cache_hits.value

    @plan_cache_hits.setter
    def plan_cache_hits(self, value: int) -> None:
        self._m_plan_cache_hits.reset(value)

    @property
    def plan_cache_misses(self) -> int:
        """Cacheable planning calls that missed the plan cache (new in
        the telemetry plane: hits/misses together give the ratio the
        tuning controller surfaces per cycle)."""
        return self._m_plan_cache_misses.value

    @plan_cache_misses.setter
    def plan_cache_misses(self, value: int) -> None:
        self._m_plan_cache_misses.reset(value)

    @property
    def plan_cache_evictions(self) -> int:
        """Cached plans selectively evicted on data change (fine-grained
        path), for the benchmarks/tests."""
        return self._m_plan_cache_evictions.value

    @plan_cache_evictions.setter
    def plan_cache_evictions(self, value: int) -> None:
        self._m_plan_cache_evictions.reset(value)

    @property
    def plan_cache_flushes(self) -> int:
        """Wholesale plan-cache drops, for the benchmarks/tests."""
        return self._m_plan_cache_flushes.value

    @plan_cache_flushes.setter
    def plan_cache_flushes(self, value: int) -> None:
        self._m_plan_cache_flushes.reset(value)

    # ------------------------------------------------------------------
    # Plan cache plumbing
    # ------------------------------------------------------------------
    def _plan_cache_key(self, query: NormalizedQuery,
                        indexes: Sequence[IndexDefinition]
                        ) -> Optional[_PlanKey]:
        """The cache key for this call, or None when caching is off.

        Also revalidates the cached entries against the database's data
        signature (selectively with fine-grained invalidation, wholesale
        otherwise).
        """
        if not self.enable_plan_cache:
            return None
        self._revalidate_plan_cache()
        return (query.query_id, query.text,
                frozenset(index.key for index in indexes))

    def _revalidate_plan_cache(self) -> None:
        signature = self.database.data_signature()
        if signature == self._plan_cache_signature:
            return
        change: Optional[DataChange] = None
        if (self.enable_fine_grained_invalidation
                and self._tracker is not None
                and self._plan_cache_signature is not None):
            change = self._tracker.poll()
        if change is not None and (self.use_collection_costing
                                   or not change.aggregates_changed):
            self._evict_affected_plans(change)
        else:
            if self._plan_cache or self._update_plan_cache:
                self._m_plan_cache_flushes.inc()
            self._plan_cache.clear()
            self._update_plan_cache.clear()
        if self.enable_fine_grained_invalidation and self._tracker is None:
            self._tracker = DataChangeTracker(self.database)
        self._plan_cache_signature = signature

    def _evict_affected_plans(self, change: DataChange) -> None:
        """Drop exactly the cached plans whose statistics inputs moved.

        With collection-scoped costing a plan's cost is a function of
        its routing set's synopses only, so a plan survives whenever no
        routed collection changed, no changed path can alter the
        query's routing set, and no candidate index pattern in the
        cache key saw different statistics *within a changed
        collection* -- a change confined to other collections leaves
        the plan byte-exact even when the whole-database aggregates
        moved.  (Unused candidate indexes count too: one may become the
        winner once its statistics change.)  With the legacy model the
        aggregates guard has already forced a flush before this runs,
        and eviction falls back to the pattern-level rule.
        """
        for cache in (self._plan_cache, self._update_plan_cache):
            stale = []
            for key, plan in cache.items():
                if self.use_collection_costing:
                    if change.stales_routed_query(plan.query, plan.routing):
                        stale.append(key)
                    elif not plan.routing and any(
                            change.affects_index_key(index_key)
                            for index_key in key[2]):
                        # Unrouted plans are priced globally, so any
                        # candidate index whose statistics moved stales
                        # them; routed survivors already proved the
                        # changed collections disjoint from their
                        # routing set, which bounds the candidates too.
                        stale.append(key)
                elif change.affects_query(plan.query) \
                        or any(change.affects_index_key(index_key)
                               for index_key in key[2]):
                    stale.append(key)
            for key in stale:
                del cache[key]
            self._m_plan_cache_evictions.inc(len(stale))

    def clear_plan_cache(self) -> None:
        """Drop all cached plans (statistics-signature checks do this
        automatically; exposed for tests and long-lived processes)."""
        self._plan_cache.clear()
        self._update_plan_cache.clear()
        self._plan_cache_signature = None
        self._tracker = None

    # ------------------------------------------------------------------
    @property
    def cost_model(self) -> CostModel:
        """The cost model over the database's current statistics."""
        statistics = self.database.statistics
        token = id(statistics)
        if self._cost_model is None or self._statistics_token != token:
            self._cost_model = CostModel(
                statistics, self.parameters,
                use_collection_costing=self.use_collection_costing)
            self._statistics_token = token
        return self._cost_model

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def optimize(self, query: NormalizedQuery,
                 candidate_indexes: Optional[Iterable[IndexDefinition]] = None
                 ) -> QueryPlan:
        """Choose the cheapest plan for ``query``.

        ``candidate_indexes`` defaults to everything in the catalog
        (physical and virtual); the explain modes pass an explicit list.
        """
        if query.is_update:
            update_plan = self.plan_update(query, candidate_indexes)
            scan = DocumentScan(collection="*", cost=update_plan.total_cost,
                                cardinality=0.0, pages_read=0.0)
            return QueryPlan(query=query, root=scan,
                             total_cost=update_plan.total_cost,
                             uses_indexes=False, routing=update_plan.routing)

        indexes = list(candidate_indexes) if candidate_indexes is not None \
            else self.database.catalog.all_indexes
        key = self._plan_cache_key(query, indexes) \
            if candidate_indexes is not None else None
        if key is not None:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._m_plan_cache_hits.inc()
                return cached
            self._m_plan_cache_misses.inc()
        self._m_plan_calls.inc()
        model, routing = self.cost_model.for_query(query)
        scan_plan = self._document_scan_plan(query, model, routing)
        index_plan = self._index_plan(query, indexes, model, routing)
        plan = index_plan if (index_plan is not None
                              and index_plan.total_cost < scan_plan.total_cost) \
            else scan_plan
        if key is not None:
            self._plan_cache[key] = plan
        return plan

    def plan_update(self, query: NormalizedQuery,
                    candidate_indexes: Optional[Iterable[IndexDefinition]] = None
                    ) -> UpdatePlan:
        """Cost an update statement, charging maintenance for affected indexes."""
        indexes = list(candidate_indexes) if candidate_indexes is not None \
            else self.database.catalog.all_indexes
        key = self._plan_cache_key(query, indexes) \
            if candidate_indexes is not None else None
        if key is not None:
            cached_update = self._update_plan_cache.get(key)
            if cached_update is not None:
                self._m_plan_cache_hits.inc()
                return cached_update
            self._m_plan_cache_misses.inc()
        self._m_plan_calls.inc()
        model, routing = self.cost_model.for_query(query)
        maintenance: List[IndexMaintenance] = []
        for index in indexes:
            cost, affected = model.maintenance_cost(index, query.touched_patterns)
            if cost > 0.0:
                maintenance.append(IndexMaintenance(index=index,
                                                    affected_entries=affected,
                                                    cost=cost))
        update_plan = UpdatePlan(query=query,
                                 base_cost=model.update_base_cost(query),
                                 maintenance_costs=maintenance,
                                 routing=routing)
        if key is not None:
            self._update_plan_cache[key] = update_plan
        return update_plan

    def estimate_workload_cost(self, queries: Sequence[NormalizedQuery],
                               candidate_indexes: Optional[Iterable[IndexDefinition]] = None
                               ) -> float:
        """Frequency-weighted total cost of a normalized workload."""
        indexes = list(candidate_indexes) if candidate_indexes is not None else None
        total = 0.0
        for query in queries:
            plan = self.optimize(query, indexes)
            total += plan.total_cost * query.frequency
        return total

    # ------------------------------------------------------------------
    # Scan plan
    # ------------------------------------------------------------------
    def _document_scan_plan(self, query: NormalizedQuery, model: CostModel,
                            routing: RoutingSet) -> QueryPlan:
        cost, cardinality = model.document_scan_cost(query)
        target = "*" if routing is None else (",".join(routing) or "*")
        scan = DocumentScan(collection=target, cost=cost, cardinality=cardinality,
                            pages_read=model.data_pages)
        return QueryPlan(query=query, root=scan, total_cost=cost,
                         uses_indexes=False, routing=routing)

    # ------------------------------------------------------------------
    # Index plan
    # ------------------------------------------------------------------
    def _index_plan(self, query: NormalizedQuery,
                    indexes: Sequence[IndexDefinition],
                    model: CostModel, routing: RoutingSet) -> Optional[QueryPlan]:
        if not query.predicates or not indexes:
            return None
        legs: List[Tuple[IndexScan, float]] = []  # (scan, document selectivity)
        matched_predicates: List[PathPredicate] = []
        for predicate in query.predicates:
            leg = self._best_leg_for_predicate(predicate, indexes, model)
            if leg is not None:
                legs.append(leg)
                matched_predicates.append(predicate)
        if not legs:
            return None

        # Most selective legs first; keep a leg only while it actually
        # narrows the candidate documents.
        legs.sort(key=lambda item: item[1])
        chosen: List[Tuple[IndexScan, float]] = []
        for leg, selectivity in legs:
            if not chosen or selectivity <= _MAX_USEFUL_LEG_SELECTIVITY:
                chosen.append((leg, selectivity))
        chosen_scans = [leg for leg, _ in chosen]
        chosen_predicates = [leg.predicate for leg in chosen_scans]

        document_count = float(model.document_count)
        doc_fraction = 1.0
        for _, selectivity in chosen:
            doc_fraction *= max(selectivity, 1.0 / max(document_count, 1.0))
        documents_fetched = max(0.0, min(document_count, document_count * doc_fraction))

        anding_cost = sum(scan.cost for scan in chosen_scans)
        anding_cardinality = min((scan.cardinality for scan in chosen_scans),
                                 default=0.0)
        access: PlanOperator
        if len(chosen_scans) == 1:
            access = chosen_scans[0]
        else:
            access = IndexAnding(inputs=chosen_scans, cost=anding_cost,
                                 cardinality=anding_cardinality)

        fetch_cost = model.fetch_cost(documents_fetched)
        fetch = Fetch(input_operator=access, documents_fetched=documents_fetched,
                      cost=access.cost + fetch_cost, cardinality=documents_fetched)

        residual_predicates = [p for p in query.predicates
                               if p not in chosen_predicates]
        residual_cost = model.residual_cost(documents_fetched,
                                            len(residual_predicates),
                                            len(query.extraction_paths))
        root = ResidualFilter(input_operator=fetch,
                              residual_predicates=residual_predicates,
                              cost=fetch.cost + residual_cost,
                              cardinality=fetch.cardinality)
        return QueryPlan(query=query, root=root, total_cost=root.cost,
                         uses_indexes=True, routing=routing)

    def _best_leg_for_predicate(self, predicate: PathPredicate,
                                indexes: Sequence[IndexDefinition],
                                model: CostModel
                                ) -> Optional[Tuple[IndexScan, float]]:
        """The cheapest index scan answering ``predicate``, with its
        document selectivity, or ``None`` if no index matches."""
        matches = usable_indexes(indexes, predicate)
        best: Optional[Tuple[IndexScan, float]] = None
        for match in matches:
            cost, qualifying_nodes, entries_scanned = model.index_scan_cost(
                match.index, predicate)
            documents = model.documents_for_nodes(qualifying_nodes, predicate.pattern)
            selectivity = documents / max(1.0, float(model.document_count))
            scan = IndexScan(index=match.index, predicate=predicate,
                             key_selectivity=model.statistics.predicate_selectivity(
                                 match.index.pattern, predicate.op, predicate.value),
                             entries_scanned=entries_scanned,
                             cost=cost, cardinality=qualifying_nodes)
            if best is None or scan.cost < best[0].cost:
                best = (scan, selectivity)
        return best
