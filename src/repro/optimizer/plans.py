"""Query execution plan operators and plan containers.

Plans are small operator trees with estimated costs and cardinalities
attached.  They serve three purposes:

* the optimizer compares their costs to pick the cheapest;
* the explain modes render them so the advisor (and the user) can see
  which indexes a plan uses;
* the executor interprets them to actually run the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.contracts import snapshot_contract
from repro.index.definition import IndexDefinition
from repro.xpath.patterns import PathPattern
from repro.xquery.model import NormalizedQuery, PathPredicate


@snapshot_contract()
@dataclass(frozen=True)
class PlanOperator:
    """Base class for plan operators."""

    #: Estimated cost of this operator and its inputs (in abstract cost units,
    #: sometimes called timerons in DB2 documentation).
    cost: float = 0.0
    #: Estimated number of rows/nodes flowing out of the operator.
    cardinality: float = 0.0

    def children(self) -> List["PlanOperator"]:
        return []

    def operator_name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return f"{self.operator_name()} (cost={self.cost:.1f}, card={self.cardinality:.1f})"

    def render(self, indent: int = 0) -> str:
        """Indented tree rendering (what EXPLAIN prints)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def used_indexes(self) -> List[IndexDefinition]:
        """All index definitions referenced anywhere in the subtree."""
        found: List[IndexDefinition] = []
        stack: List[PlanOperator] = [self]
        while stack:
            operator = stack.pop()
            if isinstance(operator, IndexScan):
                found.append(operator.index)
            stack.extend(operator.children())
        return found


@snapshot_contract()
@dataclass(frozen=True)
class DocumentScan(PlanOperator):
    """Scan and navigate every document of the database/collection."""

    collection: str = "*"
    pages_read: float = 0.0

    def describe(self) -> str:
        return (f"XSCAN collection={self.collection} pages={self.pages_read:.0f} "
                f"(cost={self.cost:.1f}, card={self.cardinality:.1f})")


@snapshot_contract()
@dataclass(frozen=True)
class IndexScan(PlanOperator):
    """Probe one XML path index for a predicate."""

    index: IndexDefinition = None  # type: ignore[assignment]
    predicate: PathPredicate = None  # type: ignore[assignment]
    #: Fraction of the index's entries the scan reads.
    key_selectivity: float = 1.0
    entries_scanned: float = 0.0

    def describe(self) -> str:
        target = self.index.name if self.index is not None else "?"
        pred = self.predicate.describe() if self.predicate is not None else "?"
        return (f"XISCAN index={target} pred=[{pred}] "
                f"entries={self.entries_scanned:.0f} "
                f"(cost={self.cost:.1f}, card={self.cardinality:.1f})")


@snapshot_contract()
@dataclass(frozen=True)
class IndexAnding(PlanOperator):
    """Intersect the results of several index scans (XANDOR in DB2)."""

    inputs: List[IndexScan] = field(default_factory=list)

    def children(self) -> List[PlanOperator]:
        return list(self.inputs)

    def describe(self) -> str:
        return (f"XANDOR over {len(self.inputs)} index scan(s) "
                f"(cost={self.cost:.1f}, card={self.cardinality:.1f})")


@snapshot_contract()
@dataclass(frozen=True)
class Fetch(PlanOperator):
    """Fetch the documents/subtrees identified by the input operator."""

    input_operator: Optional[PlanOperator] = None
    documents_fetched: float = 0.0

    def children(self) -> List[PlanOperator]:
        return [self.input_operator] if self.input_operator is not None else []

    def describe(self) -> str:
        return (f"FETCH docs={self.documents_fetched:.1f} "
                f"(cost={self.cost:.1f}, card={self.cardinality:.1f})")


@snapshot_contract()
@dataclass(frozen=True)
class ResidualFilter(PlanOperator):
    """Apply the predicates that no index answered, by navigation."""

    input_operator: Optional[PlanOperator] = None
    residual_predicates: List[PathPredicate] = field(default_factory=list)

    def children(self) -> List[PlanOperator]:
        return [self.input_operator] if self.input_operator is not None else []

    def describe(self) -> str:
        preds = "; ".join(p.describe() for p in self.residual_predicates) or "none"
        return (f"FILTER residual=[{preds}] "
                f"(cost={self.cost:.1f}, card={self.cardinality:.1f})")


@snapshot_contract()
@dataclass(frozen=True)
class QueryPlan:
    """The chosen plan for one query, with its total estimated cost."""

    query: NormalizedQuery
    root: PlanOperator
    total_cost: float
    uses_indexes: bool
    #: The structural routing set the plan was costed over: the sorted
    #: collections whose synopsis can match the query's patterns.
    #: ``None`` means "every collection" (legacy whole-database costing,
    #: or a query whose patterns can match anywhere); an empty tuple
    #: means the query provably matches nothing.  The executor's scan
    #: path and residual checks iterate only this set, and cached plans
    #: are revalidated against these collections' data versions.
    routing: Optional[Tuple[str, ...]] = None

    @property
    def used_indexes(self) -> List[IndexDefinition]:
        return self.root.used_indexes()

    @property
    def used_index_names(self) -> List[str]:
        return [index.name for index in self.used_indexes]

    def matched_predicates(self) -> List[PathPredicate]:
        """The predicates answered by index scans in this plan."""
        matched: List[PathPredicate] = []
        stack = [self.root]
        while stack:
            operator = stack.pop()
            if isinstance(operator, IndexScan) and operator.predicate is not None:
                matched.append(operator.predicate)
            stack.extend(operator.children())
        return matched

    def render(self) -> str:
        header = (f"plan for {self.query.query_id}: total cost {self.total_cost:.1f} "
                  f"({'uses indexes' if self.uses_indexes else 'document scan'})")
        if self.routing is not None:
            routed = ",".join(self.routing) or "(none)"
            header += f" [routed to {routed}]"
        return header + "\n" + self.root.render(indent=1)


@snapshot_contract()
@dataclass(frozen=True)
class UpdatePlan:
    """The plan (really: cost accounting) for an update statement.

    Updates do not choose between access paths in our substrate; their
    cost is the base modification cost plus a maintenance charge for
    every index whose pattern overlaps the modified subtrees.
    """

    query: NormalizedQuery
    base_cost: float
    maintenance_costs: List["IndexMaintenance"] = field(default_factory=list)
    #: Structural routing set (see :attr:`QueryPlan.routing`): the
    #: collections the update's touched subtrees can live in.
    routing: Optional[Tuple[str, ...]] = None

    @property
    def total_cost(self) -> float:
        return self.base_cost + sum(m.cost for m in self.maintenance_costs)

    def render(self) -> str:
        lines = [f"update plan for {self.query.query_id}: "
                 f"base {self.base_cost:.1f}, total {self.total_cost:.1f}"]
        for maintenance in self.maintenance_costs:
            lines.append(f"  maintain {maintenance.index.name}: {maintenance.cost:.1f} "
                         f"({maintenance.affected_entries:.1f} entries)")
        return "\n".join(lines)


@snapshot_contract()
@dataclass(frozen=True)
class IndexMaintenance:
    """Maintenance charge of one update statement against one index."""

    index: IndexDefinition
    affected_entries: float
    cost: float
