"""Cost-based query optimizer with the advisor's two EXPLAIN modes.

The optimizer chooses, for each normalized query, between a full
document scan and index-assisted plans built from the indexes currently
in the catalog -- physical or *virtual*.  On top of the normal planning
path it exposes the two modes the paper adds to DB2:

* **Enumerate Indexes mode** (:func:`repro.optimizer.explain.enumerate_indexes`)
  -- plan the query as if a universal ``//*`` virtual index existed and
  report which query patterns index matching bound to it.  Those
  patterns are the basic candidate indexes for the query.
* **Evaluate Indexes mode** (:func:`repro.optimizer.explain.evaluate_indexes`)
  -- simulate a hypothetical index configuration as virtual indexes and
  report the optimizer's estimated cost for the query under it.
"""

from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.explain import (
    EnumerateIndexesResult,
    EvaluateIndexesResult,
    ExplainMode,
    enumerate_indexes,
    evaluate_indexes,
)
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import (
    DocumentScan,
    Fetch,
    IndexAnding,
    IndexScan,
    PlanOperator,
    QueryPlan,
    ResidualFilter,
    UpdatePlan,
)

__all__ = [
    "CostModel",
    "CostParameters",
    "DocumentScan",
    "EnumerateIndexesResult",
    "EvaluateIndexesResult",
    "ExplainMode",
    "Fetch",
    "IndexAnding",
    "IndexScan",
    "Optimizer",
    "PlanOperator",
    "QueryPlan",
    "ResidualFilter",
    "UpdatePlan",
    "enumerate_indexes",
    "evaluate_indexes",
]
