"""The two EXPLAIN modes the paper adds to the optimizer.

Enumerate Indexes mode
    "Our Enumerate Indexes optimizer mode creates a virtual index with
    index pattern ``//*``.  This ``//*`` virtual index hypothetically
    indexes all elements in an XML document and hence can be matched
    with any XPath pattern in the query that can be answered using an
    index.  The process of index matching in the optimizer determines
    the XML patterns in the query that match this ``//*`` virtual index,
    and we use these patterns as the basic set of candidate indexes."

    :func:`enumerate_indexes` does exactly that: it installs universal
    virtual indexes (``//*`` and ``//@*``, in both value types), runs the
    optimizer's index matching over the query's predicates, and reports
    the predicate patterns that matched, each tagged with the value type
    the predicate wants.

Evaluate Indexes mode
    "The optimizer simulates an index configuration and estimates the
    cost of a query under this configuration."  :func:`evaluate_indexes`
    installs the given configuration as virtual indexes, plans the query
    and reports the estimated cost, the plan, and which of the virtual
    indexes the plan actually used.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.matching import index_matches_predicate
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import QueryPlan
from repro.storage.document_store import XmlDatabase
from repro.xpath.patterns import (
    UNIVERSAL_ATTRIBUTE_PATTERN,
    UNIVERSAL_ELEMENT_PATTERN,
    PathPattern,
)
from repro.xquery.model import NormalizedQuery, PathPredicate, ValueType


class ExplainMode(enum.Enum):
    """Optimizer invocation modes (normal planning plus the two new ones)."""

    NORMAL = "normal"
    ENUMERATE_INDEXES = "enumerate indexes"
    EVALUATE_INDEXES = "evaluate indexes"


@dataclass(frozen=True)
class CandidateIndexSpec:
    """One basic candidate surfaced by the Enumerate Indexes mode."""

    pattern: PathPattern
    value_type: ValueType
    predicate: PathPredicate

    def to_definition(self, collection: Optional[str] = None) -> IndexDefinition:
        return IndexDefinition.create(self.pattern, self.value_type,
                                      collection=collection, is_virtual=True)

    def describe(self) -> str:
        return f"{self.pattern.to_text()} [{self.value_type.value}] for {self.predicate.describe()}"


@dataclass
class EnumerateIndexesResult:
    """Output of one Enumerate Indexes call for one query."""

    query: NormalizedQuery
    candidates: List[CandidateIndexSpec] = field(default_factory=list)
    #: Cost of the query if every enumerated candidate existed (i.e. the
    #: plan found while matching against the universal virtual indexes).
    cost_with_universal_indexes: float = 0.0
    #: Cost of the query with no indexes at all (document scan).
    cost_without_indexes: float = 0.0

    @property
    def candidate_patterns(self) -> List[PathPattern]:
        return [candidate.pattern for candidate in self.candidates]

    def render(self) -> str:
        lines = [f"ENUMERATE INDEXES for {self.query.query_id}:",
                 f"  cost without indexes: {self.cost_without_indexes:.1f}",
                 f"  cost with universal virtual index: {self.cost_with_universal_indexes:.1f}"]
        if not self.candidates:
            lines.append("  (no indexable patterns found)")
        for candidate in self.candidates:
            lines.append(f"  candidate: {candidate.describe()}")
        return "\n".join(lines)


@dataclass
class EvaluateIndexesResult:
    """Output of one Evaluate Indexes call for one query."""

    query: NormalizedQuery
    configuration: IndexConfiguration
    plan: QueryPlan
    estimated_cost: float
    used_indexes: List[IndexDefinition] = field(default_factory=list)

    @property
    def used_index_keys(self) -> List[Tuple[str, str]]:
        return [index.key for index in self.used_indexes]

    def render(self) -> str:
        lines = [f"EVALUATE INDEXES for {self.query.query_id}: "
                 f"estimated cost {self.estimated_cost:.1f}"]
        if self.used_indexes:
            for index in self.used_indexes:
                lines.append(f"  uses {index.pattern.to_text()} [{index.value_type.value}]")
        else:
            lines.append("  (configuration not used; document scan chosen)")
        return "\n".join(lines)


def _universal_virtual_indexes() -> List[IndexDefinition]:
    """The universal virtual indexes installed by Enumerate Indexes mode."""
    return [
        IndexDefinition.create(UNIVERSAL_ELEMENT_PATTERN, ValueType.VARCHAR,
                               name="virtual_universal_elem_varchar", is_virtual=True),
        IndexDefinition.create(UNIVERSAL_ELEMENT_PATTERN, ValueType.DOUBLE,
                               name="virtual_universal_elem_double", is_virtual=True),
        IndexDefinition.create(UNIVERSAL_ATTRIBUTE_PATTERN, ValueType.VARCHAR,
                               name="virtual_universal_attr_varchar", is_virtual=True),
        IndexDefinition.create(UNIVERSAL_ATTRIBUTE_PATTERN, ValueType.DOUBLE,
                               name="virtual_universal_attr_double", is_virtual=True),
    ]


def enumerate_indexes(query: NormalizedQuery, database: XmlDatabase,
                      optimizer: Optional[Optimizer] = None) -> EnumerateIndexesResult:
    """Run the Enumerate Indexes mode for one query.

    Returns the basic candidate indexes: one per query predicate that
    index matching bound to the universal virtual index.
    """
    optimizer = optimizer or Optimizer(database)
    universal = _universal_virtual_indexes()
    result = EnumerateIndexesResult(query=query)

    scan_plan = optimizer.optimize(query, candidate_indexes=[])
    result.cost_without_indexes = scan_plan.total_cost

    with database.catalog.virtual_configuration(universal, include_physical=False):
        candidates: List[CandidateIndexSpec] = []
        seen: set = set()
        for predicate in query.predicates:
            for virtual_index in database.catalog.virtual_indexes:
                match = index_matches_predicate(virtual_index, predicate)
                if match is None:
                    continue
                key = (predicate.pattern.to_text(), predicate.value_type.value)
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(CandidateIndexSpec(pattern=predicate.pattern,
                                                     value_type=predicate.value_type,
                                                     predicate=predicate))
                break
        result.candidates = candidates
        universal_plan = optimizer.optimize(
            query, candidate_indexes=database.catalog.virtual_indexes)
        result.cost_with_universal_indexes = universal_plan.total_cost
    return result


def evaluate_indexes(query: NormalizedQuery, database: XmlDatabase,
                     configuration: "IndexConfiguration | Iterable[IndexDefinition]",
                     optimizer: Optional[Optimizer] = None,
                     include_physical: bool = False) -> EvaluateIndexesResult:
    """Run the Evaluate Indexes mode: cost ``query`` under ``configuration``.

    ``include_physical`` controls whether indexes that already physically
    exist stay visible during the simulation; the advisor evaluates
    candidate configurations from a clean slate (False), while what-if
    analysis on top of an existing design passes True.

    The simulation passes the hypothetical configuration to the optimizer
    as an explicit candidate list (physical indexes first, mirroring the
    catalog's visibility order) instead of installing it in the catalog,
    so the hot what-if path neither mutates shared catalog state nor
    defeats the optimizer's statistics-signature-keyed plan cache.
    """
    optimizer = optimizer or Optimizer(database)
    if not isinstance(configuration, IndexConfiguration):
        configuration = IndexConfiguration(configuration)
    visible: List[IndexDefinition] = []
    if include_physical:
        visible.extend(database.catalog.physical_indexes)
    visible.extend(configuration)
    plan = optimizer.optimize(query, candidate_indexes=visible)
    # Report the used indexes in terms of the caller's definitions.
    used: List[IndexDefinition] = []
    used_keys = {index.key for index in plan.used_indexes}
    for definition in configuration:
        if definition.key in used_keys:
            used.append(definition)
    return EvaluateIndexesResult(query=query, configuration=configuration,
                                 plan=plan, estimated_cost=plan.total_cost,
                                 used_indexes=used)
