"""XML path indexes: definitions, physical structures, sizing, matching.

A DB2 pureXML index is declared over an XML column with an *XMLPATTERN*
(which nodes to index) and a SQL type (how to interpret their values)::

    CREATE INDEX item_quantity ON items(doc)
        GENERATE KEY USING XMLPATTERN '/site/regions/*/item/quantity'
        AS SQL DOUBLE

This package models that:

* :class:`~repro.index.definition.IndexDefinition` -- the catalog entry
  (pattern + value type + virtual flag);
* :class:`~repro.index.physical.PhysicalPathIndex` -- an actual sorted
  (key, document, node) structure built from the document store, used by
  the executor;
* :mod:`repro.index.sizing` -- size estimation for *virtual* indexes,
  driven by the path statistics (the advisor's knapsack needs sizes for
  indexes that do not exist);
* :mod:`repro.index.matching` -- index applicability: can a given index
  answer a given path predicate?  This is the "index matching" process
  the paper leans on for both candidate enumeration and costing.
"""

from repro.index.definition import IndexDefinition, IndexConfiguration
from repro.index.matching import IndexMatch, index_matches_predicate, usable_indexes
from repro.index.physical import IndexEntry, PhysicalPathIndex, build_physical_index
from repro.index.sizing import estimate_index_pages, estimate_index_size_bytes

__all__ = [
    "IndexConfiguration",
    "IndexDefinition",
    "IndexEntry",
    "IndexMatch",
    "PhysicalPathIndex",
    "build_physical_index",
    "estimate_index_pages",
    "estimate_index_size_bytes",
    "index_matches_predicate",
    "usable_indexes",
]
