"""Index definitions and index configurations.

An :class:`IndexDefinition` is what lives in the catalog; an
:class:`IndexConfiguration` is an ordered set of definitions -- the unit
the advisor searches over and the Evaluate Indexes mode simulates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.xpath.patterns import PathPattern
from repro.xquery.model import ValueType


def _sanitize(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_").lower() or "root"


@dataclass(frozen=True)
class IndexDefinition:
    """A (possibly virtual) XML path index definition.

    Two definitions with the same pattern and value type describe the
    same index, regardless of name; ``key`` captures that identity and is
    what configurations, the advisor, and redundancy checks compare.
    """

    name: str
    pattern: PathPattern
    value_type: ValueType = ValueType.VARCHAR
    collection: Optional[str] = None
    is_virtual: bool = False

    # ------------------------------------------------------------------
    @staticmethod
    def create(pattern: "PathPattern | str", value_type: ValueType = ValueType.VARCHAR,
               collection: Optional[str] = None, name: Optional[str] = None,
               is_virtual: bool = False) -> "IndexDefinition":
        """Build a definition, deriving a readable name when none is given."""
        if isinstance(pattern, str):
            pattern = PathPattern.parse(pattern)
        if name is None:
            name = f"idx_{_sanitize(pattern.to_text())}_{value_type.value.lower()}"
        return IndexDefinition(name=name, pattern=pattern, value_type=value_type,
                               collection=collection, is_virtual=is_virtual)

    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[str, str]:
        """Identity of the index: (pattern text, value type).

        Memoized on the instance -- the advisor's relevance map, the
        optimizer's plan-cache keys, and the search heaps all read it in
        their innermost loops.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = (self.pattern.to_text(), self.value_type.value)
            object.__setattr__(self, "_key", cached)
        return cached

    def as_virtual(self) -> "IndexDefinition":
        """A copy flagged as virtual (used by the Evaluate Indexes mode)."""
        if self.is_virtual:
            return self
        return replace(self, is_virtual=True)

    def as_physical(self) -> "IndexDefinition":
        """A copy flagged as physical (used when creating recommended indexes)."""
        if not self.is_virtual:
            return self
        return replace(self, is_virtual=False)

    def renamed(self, name: str) -> "IndexDefinition":
        return replace(self, name=name)

    # ------------------------------------------------------------------
    def ddl(self, table: str = "xmldata", column: str = "doc") -> str:
        """The DB2-style CREATE INDEX statement for this definition."""
        type_clause = ("DOUBLE" if self.value_type is ValueType.DOUBLE
                       else "VARCHAR(64)")
        target = self.collection or table
        return (f"CREATE INDEX {self.name} ON {target}({column}) "
                f"GENERATE KEY USING XMLPATTERN '{self.pattern.to_text()}' "
                f"AS SQL {type_clause}")

    def describe(self) -> str:
        tag = "virtual " if self.is_virtual else ""
        return f"{tag}index {self.name} on {self.pattern.to_text()} [{self.value_type.value}]"


class IndexConfiguration:
    """An ordered, duplicate-free set of index definitions.

    The advisor's searches build configurations incrementally; the
    Evaluate Indexes mode simulates them; the analysis tool diffs them.
    Duplicates are detected by :attr:`IndexDefinition.key`, so a virtual
    and a physical definition of the same index count as one.
    """

    def __init__(self, definitions: Optional[Iterable[IndexDefinition]] = None,
                 name: str = "configuration") -> None:
        self.name = name
        self._definitions: List[IndexDefinition] = []
        self._by_key: Dict[Tuple[str, str], IndexDefinition] = {}
        if definitions:
            for definition in definitions:
                self.add(definition)

    # ------------------------------------------------------------------
    def add(self, definition: IndexDefinition) -> bool:
        """Add a definition; return False if an equivalent one is present."""
        if definition.key in self._by_key:
            return False
        self._definitions.append(definition)
        self._by_key[definition.key] = definition
        return True

    def remove(self, definition: IndexDefinition) -> bool:
        """Remove a definition (matched by key); return True if removed."""
        existing = self._by_key.pop(definition.key, None)
        if existing is None:
            return False
        self._definitions = [d for d in self._definitions if d.key != definition.key]
        return True

    def __contains__(self, definition: IndexDefinition) -> bool:
        return definition.key in self._by_key

    def contains_pattern(self, pattern: PathPattern,
                         value_type: Optional[ValueType] = None) -> bool:
        for definition in self._definitions:
            if definition.pattern == pattern and (
                    value_type is None or definition.value_type is value_type):
                return True
        return False

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[IndexDefinition]:
        return iter(self._definitions)

    def __len__(self) -> int:
        return len(self._definitions)

    @property
    def definitions(self) -> List[IndexDefinition]:
        return list(self._definitions)

    def copy(self, name: Optional[str] = None) -> "IndexConfiguration":
        return IndexConfiguration(self._definitions, name=name or self.name)

    def union(self, other: "IndexConfiguration",
              name: Optional[str] = None) -> "IndexConfiguration":
        merged = self.copy(name=name or f"{self.name}+{other.name}")
        for definition in other:
            merged.add(definition)
        return merged

    def difference(self, other: "IndexConfiguration") -> "IndexConfiguration":
        remaining = IndexConfiguration(name=f"{self.name}-{other.name}")
        other_keys = {d.key for d in other}
        for definition in self._definitions:
            if definition.key not in other_keys:
                remaining.add(definition)
        return remaining

    # ------------------------------------------------------------------
    def describe(self) -> str:
        if not self._definitions:
            return f"configuration {self.name!r}: (empty)"
        lines = [f"configuration {self.name!r}: {len(self._definitions)} index(es)"]
        for definition in self._definitions:
            lines.append(f"  - {definition.pattern.to_text()} [{definition.value_type.value}]")
        return "\n".join(lines)
